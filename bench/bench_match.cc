// Matching-engine benchmark: the seed engine (map-based vector store,
// per-probe unordered_set dedup, std::function classifier) vs the arena
// engine, serial and sharded over a thread pool.  Verifies that every
// engine produces byte-identical pairs and stats before reporting
// throughput, and emits BENCH_match.json for the perf-history artifacts.

#include <algorithm>
#include <cstdio>
#include <functional>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "bench/bench_util.h"
#include "src/blocking/matcher.h"
#include "src/blocking/record_blocker.h"
#include "src/common/hamming_kernels.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

/// The kernel sets this build AND this CPU can execute; scalar is always
/// first so it doubles as the equivalence reference.
std::vector<const KernelSet*> RunnableKernelSets() {
  std::vector<const KernelSet*> sets = {&ScalarKernels()};
  if (Avx2Kernels() != nullptr && CpuSupportsAvx2()) {
    sets.push_back(Avx2Kernels());
  }
  if (Avx512Kernels() != nullptr && CpuSupportsAvx512Popcnt()) {
    sets.push_back(Avx512Kernels());
  }
  return sets;
}

/// RAII restore for the forced-kernel override.
struct ScopedForcedKernels {
  explicit ScopedForcedKernels(const KernelSet* k) { ForceKernelsForTest(k); }
  ~ScopedForcedKernels() { ForceKernelsForTest(nullptr); }
};

/// The pre-arena matching engine, reproduced verbatim as the baseline:
/// node-based id -> BitVector map, a freshly allocated unordered_set per
/// probe, and a type-erased classifier call per candidate pair.
class LegacyEngine {
 public:
  LegacyEngine(const CandidateSource* source,
               const std::unordered_map<RecordId, BitVector>* store,
               std::function<bool(const BitVector&, const BitVector&)>
                   classifier)
      : source_(source), store_(store), classifier_(std::move(classifier)) {}

  std::vector<IdPair> MatchAll(const std::vector<EncodedRecord>& b_records,
                               MatchStats* stats) const {
    std::vector<IdPair> out;
    for (const EncodedRecord& b : b_records) {
      std::unordered_set<RecordId> compared;
      source_->ForEachCandidate(b.bits, [&](RecordId a_id) {
        ++stats->candidate_occurrences;
        if (!compared.insert(a_id).second) {
          ++stats->dedup_skipped;
          return;
        }
        const auto it = store_->find(a_id);
        if (it == store_->end()) return;
        ++stats->comparisons;
        if (classifier_(it->second, b.bits)) {
          ++stats->matches;
          out.push_back(IdPair{a_id, b.id});
        }
      });
    }
    return out;
  }

 private:
  const CandidateSource* source_;
  const std::unordered_map<RecordId, BitVector>* store_;
  std::function<bool(const BitVector&, const BitVector&)> classifier_;
};

bool SameStats(const MatchStats& x, const MatchStats& y) {
  return x.candidate_occurrences == y.candidate_occurrences &&
         x.comparisons == y.comparisons && x.matches == y.matches &&
         x.dedup_skipped == y.dedup_skipped;
}

void Run() {
  const size_t n = RecordsFromEnv(3000);
  const int reps = static_cast<int>(RepetitionsFromEnv(3));
  bench::Banner("Matching engine: seed vs arena, serial vs sharded");
  std::printf("records=%zu reps=%d\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  LinkagePairOptions options;
  options.num_records = n;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "data");

  Rng enc_rng(7);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      schema, EstimateExpectedQGrams(schema, data.value().a), enc_rng);
  bench::DieOnError(encoder.ok() ? Status::OK() : encoder.status(),
                    "encoder");

  std::vector<EncodedRecord> enc_a, enc_b;
  for (const Record& r : data.value().a) {
    enc_a.push_back(encoder.value().Encode(r).value());
  }
  for (const Record& r : data.value().b) {
    enc_b.push_back(encoder.value().Encode(r).value());
  }

  Rng blk_rng(100);
  Result<RecordLevelBlocker> blocker = RecordLevelBlocker::Create(
      encoder.value().total_bits(), 30, 4, 0.1, blk_rng);
  bench::DieOnError(blocker.ok() ? Status::OK() : blocker.status(),
                    "blocker");
  blocker.value().Index(enc_a);

  // --- Seed engine -------------------------------------------------------
  std::unordered_map<RecordId, BitVector> legacy_store;
  for (const EncodedRecord& r : enc_a) legacy_store.emplace(r.id, r.bits);
  const Rule rule = bench::PlRule();
  const RecordLayout& layout = encoder.value().layout();
  std::vector<RecordLayout::Segment> segments;
  for (size_t i = 0; i < layout.num_attributes(); ++i) {
    segments.push_back(layout.segment(i));
  }
  LegacyEngine legacy(
      &blocker.value(), &legacy_store,
      [&rule, segments](const BitVector& a, const BitVector& b) {
        return rule.Evaluate([&](size_t attr) {
          return a.HammingDistanceRange(b, segments[attr].offset,
                                        segments[attr].size);
        });
      });

  MatchStats legacy_stats;
  std::vector<IdPair> legacy_pairs;
  double legacy_secs = 1e300;
  for (int r = 0; r < reps; ++r) {
    MatchStats stats;
    Stopwatch watch;
    std::vector<IdPair> pairs = legacy.MatchAll(enc_b, &stats);
    legacy_secs = std::min(legacy_secs, watch.ElapsedSeconds());
    legacy_stats = stats;
    legacy_pairs = std::move(pairs);
  }

  // --- Arena engine ------------------------------------------------------
  VectorStore store;
  store.AddAll(enc_a);
  Matcher matcher(&blocker.value(), &store);
  const PairClassifier classifier =
      MakeRuleClassifier(rule, encoder.value().layout());

  const auto run_engine = [&](ThreadPool* pool, MatchStats* stats,
                              std::vector<IdPair>* pairs) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      MatchStats s;
      Stopwatch watch;
      std::vector<IdPair> p = matcher.MatchAll(enc_b, classifier, &s, pool);
      best = std::min(best, watch.ElapsedSeconds());
      *stats = s;
      *pairs = std::move(p);
    }
    return best;
  };

  MatchStats serial_stats, t2_stats, t8_stats;
  std::vector<IdPair> serial_pairs, t2_pairs, t8_pairs;
  const double serial_secs = run_engine(nullptr, &serial_stats, &serial_pairs);
  ThreadPool pool2(2);
  const double t2_secs = run_engine(&pool2, &t2_stats, &t2_pairs);
  ThreadPool pool8(8);
  const double t8_secs = run_engine(&pool8, &t8_stats, &t8_pairs);

  // --- Equivalence gate --------------------------------------------------
  // Per rep the stats of one engine are deterministic; across engines the
  // pairs and every counter must agree before throughput means anything.
  if (serial_pairs != legacy_pairs || !SameStats(serial_stats, legacy_stats)) {
    std::fprintf(stderr, "FATAL: arena serial output diverges from seed\n");
    std::exit(1);
  }
  if (t2_pairs != serial_pairs || !SameStats(t2_stats, serial_stats) ||
      t8_pairs != serial_pairs || !SameStats(t8_stats, serial_stats)) {
    std::fprintf(stderr, "FATAL: parallel output diverges from serial\n");
    std::exit(1);
  }
  std::printf("equivalence: all engines agree (%zu pairs, %llu comparisons)\n\n",
              serial_pairs.size(),
              static_cast<unsigned long long>(serial_stats.comparisons));

  const double qps = static_cast<double>(enc_b.size());
  std::printf("%-22s %10s %14s %10s\n", "engine", "seconds", "records/s",
              "speedup");
  const auto row = [&](const char* name, double secs) {
    std::printf("%-22s %10.4f %14.0f %9.2fx\n", name, secs, qps / secs,
                legacy_secs / secs);
  };
  row("seed serial", legacy_secs);
  row("arena serial", serial_secs);
  row("arena 2 threads", t2_secs);
  row("arena 8 threads", t8_secs);

  // --- Kernels dimension: serial matcher under each runnable set --------
  // Forces one KernelSet at a time through the same serial MatchAll and
  // gates on byte-identical pairs+stats before timing counts; a SIMD
  // kernel that diverges from scalar is a correctness bug, not a slow run.
  bench::Banner("Hamming kernel dimension (serial matcher)");
  const std::vector<const KernelSet*> kernel_sets = RunnableKernelSets();
  std::vector<std::pair<std::string, bench::BenchValue>> json;
  std::vector<double> kernel_secs;
  for (const KernelSet* set : kernel_sets) {
    ScopedForcedKernels forced(set);
    MatchStats k_stats;
    std::vector<IdPair> k_pairs;
    const double k_secs = run_engine(nullptr, &k_stats, &k_pairs);
    if (k_pairs != serial_pairs || !SameStats(k_stats, serial_stats)) {
      std::fprintf(stderr, "FATAL: kernel %s diverges from scalar matcher\n",
                   set->name);
      std::exit(1);
    }
    kernel_secs.push_back(k_secs);
    std::printf("%-22s %10.4f %14.0f %9.2fx\n",
                (std::string("kernel ") + set->name).c_str(), k_secs,
                qps / k_secs, kernel_secs.front() / k_secs);
    json.emplace_back(std::string("match_serial_qps_") + set->name,
                      qps / k_secs);
  }

  // --- 120-bit cBV batch workload (Table 3) ------------------------------
  // The paper's compact record shape: 2 words per row, one probe swept
  // over a contiguous candidate arena through the batch_leq2 kernel.
  // This isolates raw comparison throughput, which is where the SIMD
  // sets must earn their keep (acceptance: active >= 2x scalar).
  bench::Banner("120-bit cBV batch kernel (Table 3 shape)");
  constexpr size_t kCbvWords = 2;
  const size_t cbv_rows = 1 << 16;
  const size_t cbv_probes = 64;
  const size_t cbv_theta = 40;
  Rng cbv_rng(2016);
  std::vector<uint64_t> arena(cbv_rows * kCbvWords);
  for (size_t i = 0; i < arena.size(); ++i) {
    arena[i] = cbv_rng();
    if (i % kCbvWords == 1) arena[i] &= (uint64_t{1} << 56) - 1;  // 120 bits
  }
  std::vector<std::vector<uint64_t>> probes(cbv_probes);
  for (auto& p : probes) {
    p = {cbv_rng(), cbv_rng() & ((uint64_t{1} << 56) - 1)};
  }
  std::vector<uint8_t> verdicts(cbv_rows), ref_verdicts(cbv_rows);

  const auto time_kernel = [&](const KernelSet& set) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
      Stopwatch watch;
      for (const auto& p : probes) {
        set.batch_leq2(p.data(), arena.data(), kCbvWords, /*dense=*/nullptr,
                       cbv_rows, cbv_theta, verdicts.data());
      }
      best = std::min(best, watch.ElapsedSeconds());
    }
    return best;
  };

  const double cbv_cmp = static_cast<double>(cbv_rows * cbv_probes);
  const double cbv_scalar_secs = time_kernel(ScalarKernels());
  ref_verdicts = verdicts;
  std::printf("%-22s %10.4f %14.0f\n", "cbv scalar", cbv_scalar_secs,
              cbv_cmp / cbv_scalar_secs);
  json.emplace_back("cbv_scalar_cps", cbv_cmp / cbv_scalar_secs);
  for (const KernelSet* set : kernel_sets) {
    if (set == &ScalarKernels()) continue;
    const double secs = time_kernel(*set);
    if (verdicts != ref_verdicts) {
      std::fprintf(stderr, "FATAL: cBV kernel %s diverges from scalar\n",
                   set->name);
      std::exit(1);
    }
    std::printf("%-22s %10.4f %14.0f %9.2fx\n",
                (std::string("cbv ") + set->name).c_str(), secs,
                cbv_cmp / secs, cbv_scalar_secs / secs);
    json.emplace_back(std::string("cbv_cps_") + set->name, cbv_cmp / secs);
    json.emplace_back(std::string("cbv_speedup_") + set->name,
                      cbv_scalar_secs / secs);
  }

  // The set auto-dispatch picks on this machine (CBVLINK_KERNEL honored),
  // plus its cBV speedup over scalar — the headline acceptance number.
  const KernelSet& active = ActiveKernels();
  const double cbv_active_secs =
      &active == &ScalarKernels() ? cbv_scalar_secs : time_kernel(active);
  std::printf("\nactive kernel: %s (cBV speedup %.2fx)\n", active.name,
              cbv_scalar_secs / cbv_active_secs);

  // Shard speedup is bounded by physical parallelism: on a single-core
  // runner the 2t/8t rows time-share one core and only the arena gain
  // shows; the sharded rows need real cores to separate.
  std::vector<std::pair<std::string, bench::BenchValue>> out = {
      {"hardware_threads",
       static_cast<double>(std::thread::hardware_concurrency())},
      {"records", static_cast<double>(n)},
      {"pairs", static_cast<double>(serial_pairs.size())},
      {"comparisons", static_cast<double>(serial_stats.comparisons)},
      {"seed_serial_qps", qps / legacy_secs},
      {"arena_serial_qps", qps / serial_secs},
      {"arena_2t_qps", qps / t2_secs},
      {"arena_8t_qps", qps / t8_secs},
      {"arena_serial_speedup", legacy_secs / serial_secs},
      {"arena_8t_speedup", legacy_secs / t8_secs},
      {"kernel_active", active.name},
      {"cbv_speedup_active", cbv_scalar_secs / cbv_active_secs}};
  out.insert(out.end(), json.begin(), json.end());
  bench::EmitBenchJson("BENCH_match.json", out);
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
