// Service throughput: concurrent insert / batch-query scaling with the
// thread count.  The same NCVR registry is indexed and the same query
// stream matched at 1..8 worker threads; per-row speedups are relative
// to the single-threaded run.  The acceptance bar for the serving layer
// is >= 3x batch query throughput at 8 threads.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/service/linkage_service.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(20000);
  bench::Banner("Service: insert/query throughput vs worker threads");
  if (std::getenv("CBVLINK_FAILPOINTS") != nullptr) {
    std::printf("NOTE: CBVLINK_FAILPOINTS is set — fault injection is "
                "active; timings below are not representative.\n");
  }

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");

  LinkagePairOptions data_options;
  data_options.num_records = n;
  data_options.seed = 42;
  Result<LinkagePair> data = BuildLinkagePair(
      gen.value(), PerturbationScheme::Light(), data_options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "dataset");
  const std::vector<Record>& registry = data.value().a;
  const std::vector<Record>& queries = data.value().b;

  std::printf("registry %zu records, %zu queries (NCVR, PL)\n\n",
              registry.size(), queries.size());
  std::printf("%-8s %14s %9s %14s %9s %10s\n", "threads", "insert(rec/s)",
              "speedup", "query(q/s)", "speedup", "matches");

  std::vector<std::pair<std::string, double>> series;
  series.emplace_back("records", static_cast<double>(registry.size()));
  series.emplace_back("queries", static_cast<double>(queries.size()));

  double insert_base = 0;
  double query_base = 0;
  size_t matches_base = 0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    LinkageServiceOptions options;
    options.execution = ExecutionOptions::WithThreads(threads);
    Result<std::unique_ptr<LinkageService>> service = LinkageService::Create(
        bench::CbvHbFor(gen.value().schema(), bench::Scheme::kPL, 7),
        options, registry);
    bench::DieOnError(
        service.ok() ? Status::OK() : service.status(), "service");

    Stopwatch insert_watch;
    bench::DieOnError(service.value()->InsertBatch(registry), "insert");
    const double insert_rate =
        static_cast<double>(registry.size()) / insert_watch.ElapsedSeconds();

    std::vector<IdPair> pairs;
    Stopwatch query_watch;
    bench::DieOnError(service.value()->MatchBatch(queries, &pairs), "query");
    const double query_rate =
        static_cast<double>(queries.size()) / query_watch.ElapsedSeconds();

    if (threads == 1) {
      insert_base = insert_rate;
      query_base = query_rate;
      matches_base = pairs.size();
    } else if (pairs.size() != matches_base) {
      std::fprintf(stderr,
                   "FATAL: %zu threads found %zu matches, expected %zu\n",
                   threads, pairs.size(), matches_base);
      std::exit(1);
    }
    std::printf("%-8zu %14.0f %8.2fx %14.0f %8.2fx %10zu\n", threads,
                insert_rate, insert_rate / insert_base, query_rate,
                query_rate / query_base, pairs.size());

    const std::string prefix = StrFormat("threads_%zu.", threads);
    series.emplace_back(prefix + "insert_rate", insert_rate);
    series.emplace_back(prefix + "insert_speedup", insert_rate / insert_base);
    series.emplace_back(prefix + "query_rate", query_rate);
    series.emplace_back(prefix + "query_speedup", query_rate / query_base);
    series.emplace_back(prefix + "matches",
                        static_cast<double>(pairs.size()));
  }
  bench::EmitBenchJson("BENCH_service.json", series);
  std::printf(
      "\nReading: both phases parallelize over the pool; shard striping "
      "keeps writer\ncontention low and queries take shared locks only, so "
      "batch matching should\nscale near-linearly until probe work saturates "
      "memory bandwidth.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
