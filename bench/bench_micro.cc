// Microbenchmarks (google-benchmark) of the hot paths: Hamming distance
// on compact vectors, c-vector encoding, edit distance, and LSH key
// computation.  These are the per-pair / per-record costs behind the
// figure-level results.

#include <benchmark/benchmark.h>

#include "src/common/bitvector.h"
#include "src/common/random.h"
#include "src/embedding/cvector.h"
#include "src/embedding/bloom_filter.h"
#include "src/lsh/hamming_lsh.h"
#include "src/metrics/edit_distance.h"
#include "src/text/qgram.h"

namespace cbvlink {
namespace {

BitVector RandomVector(size_t bits, Rng& rng, double density = 0.2) {
  BitVector bv(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(density)) bv.Set(i);
  }
  return bv;
}

void BM_HammingDistance(benchmark::State& state) {
  Rng rng(1);
  const size_t bits = static_cast<size_t>(state.range(0));
  const BitVector a = RandomVector(bits, rng);
  const BitVector b = RandomVector(bits, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.HammingDistance(b));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_HammingDistance)->Arg(120)->Arg(267)->Arg(2000);

void BM_HammingDistanceRange(benchmark::State& state) {
  Rng rng(2);
  const BitVector a = RandomVector(120, rng);
  const BitVector b = RandomVector(120, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.HammingDistanceRange(b, 30, 68));
  }
}
BENCHMARK(BM_HammingDistanceRange);

void BM_CVectorEncode(benchmark::State& state) {
  Rng rng(3);
  Result<QGramExtractor> extractor =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  const CVectorEncoder encoder =
      CVectorEncoder::Create(std::move(extractor).value(), 5.1, rng).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode("KARAPIPERIS"));
  }
}
BENCHMARK(BM_CVectorEncode);

void BM_BloomEncode(benchmark::State& state) {
  Result<QGramExtractor> extractor =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  const BloomFilterEncoder encoder =
      BloomFilterEncoder::Create(std::move(extractor).value()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encoder.Encode("KARAPIPERIS"));
  }
}
BENCHMARK(BM_BloomEncode);

void BM_EditDistance(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistance("WASHINGTON", "WASHANGTON"));
  }
}
BENCHMARK(BM_EditDistance);

void BM_EditDistanceWithin(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(EditDistanceWithin("WASHINGTON", "WASHANGTON", 2));
  }
}
BENCHMARK(BM_EditDistanceWithin);

void BM_HammingLshKey(benchmark::State& state) {
  Rng rng(4);
  const size_t K = static_cast<size_t>(state.range(0));
  const HammingHashFunction h = HammingHashFunction::Sample(K, 0, 120, rng);
  const BitVector bv = RandomVector(120, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.Key(bv));
  }
}
BENCHMARK(BM_HammingLshKey)->Arg(20)->Arg(30)->Arg(40);

}  // namespace
}  // namespace cbvlink
