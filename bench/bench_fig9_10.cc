// Reproduces Figures 9 and 10: Pairs Completeness (9) and Pairs Quality
// (10) of all four methods on NCVR- and DBLP-shaped data under both
// perturbation schemes.
//
// Expected shape (paper): cBV-HB stays >= ~0.95 PC on both data sets and
// schemes; BfH close behind; HARRA ~0.8 on NCVR and < 0.75 on DBLP
// (cross-attribute bigram ambiguity); SM-EB lowest.  PQ: BfH slightly
// above cBV-HB; HARRA and SM-EB low.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"

namespace cbvlink {
namespace {

template <typename Generator>
void RunDataset(const char* dataset, const Generator& gen, size_t n,
                size_t reps, std::optional<CsvWriter>& csv) {
  const Schema& schema = gen.schema();
  std::printf("\n%s-based data sets\n", dataset);
  std::printf("%-8s %10s %12s %10s %12s\n", "method", "PC(PL)", "PQ(PL)",
              "PC(PH)", "PQ(PH)");
  for (const char* method : {"cBV-HB", "BfH", "HARRA", "SM-EB"}) {
    double pc[2] = {0, 0};
    double pq[2] = {0, 0};
    for (int s = 0; s < 2; ++s) {
      const bench::Scheme scheme =
          s == 0 ? bench::Scheme::kPL : bench::Scheme::kPH;
      LinkagePairOptions options;
      options.num_records = n;
      Result<AveragedResult> avg = RunRepeated(
          gen, bench::MakeScheme(scheme), options, reps,
          [&](uint64_t seed) {
            return bench::MakeLinker(method, schema, scheme, seed);
          });
      bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), method);
      pc[s] = avg.value().pairs_completeness;
      pq[s] = avg.value().pairs_quality;
    }
    std::printf("%-8s %10.3f %12.5f %10.3f %12.5f\n", method, pc[0], pq[0],
                pc[1], pq[1]);
    if (csv.has_value()) {
      csv->WriteNumericRow(std::string(dataset) + "_" + method,
                           {pc[0], pq[0], pc[1], pq[1]});
    }
  }
}

void Run() {
  // HARRA's early-pruning losses and the PQ gaps grow with scale; the
  // default keeps the bench minutes-scale while showing the trend.
  const size_t n = RecordsFromEnv(5000);
  const size_t reps = RepetitionsFromEnv(2);
  bench::Banner("Figures 9 & 10: PC and PQ per method");
  std::printf("records=%zu reps=%zu\n", n, reps);

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/fig9_10.csv",
        {"dataset_method", "pc_PL", "pq_PL", "pc_PH", "pq_PH"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  Result<NcvrGenerator> ncvr = NcvrGenerator::Create();
  bench::DieOnError(ncvr.ok() ? Status::OK() : ncvr.status(), "NCVR gen");
  RunDataset("NCVR", ncvr.value(), n, reps, csv);

  Result<DblpGenerator> dblp = DblpGenerator::Create();
  bench::DieOnError(dblp.ok() ? Status::OK() : dblp.status(), "DBLP gen");
  RunDataset("DBLP", dblp.value(), n, reps, csv);
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
