// Pipeline-phase benchmark: embed, index build, and match timed
// separately, serial vs 2 and 8 worker threads through the unified
// ExecutionOptions surface.  Every parallel phase is equivalence-gated
// against its serial output (byte-identical bits, identical tables,
// identical pairs and stats) before throughput is reported, and the
// breakdown lands in BENCH_pipeline.json for the perf-history artifacts.

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/bench_util.h"
#include "src/blocking/matcher.h"
#include "src/blocking/record_blocker.h"
#include "src/common/hamming_kernels.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

struct PhaseTimes {
  double embed = 1e300;
  double build = 1e300;
  double match = 1e300;
};

bool SameStats(const MatchStats& x, const MatchStats& y) {
  return x.candidate_occurrences == y.candidate_occurrences &&
         x.comparisons == y.comparisons && x.matches == y.matches &&
         x.dedup_skipped == y.dedup_skipped;
}

bool SameEncodings(const std::vector<EncodedRecord>& x,
                   const std::vector<EncodedRecord>& y) {
  if (x.size() != y.size()) return false;
  for (size_t i = 0; i < x.size(); ++i) {
    if (x[i].id != y[i].id || !(x[i].bits == y[i].bits)) return false;
  }
  return true;
}

bool SameTables(const RecordLevelBlocker& x, const RecordLevelBlocker& y) {
  if (x.L() != y.L()) return false;
  for (size_t l = 0; l < x.L(); ++l) {
    if (x.tables()[l].buckets() != y.tables()[l].buckets()) return false;
  }
  return true;
}

void Run() {
  const size_t n = RecordsFromEnv(5000);
  const int reps = static_cast<int>(RepetitionsFromEnv(3));
  bench::Banner("Pipeline phases: embed / index build / match by threads");
  std::printf("records=%zu reps=%d\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  LinkagePairOptions options;
  options.num_records = n;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "data");

  Rng enc_rng(7);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      schema, EstimateExpectedQGrams(schema, data.value().a), enc_rng);
  bench::DieOnError(encoder.ok() ? Status::OK() : encoder.status(),
                    "encoder");

  const Rule rule = bench::PlRule();
  const PairClassifier classifier =
      MakeRuleClassifier(rule, encoder.value().layout());

  // Serial reference outputs, filled by the first run_phases call.
  std::vector<EncodedRecord> ref_a, ref_b;
  std::vector<IdPair> ref_pairs;
  MatchStats ref_stats;
  bool have_reference = false;

  // Runs the three phases on `pool` (null = serial), keeping the best
  // wall time per phase over `reps` and gating every output against the
  // serial reference.
  const auto run_phases = [&](ThreadPool* pool, const char* label) {
    PhaseTimes best;
    for (int r = 0; r < reps; ++r) {
      Stopwatch embed_watch;
      Result<std::vector<EncodedRecord>> enc_a =
          encoder.value().EncodeAll(data.value().a, pool);
      Result<std::vector<EncodedRecord>> enc_b =
          encoder.value().EncodeAll(data.value().b, pool);
      bench::DieOnError(enc_a.ok() ? Status::OK() : enc_a.status(), "embed A");
      bench::DieOnError(enc_b.ok() ? Status::OK() : enc_b.status(), "embed B");
      best.embed = std::min(best.embed, embed_watch.ElapsedSeconds());

      Rng blk_rng(100);
      Result<RecordLevelBlocker> blocker = RecordLevelBlocker::Create(
          encoder.value().total_bits(), 30, 4, 0.1, blk_rng);
      bench::DieOnError(blocker.ok() ? Status::OK() : blocker.status(),
                        "blocker");
      Stopwatch build_watch;
      blocker.value().BulkInsert(enc_a.value(), pool);
      best.build = std::min(best.build, build_watch.ElapsedSeconds());

      VectorStore store;
      store.AddAll(enc_a.value());
      Matcher matcher(&blocker.value(), &store);
      MatchStats stats;
      Stopwatch match_watch;
      std::vector<IdPair> pairs =
          matcher.MatchAll(enc_b.value(), classifier, &stats, pool);
      best.match = std::min(best.match, match_watch.ElapsedSeconds());

      if (!have_reference) {
        ref_a = std::move(enc_a).value();
        ref_b = std::move(enc_b).value();
        ref_pairs = std::move(pairs);
        ref_stats = stats;
        have_reference = true;
        continue;
      }
      // Equivalence gate: embeddings byte-identical, tables identical
      // to a serial Index() build, pairs and stats identical.
      if (!SameEncodings(enc_a.value(), ref_a) ||
          !SameEncodings(enc_b.value(), ref_b)) {
        std::fprintf(stderr, "FATAL: %s embeddings diverge from serial\n",
                     label);
        std::exit(1);
      }
      Rng serial_rng(100);
      RecordLevelBlocker serial_blocker =
          RecordLevelBlocker::Create(encoder.value().total_bits(), 30, 4, 0.1,
                                     serial_rng)
              .value();
      serial_blocker.Index(ref_a);
      if (!SameTables(blocker.value(), serial_blocker)) {
        std::fprintf(stderr, "FATAL: %s index diverges from serial\n", label);
        std::exit(1);
      }
      if (pairs != ref_pairs || !SameStats(stats, ref_stats)) {
        std::fprintf(stderr, "FATAL: %s matches diverge from serial\n", label);
        std::exit(1);
      }
    }
    return best;
  };

  const PhaseTimes serial = run_phases(nullptr, "serial");
  ThreadPool pool2(2);
  const PhaseTimes t2 = run_phases(&pool2, "2 threads");
  ThreadPool pool8(8);
  const PhaseTimes t8 = run_phases(&pool8, "8 threads");
  std::printf("equivalence: all thread counts reproduce the serial "
              "pipeline (%zu pairs)\n\n",
              ref_pairs.size());

  const double total_records = static_cast<double>(
      data.value().a.size() + data.value().b.size());
  const double a_records = static_cast<double>(data.value().a.size());
  const double b_records = static_cast<double>(data.value().b.size());
  std::printf("%-14s %12s %12s %12s %12s\n", "config", "embed s", "build s",
              "match s", "total s");
  const auto row = [&](const char* name, const PhaseTimes& t) {
    std::printf("%-14s %12.4f %12.4f %12.4f %12.4f\n", name, t.embed,
                t.build, t.match, t.embed + t.build + t.match);
  };
  row("serial", serial);
  row("2 threads", t2);
  row("8 threads", t8);

  // Phase speedups are bounded by physical parallelism: on a single-core
  // CI runner the 2t/8t configs time-share one core and the ratios hover
  // near 1; the breakdown needs real cores to separate.
  const double serial_total = serial.embed + serial.build + serial.match;
  const double t8_total = t8.embed + t8.build + t8.match;
  bench::EmitBenchJson(
      "BENCH_pipeline.json",
      {{"kernel_active", bench::BenchValue(ActiveKernels().name)},
       {"hardware_threads",
        static_cast<double>(std::thread::hardware_concurrency())},
       {"records", static_cast<double>(n)},
       {"pairs", static_cast<double>(ref_pairs.size())},
       {"embed_serial_qps", total_records / serial.embed},
       {"embed_2t_qps", total_records / t2.embed},
       {"embed_8t_qps", total_records / t8.embed},
       {"build_serial_qps", a_records / serial.build},
       {"build_2t_qps", a_records / t2.build},
       {"build_8t_qps", a_records / t8.build},
       {"match_serial_qps", b_records / serial.match},
       {"match_2t_qps", b_records / t2.match},
       {"match_8t_qps", b_records / t8.match},
       {"embed_8t_speedup", serial.embed / t8.embed},
       {"build_8t_speedup", serial.build / t8.build},
       {"match_8t_speedup", serial.match / t8.match},
       {"total_8t_speedup", serial_total / t8_total}});
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
