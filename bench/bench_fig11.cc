// Reproduces Figure 11: Pairs Completeness per perturbation-operation
// type (substitute / insert / delete) for each method, under both
// schemes, on NCVR-shaped data.  Each column forces every applied
// operation to one type.
//
// Expected shape (paper): cBV-HB stays >= ~0.95 for every type, dipping
// (slightly) only for substitutions — the operation with the largest
// Hamming footprint (alpha = 4 vs 3); all methods do worst on
// substitutions.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(2000);
  const size_t reps = RepetitionsFromEnv(2);
  bench::Banner("Figure 11: PC per perturbation type (NCVR)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/fig11.csv",
        {"scheme_method", "substitute", "insert", "delete"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  const PerturbationType types[] = {PerturbationType::kSubstitute,
                                    PerturbationType::kInsert,
                                    PerturbationType::kDelete};

  for (int s = 0; s < 2; ++s) {
    const bench::Scheme scheme =
        s == 0 ? bench::Scheme::kPL : bench::Scheme::kPH;
    std::printf("scheme %s\n", bench::SchemeName(scheme));
    std::printf("%-8s %12s %12s %12s\n", "method", "substitute", "insert",
                "delete");
    for (const char* method : {"cBV-HB", "BfH", "HARRA", "SM-EB"}) {
      double pc[3] = {0, 0, 0};
      for (int t = 0; t < 3; ++t) {
        PerturbationScheme perturb = bench::MakeScheme(scheme);
        perturb.forced_type = types[t];
        LinkagePairOptions options;
        options.num_records = n;
        Result<AveragedResult> avg = RunRepeated(
            gen.value(), perturb, options, reps, [&](uint64_t seed) {
              return bench::MakeLinker(method, schema, scheme, seed);
            });
        bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), method);
        pc[t] = avg.value().pairs_completeness;
      }
      std::printf("%-8s %12.3f %12.3f %12.3f\n", method, pc[0], pc[1], pc[2]);
      if (csv.has_value()) {
        csv->WriteNumericRow(
            std::string(bench::SchemeName(scheme)) + "_" + method,
            {pc[0], pc[1], pc[2]});
      }
    }
    std::printf("\n");
  }
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
