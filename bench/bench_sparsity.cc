// Reproduces the Section 5.2 motivation for c-vectors: applying HB
// directly to *full* q-gram vectors (676 bits per name attribute, 2704
// bits per NCVR record) samples mostly zeros, producing few overpopulated
// buckets and an all-pairs-like comparison load — while Theorem 1-sized
// c-vectors (120 bits) spread records across many small buckets.
//
// Both representations are blocked with identical K and L so the only
// variable is the embedding's density.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/blocking/matcher.h"
#include "src/blocking/record_blocker.h"
#include "src/common/stopwatch.h"
#include "src/embedding/qgram_vector.h"
#include "src/eval/block_stats.h"

namespace cbvlink {
namespace {

/// Encodes a record as concatenated full attribute-level q-gram vectors.
BitVector FullRecordVector(const Record& record, const Schema& schema,
                           const std::vector<QGramVectorEncoder>& encoders) {
  BitVector bits;
  for (size_t i = 0; i < encoders.size(); ++i) {
    bits.Append(encoders[i].Encode(
        Normalize(record.fields[i], *schema.attributes[i].alphabet)));
  }
  return bits;
}

void Run() {
  const size_t n = RecordsFromEnv(5000);
  bench::Banner("Section 5.2: sparse full q-gram vectors vs compact c-vectors");
  std::printf("records=%zu, identical K=30 and L for both representations\n\n",
              n);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  LinkagePairOptions options;
  options.num_records = n;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "data");

  // --- Full q-gram vectors --------------------------------------------
  std::vector<QGramVectorEncoder> full_encoders;
  for (const AttributeSpec& spec : schema.attributes) {
    Result<QGramExtractor> extractor =
        QGramExtractor::Create(*spec.alphabet, spec.qgram);
    bench::DieOnError(extractor.ok() ? Status::OK() : extractor.status(),
                      "extractor");
    Result<QGramVectorEncoder> encoder =
        QGramVectorEncoder::Create(std::move(extractor).value());
    bench::DieOnError(encoder.ok() ? Status::OK() : encoder.status(),
                      "full encoder");
    full_encoders.push_back(std::move(encoder).value());
  }
  size_t full_bits = 0;
  for (const QGramVectorEncoder& e : full_encoders) {
    full_bits += e.vector_size();
  }

  // --- Compact c-vectors ----------------------------------------------
  Rng enc_rng(3);
  Result<CVectorRecordEncoder> compact = CVectorRecordEncoder::Create(
      schema, EstimateExpectedQGrams(schema, data.value().a), enc_rng);
  bench::DieOnError(compact.ok() ? Status::OK() : compact.status(),
                    "compact encoder");

  struct Row {
    const char* label;
    size_t bits;
    BucketStats stats;
    uint64_t comparisons;
    double seconds;
  };
  std::vector<Row> rows;

  for (int mode = 0; mode < 2; ++mode) {
    const bool use_full = mode == 0;
    Stopwatch watch;

    std::vector<EncodedRecord> enc_a;
    std::vector<EncodedRecord> enc_b;
    enc_a.reserve(data.value().a.size());
    enc_b.reserve(data.value().b.size());
    for (const Record& r : data.value().a) {
      enc_a.push_back(
          use_full
              ? EncodedRecord{r.id, FullRecordVector(r, schema, full_encoders)}
              : compact.value().Encode(r).value());
    }
    for (const Record& r : data.value().b) {
      enc_b.push_back(
          use_full
              ? EncodedRecord{r.id, FullRecordVector(r, schema, full_encoders)}
              : compact.value().Encode(r).value());
    }

    const size_t bits = use_full ? full_bits : compact.value().total_bits();
    Rng rng(7);
    // Same K and L for both; theta scaled to the space so Eq. 2 would be
    // satisfied in either (one edit costs the same bit flips in both).
    Result<RecordLevelBlocker> blocker =
        RecordLevelBlocker::CreateWithL(bits, 30, 6, rng);
    bench::DieOnError(blocker.ok() ? Status::OK() : blocker.status(),
                      "blocker");
    blocker.value().Index(enc_a);

    VectorStore store;
    store.AddAll(enc_a);
    Matcher matcher(&blocker.value(), &store);
    MatchStats stats;
    matcher.MatchAll(enc_b, MakeRecordThresholdClassifier(4), &stats);

    rows.push_back({use_full ? "full BV" : "c-vector", bits,
                    ComputeBucketStats(blocker.value().tables()),
                    stats.comparisons, watch.ElapsedSeconds()});
  }

  std::printf("%-10s %8s %10s %12s %10s %8s %14s %10s\n", "vector", "bits",
              "buckets", "max bucket", "mean", "gini", "comparisons",
              "time (s)");
  for (const Row& row : rows) {
    std::printf("%-10s %8zu %10zu %12zu %10.1f %8.3f %14llu %10.3f\n",
                row.label, row.bits, row.stats.num_buckets,
                row.stats.max_bucket, row.stats.mean_bucket, row.stats.gini,
                static_cast<unsigned long long>(row.comparisons),
                row.seconds);
  }

  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> csv = CsvWriter::Open(
        csv_dir + "/sparsity.csv",
        {"vector", "bits", "buckets", "max_bucket", "gini", "comparisons"});
    if (csv.ok()) {
      for (const Row& row : rows) {
        csv.value().WriteNumericRow(
            row.label, {static_cast<double>(row.bits),
                        static_cast<double>(row.stats.num_buckets),
                        static_cast<double>(row.stats.max_bucket),
                        row.stats.gini,
                        static_cast<double>(row.comparisons)});
      }
    }
  }
  std::printf(
      "\nReading: sampling the 2704-bit full vectors hits mostly zeros — "
      "few, huge buckets and\nnear-all-pairs comparisons; the 120-bit "
      "c-vectors (density ~30%%) spread the same\nrecords across orders of "
      "magnitude more buckets (Section 5.2's argument).\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
