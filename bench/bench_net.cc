// Network serving tier throughput: an in-process epoll server
// (src/net/server.h) in front of the same NCVR registry the service
// bench uses, driven by loopback binary-protocol clients.
//
// Gate: the pairs collected over the wire must equal the in-process
// MatchBatch result exactly (the network tier may add latency, never
// change answers).  Then synchronous request/response throughput is
// measured at 1..8 client connections with p50/p99 latency, and the
// pipelined single-connection path (which the server executes through
// MatchBatch runs) is measured separately.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/net/client.h"
#include "src/net/faultproxy.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/service/linkage_service.h"
#include "src/telemetry/trace.h"
#include "src/telemetry/trace_sink.h"

namespace cbvlink {
namespace {

double PercentileMicros(std::vector<double>* sorted_micros, double q) {
  if (sorted_micros->empty()) return 0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted_micros->size() - 1));
  return (*sorted_micros)[index];
}

void Run() {
  const size_t n = RecordsFromEnv(5000);
  bench::Banner("Network tier: loopback serving throughput");

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");

  LinkagePairOptions data_options;
  data_options.num_records = n;
  data_options.seed = 42;
  Result<LinkagePair> data = BuildLinkagePair(
      gen.value(), PerturbationScheme::Light(), data_options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "dataset");
  const std::vector<Record>& registry = data.value().a;
  const std::vector<Record>& queries = data.value().b;

  Result<std::unique_ptr<LinkageService>> service = LinkageService::Create(
      bench::CbvHbFor(gen.value().schema(), bench::Scheme::kPL, 7), {},
      registry);
  bench::DieOnError(service.ok() ? Status::OK() : service.status(), "service");
  bench::DieOnError(service.value()->InsertBatch(registry), "insert");

  net::NetServerOptions server_options;
  // The pipelined measurement below intentionally outruns request
  // admission pacing; size the queue so nothing is shed and the numbers
  // stay pure throughput.
  server_options.max_queue = queries.size() + 64;
  Result<std::unique_ptr<net::NetServer>> server =
      net::NetServer::Start(service.value().get(), server_options);
  bench::DieOnError(server.ok() ? Status::OK() : server.status(), "server");
  const uint16_t port = server.value()->port();

  std::printf("registry %zu records, %zu queries (NCVR, PL), port %u\n\n",
              registry.size(), queries.size(), port);

  // --- Equivalence gate ---------------------------------------------------
  std::vector<IdPair> expected;
  bench::DieOnError(service.value()->MatchBatch(queries, &expected),
                    "in-process match");

  std::vector<IdPair> over_wire;
  std::mutex wire_mu;
  std::atomic<bool> wire_failed{false};
  {
    constexpr size_t kEquivClients = 4;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kEquivClients; ++t) {
      threads.emplace_back([&, t]() {
        Result<std::unique_ptr<net::NetClient>> client =
            net::NetClient::Connect("127.0.0.1", port);
        if (!client.ok()) {
          wire_failed = true;
          return;
        }
        std::vector<IdPair> local;
        std::vector<IdPair> pairs;
        for (size_t i = t; i < queries.size(); i += kEquivClients) {
          pairs.clear();
          if (!client.value()->Match(queries[i], &pairs).ok()) {
            wire_failed = true;
            return;
          }
          local.insert(local.end(), pairs.begin(), pairs.end());
        }
        std::lock_guard<std::mutex> lock(wire_mu);
        over_wire.insert(over_wire.end(), local.begin(), local.end());
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  std::sort(expected.begin(), expected.end());
  std::sort(over_wire.begin(), over_wire.end());
  if (wire_failed || over_wire != expected) {
    std::fprintf(stderr,
                 "FATAL: network results diverge from in-process MatchBatch "
                 "(%zu vs %zu pairs)\n",
                 over_wire.size(), expected.size());
    std::exit(1);
  }
  std::printf("equivalence: %zu pairs over the wire == in-process  [OK]\n\n",
              expected.size());

  std::vector<std::pair<std::string, double>> series;
  series.emplace_back("records", static_cast<double>(registry.size()));
  series.emplace_back("queries", static_cast<double>(queries.size()));
  series.emplace_back("matches", static_cast<double>(expected.size()));
  series.emplace_back("equivalence_ok", 1.0);

  // --- Synchronous request/response scaling -------------------------------
  std::printf("%-8s %12s %9s %11s %11s\n", "clients", "query(q/s)", "speedup",
              "p50(us)", "p99(us)");
  double base_rate = 0;
  for (size_t clients : {1u, 2u, 4u, 8u}) {
    std::vector<std::vector<double>> latencies(clients);
    std::atomic<bool> failed{false};
    Stopwatch watch;
    std::vector<std::thread> threads;
    for (size_t t = 0; t < clients; ++t) {
      threads.emplace_back([&, t]() {
        Result<std::unique_ptr<net::NetClient>> client =
            net::NetClient::Connect("127.0.0.1", port);
        if (!client.ok()) {
          failed = true;
          return;
        }
        std::vector<IdPair> pairs;
        latencies[t].reserve(queries.size() / clients + 1);
        for (size_t i = t; i < queries.size(); i += clients) {
          pairs.clear();
          const auto start = std::chrono::steady_clock::now();
          if (!client.value()->Match(queries[i], &pairs).ok()) {
            failed = true;
            return;
          }
          latencies[t].push_back(
              std::chrono::duration<double, std::micro>(
                  std::chrono::steady_clock::now() - start)
                  .count());
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
    const double seconds = watch.ElapsedSeconds();
    if (failed) {
      std::fprintf(stderr, "FATAL: network error at %zu clients\n", clients);
      std::exit(1);
    }
    const double rate = static_cast<double>(queries.size()) / seconds;
    if (clients == 1) base_rate = rate;

    std::vector<double> merged;
    for (const std::vector<double>& slice : latencies) {
      merged.insert(merged.end(), slice.begin(), slice.end());
    }
    std::sort(merged.begin(), merged.end());
    const double p50 = PercentileMicros(&merged, 0.50);
    const double p99 = PercentileMicros(&merged, 0.99);
    std::printf("%-8zu %12.0f %8.2fx %11.1f %11.1f\n", clients, rate,
                rate / base_rate, p50, p99);

    const std::string prefix = StrFormat("clients_%zu.", clients);
    series.emplace_back(prefix + "query_rate", rate);
    series.emplace_back(prefix + "speedup", rate / base_rate);
    series.emplace_back(prefix + "latency_p50_us", p50);
    series.emplace_back(prefix + "latency_p99_us", p99);
  }

  // --- Pipelined single connection ----------------------------------------
  // One connection writes every request before reading any reply; the
  // server folds consecutive kMatch frames into MatchBatch runs, so this
  // is the batch path's wire-facing throughput.
  {
    Result<std::unique_ptr<net::NetClient>> client =
        net::NetClient::Connect("127.0.0.1", port);
    bench::DieOnError(client.ok() ? Status::OK() : client.status(),
                      "pipelined client");
    Record base = queries[0];
    base.id = 1u << 20;
    std::atomic<size_t> replies{0};
    std::atomic<size_t> sheds{0};
    Stopwatch watch;
    const Status burst = client.value()->PipelinedBurst(
        net::MsgType::kMatch, base, queries.size(),
        [&](size_t, const net::Frame& frame) {
          ++replies;
          if (frame.type != net::MsgType::kMatchResult) ++sheds;
        });
    const double seconds = watch.ElapsedSeconds();
    bench::DieOnError(burst, "pipelined burst");
    if (sheds.load() != 0) {
      std::fprintf(stderr, "FATAL: %zu pipelined requests shed\n",
                   sheds.load());
      std::exit(1);
    }
    const double rate = static_cast<double>(replies.load()) / seconds;
    std::printf("\npipelined 1 connection: %12.0f q/s (%.2fx of 1-client "
                "sync)\n",
                rate, rate / base_rate);
    series.emplace_back("pipelined.query_rate", rate);
    series.emplace_back("pipelined.speedup_vs_sync", rate / base_rate);
  }

  // --- Server-side stage breakdown ----------------------------------------
  // A second, TRACED server over the same service (the throughput
  // sections above stay untraced, so their numbers price the disabled
  // fast path).  One synchronous client sends traced matches and
  // collects the kServerTiming per-stage durations the server attaches;
  // p50/p99 per stage shows where a request's microseconds go
  // (queue wait vs candidate generation vs comparison vs journal).
  {
    telemetry::TraceSinkOptions sink_options;
    sink_options.capacity = 256;
    sink_options.sample_every = 1;
    sink_options.slow_threshold_us = 0;
    telemetry::TraceSink sink(sink_options);
    net::NetServerOptions traced_options;
    traced_options.max_queue = queries.size() + 64;
    traced_options.trace_sink = &sink;
    Result<std::unique_ptr<net::NetServer>> traced_server =
        net::NetServer::Start(service.value().get(), traced_options);
    bench::DieOnError(
        traced_server.ok() ? Status::OK() : traced_server.status(),
        "traced server");
    Result<std::unique_ptr<net::NetClient>> client =
        net::NetClient::Connect("127.0.0.1", traced_server.value()->port());
    bench::DieOnError(client.ok() ? Status::OK() : client.status(),
                      "traced client");

    constexpr net::TimingStage kStages[] = {
        net::TimingStage::kQueue,     net::TimingStage::kEncode,
        net::TimingStage::kCandidates, net::TimingStage::kCompare,
        net::TimingStage::kInsert,    net::TimingStage::kJournal,
        net::TimingStage::kTotal};
    constexpr size_t kNumStages = sizeof(kStages) / sizeof(kStages[0]);
    std::vector<std::vector<double>> stage_us(kNumStages);
    const size_t stage_queries = std::min<size_t>(queries.size(), 1000);
    size_t missing_timings = 0;
    std::vector<IdPair> pairs;
    for (size_t i = 0; i < stage_queries; ++i) {
      client.value()->set_trace(telemetry::GenerateTraceId());
      pairs.clear();
      bench::DieOnError(client.value()->Match(queries[i], &pairs),
                        "traced match");
      const std::vector<net::StageTiming>& stages =
          client.value()->last_server_timing();
      if (stages.empty()) {
        ++missing_timings;
        continue;
      }
      for (const net::StageTiming& timing : stages) {
        const size_t index = static_cast<size_t>(timing.stage);
        if (index < kNumStages) {
          stage_us[index].push_back(static_cast<double>(timing.dur_us));
        }
      }
    }
    traced_server.value()->Shutdown();
    if (missing_timings == stage_queries) {
      std::fprintf(stderr,
                   "FATAL: traced server attached no kServerTiming frames\n");
      std::exit(1);
    }

    std::printf("\nServer-side stage breakdown (traced server, %zu queries, "
                "%llu captured traces):\n",
                stage_queries - missing_timings,
                static_cast<unsigned long long>(sink.captured()));
    std::printf("%-12s %11s %11s\n", "stage", "p50(us)", "p99(us)");
    for (size_t s = 0; s < kNumStages; ++s) {
      std::sort(stage_us[s].begin(), stage_us[s].end());
      const double p50 = PercentileMicros(&stage_us[s], 0.50);
      const double p99 = PercentileMicros(&stage_us[s], 0.99);
      const char* name = net::TimingStageName(kStages[s]);
      std::printf("%-12s %11.1f %11.1f\n", name, p50, p99);
      series.emplace_back(StrFormat("stage.%s_p50_us", name), p50);
      series.emplace_back(StrFormat("stage.%s_p99_us", name), p99);
    }
    series.emplace_back("stage.samples",
                        static_cast<double>(stage_queries - missing_timings));
  }

  bench::EmitBenchJson("BENCH_net.json", series);

  // --- Faults dimension ---------------------------------------------------
  // The same traffic through an in-process FaultProxy under three
  // conditions, driven by RetryingClient: a clean link (proxy overhead
  // only), 5ms injected latency, and ~1%-of-requests connection resets
  // with retries absorbing them.  Gate: every scenario must return
  // byte-identical match results — faults may cost time and retries,
  // never answers.
  {
    std::printf("\nFaults dimension (through FaultProxy, RetryingClient):\n");
    const size_t fault_queries = std::min<size_t>(queries.size(), 1200);
    std::vector<Record> slice(queries.begin(),
                              queries.begin() + fault_queries);
    std::vector<IdPair> slice_expected;
    bench::DieOnError(service.value()->MatchBatch(slice, &slice_expected),
                      "faults expected");
    std::sort(slice_expected.begin(), slice_expected.end());

    constexpr size_t kFaultClients = 4;
    struct ScenarioResult {
      double rate = 0;
      double p50 = 0;
      double p99 = 0;
      net::RetryingClient::Counters counters;
      bool ok = false;
      uint64_t proxied_bytes = 0;
    };
    // Runs `slice` through the proxy with per-thread RetryingClients and
    // checks the merged pairs against slice_expected.
    const auto run_scenario = [&](net::FaultProxy& proxy,
                                  const net::RetryPolicy& policy) {
      ScenarioResult result;
      const uint64_t bytes_before = proxy.forwarded_bytes();
      std::vector<std::vector<double>> lats(kFaultClients);
      std::vector<net::RetryingClient::Counters> counters(kFaultClients);
      std::vector<IdPair> merged_pairs;
      std::mutex merged_mu;
      std::atomic<bool> failed{false};
      Stopwatch watch;
      std::vector<std::thread> threads;
      for (size_t t = 0; t < kFaultClients; ++t) {
        threads.emplace_back([&, t]() {
          net::RetryingClient client("127.0.0.1", proxy.port(), policy);
          std::vector<IdPair> local;
          std::vector<IdPair> pairs;
          for (size_t i = t; i < slice.size(); i += kFaultClients) {
            pairs.clear();
            const auto start = std::chrono::steady_clock::now();
            if (!client.Match(slice[i], &pairs).ok()) {
              failed = true;
              return;
            }
            lats[t].push_back(std::chrono::duration<double, std::micro>(
                                  std::chrono::steady_clock::now() - start)
                                  .count());
            local.insert(local.end(), pairs.begin(), pairs.end());
          }
          counters[t] = client.counters();
          std::lock_guard<std::mutex> lock(merged_mu);
          merged_pairs.insert(merged_pairs.end(), local.begin(), local.end());
        });
      }
      for (std::thread& thread : threads) thread.join();
      const double seconds = watch.ElapsedSeconds();
      if (failed) return result;
      std::sort(merged_pairs.begin(), merged_pairs.end());
      result.ok = merged_pairs == slice_expected;
      result.rate = static_cast<double>(slice.size()) / seconds;
      std::vector<double> merged_lats;
      for (const std::vector<double>& part : lats) {
        merged_lats.insert(merged_lats.end(), part.begin(), part.end());
      }
      std::sort(merged_lats.begin(), merged_lats.end());
      result.p50 = PercentileMicros(&merged_lats, 0.50);
      result.p99 = PercentileMicros(&merged_lats, 0.99);
      for (const net::RetryingClient::Counters& c : counters) {
        result.counters.attempts += c.attempts;
        result.counters.retries += c.retries;
        result.counters.reconnects += c.reconnects;
        result.counters.transport_errors += c.transport_errors;
      }
      result.proxied_bytes = proxy.forwarded_bytes() - bytes_before;
      return result;
    };

    Result<std::unique_ptr<net::FaultProxy>> proxy =
        net::FaultProxy::Start("127.0.0.1", port);
    bench::DieOnError(proxy.ok() ? Status::OK() : proxy.status(),
                      "fault proxy");

    net::RetryPolicy policy;
    policy.max_attempts = 8;
    policy.per_attempt_timeout_ms = 10000;
    policy.backoff.base_ms = 5;
    policy.backoff.max_ms = 100;

    std::vector<std::pair<std::string, double>> fault_series;
    fault_series.emplace_back("queries", static_cast<double>(slice.size()));
    std::printf("%-14s %12s %11s %11s %9s %11s\n", "scenario", "query(q/s)",
                "p50(us)", "p99(us)", "retries", "reconnects");
    const auto report = [&](const std::string& name,
                            const ScenarioResult& result) {
      if (!result.ok) {
        std::fprintf(stderr,
                     "FATAL: scenario %s failed or diverged from in-process "
                     "MatchBatch\n",
                     name.c_str());
        std::exit(1);
      }
      std::printf("%-14s %12.0f %11.1f %11.1f %9llu %11llu\n", name.c_str(),
                  result.rate, result.p50, result.p99,
                  static_cast<unsigned long long>(result.counters.retries),
                  static_cast<unsigned long long>(result.counters.reconnects));
      fault_series.emplace_back(name + ".query_rate", result.rate);
      fault_series.emplace_back(name + ".latency_p50_us", result.p50);
      fault_series.emplace_back(name + ".latency_p99_us", result.p99);
      fault_series.emplace_back(
          name + ".retries", static_cast<double>(result.counters.retries));
      fault_series.emplace_back(
          name + ".reconnects",
          static_cast<double>(result.counters.reconnects));
      fault_series.emplace_back(name + ".equivalence_ok", 1.0);
    };

    // Clean link: proxy overhead only; also calibrates bytes/request for
    // the reset scenario.
    const ScenarioResult clean = run_scenario(*proxy.value(), policy);
    report("clean", clean);

    proxy.value()->faults().latency_ms.store(5);
    report("latency_5ms", run_scenario(*proxy.value(), policy));
    proxy.value()->faults().latency_ms.store(0);

    // ~1% of requests hit a reset: RST each connection after it has
    // forwarded about 100 requests' worth of bytes.
    const uint64_t bytes_per_request =
        std::max<uint64_t>(1, clean.proxied_bytes / slice.size());
    proxy.value()->faults().reset_after_bytes.store(
        static_cast<int64_t>(bytes_per_request * 100));
    const ScenarioResult resets = run_scenario(*proxy.value(), policy);
    proxy.value()->faults().reset_after_bytes.store(0);
    if (resets.counters.reconnects == 0) {
      std::fprintf(stderr,
                   "FATAL: reset scenario produced no reconnects — the fault "
                   "never fired\n");
      std::exit(1);
    }
    report("resets_1pct", resets);

    proxy.value()->Shutdown();
    bench::EmitBenchJson("BENCH_net_faults.json", fault_series);
    std::printf(
        "\nReading: the clean row prices the extra proxy hop; latency_5ms "
        "adds the\ninjected RTT to every request; resets_1pct shows retries "
        "absorbing ~1%%\nconnection resets with identical answers.\n");
  }
  std::printf(
      "\nReading: sync throughput is bounded by one in-flight request per "
      "connection\n(latency-dominated); the pipelined path amortizes wire "
      "turnarounds through the\nserver's per-connection MatchBatch folding "
      "and should approach the batch\nengine's rate from bench_service.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
