// Reproduces Table 3: per-attribute average bigram counts b^(f_i), the
// Theorem 1 sizes m_opt^(f_i), the record totals (120 / 267 bits), and
// the K^(f_i) values used in the evaluation.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/embedding/optimal_size.h"
#include "src/embedding/record_encoder.h"

namespace cbvlink {
namespace {

template <typename Generator>
void PrintTableFor(const char* dataset, const Generator& generator,
                   const std::vector<size_t>& K, size_t sample_size) {
  Rng rng(2016);
  std::vector<Record> sample;
  sample.reserve(sample_size);
  for (size_t i = 0; i < sample_size; ++i) {
    sample.push_back(generator.Generate(i, rng));
  }
  const Schema& schema = generator.schema();
  const std::vector<double> b = EstimateExpectedQGrams(schema, sample);

  std::printf("%s (sample of %zu records)\n", dataset, sample_size);
  std::printf("  %-12s %8s %10s %6s\n", "attribute", "b", "m_opt", "K");
  size_t total = 0;
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    Result<size_t> m = OptimalCVectorSize(b[i]);
    bench::DieOnError(m.ok() ? Status::OK() : m.status(), "m_opt");
    total += m.value();
    std::printf("  %-12s %8.1f %10zu %6zu\n",
                schema.attributes[i].name.c_str(), b[i], m.value(), K[i]);
  }
  std::printf("  %-12s %8s %10zu  (paper: %s)\n\n", "record", "",
              total, dataset[0] == 'N' ? "120" : "267");

  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> csv = CsvWriter::Open(
        csv_dir + "/table3_" + std::string(dataset) + ".csv",
        {"attribute", "b", "m_opt", "K"});
    if (csv.ok()) {
      for (size_t i = 0; i < schema.num_attributes(); ++i) {
        csv.value().WriteNumericRow(
            schema.attributes[i].name,
            {b[i], static_cast<double>(OptimalCVectorSize(b[i]).value()),
             static_cast<double>(K[i])});
      }
    }
  }
}

void Run() {
  const size_t sample = RecordsFromEnv(50000);
  bench::Banner("Table 3: attribute-level parameters (rho=1, r=1/3)");

  Result<NcvrGenerator> ncvr = NcvrGenerator::Create();
  bench::DieOnError(ncvr.ok() ? Status::OK() : ncvr.status(), "NCVR gen");
  PrintTableFor("NCVR", ncvr.value(), {5, 5, 10, 5}, sample);

  Result<DblpGenerator> dblp = DblpGenerator::Create();
  bench::DieOnError(dblp.ok() ? Status::OK() : dblp.status(), "DBLP gen");
  PrintTableFor("DBLP", dblp.value(), {5, 5, 12, 5}, sample);
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
