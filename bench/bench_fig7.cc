// Reproduces Figure 7: Pairs Completeness as a function of the Theorem 1
// confidence ratio r (with K = 35), on NCVR-shaped data for both
// perturbation schemes.  The paper's finding: r = 1/3 is the knee —
// smaller r only inflates the c-vectors without buying accuracy.

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/common/str.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(3000);
  const size_t reps = RepetitionsFromEnv(3);
  bench::Banner("Figure 7: PC vs confidence ratio r (K = 35, NCVR)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  const std::string csv_dir = CsvDirFromEnv();
  std::optional<CsvWriter> csv;
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/fig7.csv", {"r", "pc_PL", "pc_PH", "record_bits"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  std::printf("%-8s %10s %10s %14s\n", "r", "PC(PL)", "PC(PH)",
              "record bits");

  const double ratios[] = {1.0 / 2.0, 1.0 / 3.0, 1.0 / 4.0, 1.0 / 5.0};
  for (const double r : ratios) {
    double pc[2] = {0.0, 0.0};
    double bits = 0.0;
    for (int s = 0; s < 2; ++s) {
      const bench::Scheme scheme =
          s == 0 ? bench::Scheme::kPL : bench::Scheme::kPH;
      LinkagePairOptions options;
      options.num_records = n;
      Result<AveragedResult> avg = RunRepeated(
          gen.value(), bench::MakeScheme(scheme), options, reps,
          [&](uint64_t seed) -> Result<std::unique_ptr<Linker>> {
            CbvHbConfig config = bench::CbvHbFor(schema, scheme, seed);
            config.sizing.confidence_ratio = r;
            // Figure 7 uses K = 35.
            if (scheme == bench::Scheme::kPL) {
              config.record_K = 35;
            }
            Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
            if (!linker.ok()) return linker.status();
            return std::unique_ptr<Linker>(
                new CbvHbLinker(std::move(linker).value()));
          });
      bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), "run");
      pc[s] = avg.value().pairs_completeness;
    }
    // Record size at this r, for the size/accuracy trade-off.
    {
      Rng rng(5);
      std::vector<Record> sample;
      for (size_t i = 0; i < 2000; ++i) {
        sample.push_back(gen.value().Generate(i, rng));
      }
      OptimalSizeOptions sizing;
      sizing.confidence_ratio = r;
      Rng enc_rng(6);
      Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
          schema, EstimateExpectedQGrams(schema, sample), enc_rng, sizing);
      if (encoder.ok()) bits = static_cast<double>(encoder.value().total_bits());
    }
    std::printf("%-8.3f %10.3f %10.3f %14.0f\n", r, pc[0], pc[1], bits);
    if (csv.has_value()) {
      csv->WriteNumericRow(StrFormat("%.3f", r), {pc[0], pc[1], bits});
    }
  }
  std::printf(
      "\nExpected shape (paper): PC flattens for r <= 1/3 while record bits "
      "keep growing.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
