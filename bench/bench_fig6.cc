// Reproduces Figure 6: Pairs Completeness and Pairs Quality of the
// attribute-level (rule-aware) blocking vs the standard record-level
// LSH blocking, for the compound rules C1, C2, C3 of Section 6.2 on
// NCVR-shaped data.
//
// The reference match set M for each rule is computed exhaustively over
// A x B on the embedded vectors, since the rules themselves define what
// counts as a match (the NOT of C3 makes perturbation ground truth the
// wrong reference).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/blocking/attribute_blocker.h"
#include "src/blocking/matcher.h"
#include "src/blocking/record_blocker.h"
#include "src/eval/measures.h"

namespace cbvlink {
namespace {

struct RuleCase {
  const char* name;
  Rule rule;
};

struct Outcome {
  double pc = 0.0;
  double pq = 0.0;
};

/// Runs one (rule, blocking mode) cell and returns PC / PQ against the
/// exhaustive rule-defined match set.
Outcome RunCell(const Rule& rule, bool attribute_level,
                const CVectorRecordEncoder& encoder,
                const std::vector<EncodedRecord>& enc_a,
                const std::vector<EncodedRecord>& enc_b,
                const PairSet& rule_matches, uint64_t seed) {
  Rng rng(seed);
  VectorStore store;
  store.AddAll(enc_a);

  std::vector<IdPair> found;
  MatchStats stats;
  const PairClassifier classifier = MakeRuleClassifier(rule, encoder.layout());

  if (attribute_level) {
    AttributeBlockerOptions options;
    options.attribute_K = bench::AttributeK();
    Result<AttributeLevelBlocker> blocker = AttributeLevelBlocker::Create(
        rule, encoder.layout(), options, rng);
    bench::DieOnError(blocker.ok() ? Status::OK() : blocker.status(),
                      "attribute blocker");
    blocker.value().Index(enc_a);
    Matcher matcher(&blocker.value(), &store);
    found = matcher.MatchAll(enc_b, classifier, &stats);
  } else {
    // The standard approach: uniform record-level sampling, K = 30,
    // record threshold = sum of the rule's positive thresholds.
    Result<RecordLevelBlocker> blocker =
        RecordLevelBlocker::Create(encoder.total_bits(), 30, 16, 0.1, rng);
    bench::DieOnError(blocker.ok() ? Status::OK() : blocker.status(),
                      "record blocker");
    blocker.value().Index(enc_a);
    Matcher matcher(&blocker.value(), &store);
    found = matcher.MatchAll(enc_b, classifier, &stats);
  }

  size_t hits = 0;
  PairSet unique_found;
  for (const IdPair& p : found) unique_found.insert(p);
  for (const IdPair& p : unique_found) {
    if (rule_matches.contains(p)) ++hits;
  }
  Outcome out;
  out.pc = rule_matches.empty()
               ? 1.0
               : static_cast<double>(hits) / rule_matches.size();
  out.pq = stats.comparisons == 0
               ? 0.0
               : static_cast<double>(hits) / stats.comparisons;
  return out;
}

void Run() {
  const size_t n = RecordsFromEnv(2000);
  const size_t reps = RepetitionsFromEnv(3);
  bench::Banner("Figure 6: attribute-level vs standard blocking (NCVR, PH)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");

  const std::vector<RuleCase> cases = {
      {"C1", Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)})},
      {"C2", Rule::Or({Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)}),
                       Rule::Pred(2, 8)})},
      {"C3", Rule::And({Rule::Pred(0, 4), Rule::Not(Rule::Pred(1, 4))})},
  };

  std::printf("%-4s %14s %14s %14s %14s\n", "rule", "PC(attr)", "PC(std)",
              "PQ(attr)", "PQ(std)");

  const std::string csv_dir = CsvDirFromEnv();
  std::optional<CsvWriter> csv;
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/fig6.csv",
        {"rule", "pc_attr", "pc_std", "pq_attr", "pq_std"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  for (const RuleCase& rule_case : cases) {
    Outcome attr_sum, std_sum;
    for (size_t rep = 0; rep < reps; ++rep) {
      const uint64_t seed = 1000 + rep * 131;
      LinkagePairOptions options;
      options.num_records = n;
      options.seed = seed;
      Result<LinkagePair> data = BuildLinkagePair(
          gen.value(), PerturbationScheme::Heavy(4), options);
      bench::DieOnError(data.ok() ? Status::OK() : data.status(), "data");

      // Shared encoder for both modes.
      Rng enc_rng(seed + 7);
      Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
          gen.value().schema(),
          EstimateExpectedQGrams(gen.value().schema(), data.value().a),
          enc_rng);
      bench::DieOnError(encoder.ok() ? Status::OK() : encoder.status(),
                        "encoder");

      std::vector<EncodedRecord> enc_a, enc_b;
      for (const Record& r : data.value().a) {
        enc_a.push_back(encoder.value().Encode(r).value());
      }
      for (const Record& r : data.value().b) {
        enc_b.push_back(encoder.value().Encode(r).value());
      }

      // Exhaustive rule-defined match set.
      const PairClassifier classifier =
          MakeRuleClassifier(rule_case.rule, encoder.value().layout());
      PairSet rule_matches;
      for (const EncodedRecord& a : enc_a) {
        for (const EncodedRecord& b : enc_b) {
          if (classifier(a.bits, b.bits)) {
            rule_matches.insert(IdPair{a.id, b.id});
          }
        }
      }

      const Outcome attr =
          RunCell(rule_case.rule, true, encoder.value(), enc_a, enc_b,
                  rule_matches, seed + 11);
      const Outcome standard =
          RunCell(rule_case.rule, false, encoder.value(), enc_a, enc_b,
                  rule_matches, seed + 13);
      attr_sum.pc += attr.pc;
      attr_sum.pq += attr.pq;
      std_sum.pc += standard.pc;
      std_sum.pq += standard.pq;
    }
    const double r = static_cast<double>(reps);
    std::printf("%-4s %14.3f %14.3f %14.5f %14.5f\n", rule_case.name,
                attr_sum.pc / r, std_sum.pc / r, attr_sum.pq / r,
                std_sum.pq / r);
    if (csv.has_value()) {
      csv->WriteNumericRow(rule_case.name,
                           {attr_sum.pc / r, std_sum.pc / r, attr_sum.pq / r,
                            std_sum.pq / r});
    }
  }
  std::printf(
      "\nExpected shape (paper): PC(attr) > PC(std) for all rules, largest "
      "gap at C3;\nPQ(attr) < PQ(std) for C1 (more blocking groups).\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
