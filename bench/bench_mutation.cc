// Mutation-path benchmark: delete throughput, the compaction pause (the
// write stall while the compactor rebuilds and swaps the index), and
// match latency observed by a concurrent reader while compactions run.
// Readers never block on compaction — epoch pinning means the match
// latency during a compaction window should look like the quiet-period
// latency — so the "during" columns are the regression tripwire for the
// epoch-swap design.
//
// Emits BENCH_mutation.json with delete_rate, compaction_pause_us
// percentiles, and match latency percentiles inside/outside compaction
// windows.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stopwatch.h"
#include "src/service/linkage_service.h"

namespace cbvlink {
namespace {

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t rank = static_cast<size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

void Run() {
  const size_t n = RecordsFromEnv(20000);
  const size_t rounds = 5;
  bench::Banner("Mutation: delete throughput and compaction pauses");

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");

  LinkagePairOptions data_options;
  data_options.num_records = n;
  data_options.seed = 42;
  Result<LinkagePair> data = BuildLinkagePair(
      gen.value(), PerturbationScheme::Light(), data_options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "dataset");
  const std::vector<Record>& registry = data.value().a;
  const std::vector<Record>& queries = data.value().b;

  LinkageServiceOptions options;
  options.execution = ExecutionOptions::WithThreads(4);
  Result<std::unique_ptr<LinkageService>> created = LinkageService::Create(
      bench::CbvHbFor(gen.value().schema(), bench::Scheme::kPL, 7), options,
      registry);
  bench::DieOnError(created.ok() ? Status::OK() : created.status(), "service");
  LinkageService& service = *created.value();
  bench::DieOnError(service.InsertBatch(registry), "insert");

  std::printf("registry %zu records, %zu rounds of delete 30%% + compact, "
              "1 concurrent matcher\n\n",
              registry.size(), rounds);

  // The concurrent reader: loops the query stream, stamping each call's
  // latency with whether a compaction was in flight when it started.
  std::atomic<bool> stop{false};
  std::atomic<bool> compacting{false};
  std::vector<double> match_quiet_us;
  std::vector<double> match_during_us;
  std::thread matcher([&] {
    size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const bool during = compacting.load(std::memory_order_relaxed);
      Record query = queries[i % queries.size()];
      query.id = 1000000 + i;
      std::vector<IdPair> out;
      Stopwatch watch;
      bench::DieOnError(service.Match(query, &out), "match");
      const double us = watch.ElapsedSeconds() * 1e6;
      (during ? match_during_us : match_quiet_us).push_back(us);
      ++i;
    }
  });

  // Each round tombstones 30% of the registry (measuring delete
  // throughput), compacts (measuring the pause), then re-inserts the
  // victims so the next round deletes the same set again.
  std::vector<RecordId> victims;
  std::vector<const Record*> victim_records;
  for (size_t i = 0; i < registry.size(); i += 3) {
    victims.push_back(registry[i].id);
    victim_records.push_back(&registry[i]);
  }
  double delete_seconds = 0;
  size_t deletes = 0;
  std::vector<double> pause_us;
  for (size_t round = 0; round < rounds; ++round) {
    Stopwatch delete_watch;
    for (RecordId id : victims) {
      bench::DieOnError(service.Delete(id), "delete");
    }
    delete_seconds += delete_watch.ElapsedSeconds();
    deletes += victims.size();

    compacting.store(true, std::memory_order_relaxed);
    Stopwatch pause_watch;
    bench::DieOnError(service.Compact(), "compact");
    pause_us.push_back(pause_watch.ElapsedSeconds() * 1e6);
    compacting.store(false, std::memory_order_relaxed);

    for (const Record* r : victim_records) {
      bench::DieOnError(service.Insert(*r), "reinsert");
    }
  }
  stop.store(true, std::memory_order_relaxed);
  matcher.join();

  const double delete_rate = static_cast<double>(deletes) / delete_seconds;
  const double pause_p50 = Percentile(pause_us, 0.50);
  const double pause_p99 = Percentile(pause_us, 0.99);
  const double quiet_p50 = Percentile(match_quiet_us, 0.50);
  const double quiet_p99 = Percentile(match_quiet_us, 0.99);
  const double during_p50 = Percentile(match_during_us, 0.50);
  const double during_p99 = Percentile(match_during_us, 0.99);

  std::printf("%-34s %14.0f\n", "delete throughput (rec/s)", delete_rate);
  std::printf("%-34s %10.0f us\n", "compaction pause p50", pause_p50);
  std::printf("%-34s %10.0f us\n", "compaction pause p99", pause_p99);
  std::printf("%-34s %10.1f us (%zu samples)\n", "match latency p50 (quiet)",
              quiet_p50, match_quiet_us.size());
  std::printf("%-34s %10.1f us\n", "match latency p99 (quiet)", quiet_p99);
  std::printf("%-34s %10.1f us (%zu samples)\n",
              "match latency p50 (compacting)", during_p50,
              match_during_us.size());
  std::printf("%-34s %10.1f us\n", "match latency p99 (compacting)",
              during_p99);

  const ServiceMetrics metrics = service.metrics();
  std::vector<std::pair<std::string, double>> series;
  series.emplace_back("records", static_cast<double>(registry.size()));
  series.emplace_back("rounds", static_cast<double>(rounds));
  series.emplace_back("delete_rate", delete_rate);
  series.emplace_back("compaction_pause_us_p50", pause_p50);
  series.emplace_back("compaction_pause_us_p99", pause_p99);
  series.emplace_back("match_quiet_us_p50", quiet_p50);
  series.emplace_back("match_quiet_us_p99", quiet_p99);
  series.emplace_back("match_during_compaction_us_p50", during_p50);
  series.emplace_back("match_during_compaction_us_p99", during_p99);
  series.emplace_back("match_during_samples",
                      static_cast<double>(match_during_us.size()));
  series.emplace_back("compactions", static_cast<double>(metrics.compactions));
  series.emplace_back("compaction_reclaimed",
                      static_cast<double>(metrics.compaction_reclaimed));
  bench::EmitBenchJson("BENCH_mutation.json", series);
  std::printf(
      "\nReading: the pause bounds the write stall only — matches pin the "
      "old epoch\nand keep serving, so the 'compacting' percentiles should "
      "track the quiet ones.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
