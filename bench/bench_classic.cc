// Ablation: classic blocking (sorted neighborhood, canopy clustering —
// the Section 2 related work) vs the LSH-based cBV-HB, under PL on
// NCVR-shaped data.  Demonstrates the paper's claim that the classic
// methods "do not provide any guarantees for identifying record pairs
// that are similar nor scale well".

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/linkage/classic_linker.h"

namespace cbvlink {
namespace {

void Run() {
  const size_t n = RecordsFromEnv(3000);
  const size_t reps = RepetitionsFromEnv(2);
  bench::Banner("Ablation: classic blocking vs LSH blocking (NCVR, PL)");
  std::printf("records=%zu reps=%zu\n\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");
  const Schema& schema = gen.value().schema();

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w = CsvWriter::Open(
        csv_dir + "/classic.csv", {"method", "pc", "pq", "rr", "time_s"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  const auto make_classic =
      [&](ClassicBlocking blocking) -> Result<std::unique_ptr<Linker>> {
    ClassicConfig config;
    config.blocking = blocking;
    config.sorted_neighborhood.window = 10;
    config.edit_thresholds = {1, 1, 1, 1};  // PL: one edit somewhere
    Result<ClassicLinker> linker = ClassicLinker::Create(std::move(config));
    if (!linker.ok()) return linker.status();
    return std::unique_ptr<Linker>(
        new ClassicLinker(std::move(linker).value()));
  };

  std::printf("%-12s %10s %12s %10s %12s\n", "method", "PC", "PQ", "RR",
              "time (s)");
  struct Row {
    const char* label;
    std::function<Result<std::unique_ptr<Linker>>(uint64_t)> make;
  };
  const std::vector<Row> rows = {
      {"cBV-HB",
       [&](uint64_t seed) {
         return bench::MakeLinker("cBV-HB", schema, bench::Scheme::kPL, seed);
       }},
      {"SortedNbh",
       [&](uint64_t) {
         return make_classic(ClassicBlocking::kSortedNeighborhood);
       }},
      {"Canopy",
       [&](uint64_t) { return make_classic(ClassicBlocking::kCanopy); }},
  };
  for (const Row& row : rows) {
    LinkagePairOptions options;
    options.num_records = n;
    Result<AveragedResult> avg =
        RunRepeated(gen.value(), PerturbationScheme::Light(), options, reps,
                    row.make);
    bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), row.label);
    std::printf("%-12s %10.3f %12.5f %10.4f %12.3f\n", row.label,
                avg.value().pairs_completeness, avg.value().pairs_quality,
                avg.value().reduction_ratio, avg.value().total_seconds);
    if (csv.has_value()) {
      csv->WriteNumericRow(row.label,
                           {avg.value().pairs_completeness,
                            avg.value().pairs_quality,
                            avg.value().reduction_ratio,
                            avg.value().total_seconds});
    }
  }
  std::printf(
      "\nReading: the classic methods miss pairs whose keys sort apart / "
      "fall outside a canopy\n(no guarantee), and canopy's center scans "
      "scale poorly; cBV-HB keeps PC >= 0.95 with a\nformal bound.\n");
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
