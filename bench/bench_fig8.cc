// Reproduces Figure 8:
//  (a) total running time of cBV-HB for K in {20, 25, 30, 35, 40} under
//      both perturbation schemes — the U-shape with its minimum near 30;
//  (b) the time needed to embed the data sets for each method
//      (HARRA < cBV-HB < BfH << SM-EB).

#include <cstdio>
#include <optional>

#include "bench/bench_util.h"
#include "src/common/str.h"

namespace cbvlink {
namespace {

void RunPartA(const NcvrGenerator& gen, size_t n, size_t reps,
              std::optional<CsvWriter>& csv) {
  bench::Banner("Figure 8(a): running time vs K (cBV-HB, NCVR)");
  std::printf("%-6s %14s %14s %10s %10s\n", "K", "time PL (s)", "time PH (s)",
              "L(PL)", "L(PH)");
  const Schema& schema = gen.schema();
  for (const size_t K : {20, 25, 30, 35, 40}) {
    double seconds[2] = {0.0, 0.0};
    double groups[2] = {0.0, 0.0};
    for (int s = 0; s < 2; ++s) {
      const bench::Scheme scheme =
          s == 0 ? bench::Scheme::kPL : bench::Scheme::kPH;
      LinkagePairOptions options;
      options.num_records = n;
      Result<AveragedResult> avg = RunRepeated(
          gen, bench::MakeScheme(scheme), options, reps,
          [&](uint64_t seed) -> Result<std::unique_ptr<Linker>> {
            CbvHbConfig config = bench::CbvHbFor(schema, scheme, seed);
            if (scheme == bench::Scheme::kPL) {
              config.record_K = K;
            } else {
              // Scale the Table 3 attribute K's with the total budget:
              // K = 30 maps to the paper's {5, 5, 10}.
              config.attribute_K = {K / 6, K / 6, K / 3, K / 6};
            }
            Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
            if (!linker.ok()) return linker.status();
            return std::unique_ptr<Linker>(
                new CbvHbLinker(std::move(linker).value()));
          });
      bench::DieOnError(avg.ok() ? Status::OK() : avg.status(), "fig8a run");
      seconds[s] = avg.value().total_seconds;
      groups[s] = avg.value().blocking_groups;
    }
    std::printf("%-6zu %14.3f %14.3f %10.0f %10.0f\n", K, seconds[0],
                seconds[1], groups[0], groups[1]);
    if (csv.has_value()) {
      csv->WriteNumericRow(StrFormat("K=%zu", K),
                           {seconds[0], seconds[1], groups[0], groups[1]});
    }
  }
  std::printf(
      "\nExpected shape (paper): time is U-shaped in K with the minimum "
      "near K = 30.\n");
}

void RunPartB(const NcvrGenerator& gen, size_t n, std::optional<CsvWriter>& csv) {
  bench::Banner("Figure 8(b): embedding time per method (NCVR)");
  LinkagePairOptions options;
  options.num_records = n;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  bench::DieOnError(data.ok() ? Status::OK() : data.status(), "data");

  std::printf("%-8s %16s\n", "method", "embed time (s)");
  for (const char* method : {"HARRA", "cBV-HB", "BfH", "SM-EB"}) {
    Result<std::unique_ptr<Linker>> linker =
        bench::MakeLinker(method, gen.schema(), bench::Scheme::kPL, 99);
    bench::DieOnError(linker.ok() ? Status::OK() : linker.status(), method);
    Result<LinkageResult> result =
        linker.value()->Link(data.value().a, data.value().b);
    bench::DieOnError(result.ok() ? Status::OK() : result.status(), method);
    std::printf("%-8s %16.3f\n", method, result.value().embed_seconds);
    if (csv.has_value()) {
      csv->WriteNumericRow(std::string("embed_") + method,
                           {result.value().embed_seconds});
    }
  }
  std::printf(
      "\nExpected shape (paper): HARRA cheapest, SM-EB most expensive by a "
      "large margin (pivot scans).\n");
}

void Run() {
  // The low-K side of the U-shape (overpopulated buckets) only shows at
  // scale; the default is chosen so both sides are visible.
  const size_t n = RecordsFromEnv(8000);
  const size_t reps = RepetitionsFromEnv(2);
  std::printf("records=%zu reps=%zu\n", n, reps);

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  bench::DieOnError(gen.ok() ? Status::OK() : gen.status(), "generator");

  std::optional<CsvWriter> csv;
  const std::string csv_dir = CsvDirFromEnv();
  if (!csv_dir.empty()) {
    Result<CsvWriter> w =
        CsvWriter::Open(csv_dir + "/fig8.csv", {"row", "v1", "v2", "v3", "v4"});
    if (w.ok()) csv.emplace(std::move(w).value());
  }

  RunPartA(gen.value(), n, reps, csv);
  RunPartB(gen.value(), n, csv);
}

}  // namespace
}  // namespace cbvlink

int main() {
  cbvlink::Run();
  return 0;
}
