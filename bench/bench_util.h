// Shared configuration factories and table printing for the figure
// reproduction benches.  Parameters follow Section 6 of the paper; scale
// is controlled by CBVLINK_RECORDS / CBVLINK_REPS (defaults keep each
// bench minutes-scale on a laptop; export CBVLINK_RECORDS=1000000 to run
// at the paper's size).

#ifndef CBVLINK_BENCH_BENCH_UTIL_H_
#define CBVLINK_BENCH_BENCH_UTIL_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/str.h"
#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/csv.h"
#include "src/eval/experiment.h"
#include "src/io/serialization.h"
#include "src/linkage/bfh_linker.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/linkage/harra_linker.h"
#include "src/linkage/smeb_linker.h"

namespace cbvlink {
namespace bench {

/// Which perturbation scheme a configuration targets.
enum class Scheme { kPL, kPH };

inline const char* SchemeName(Scheme scheme) {
  return scheme == Scheme::kPL ? "PL" : "PH";
}

inline PerturbationScheme MakeScheme(Scheme scheme) {
  return scheme == Scheme::kPL ? PerturbationScheme::Light()
                               : PerturbationScheme::Heavy(4);
}

/// The PL classification rule: every attribute within theta = 4.
inline Rule PlRule() {
  return Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 4),
                    Rule::Pred(3, 4)});
}

/// The PH rule C1 of Section 6.2: f1 <= 4 AND f2 <= 4 AND f3 <= 8.
inline Rule PhRuleC1() {
  return Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
}

/// Table 3 per-attribute K values.
inline std::vector<size_t> AttributeK() { return {5, 5, 10, 5}; }

/// cBV-HB configured as in Section 6.2 for the given scheme: PL uses
/// record-level blocking (K = 30, theta = 4); PH applies attribute-level
/// blocking with rule C1.
inline CbvHbConfig CbvHbFor(const Schema& schema, Scheme scheme,
                            uint64_t seed) {
  CbvHbConfig config;
  config.schema = schema;
  config.seed = seed;
  if (scheme == Scheme::kPL) {
    config.rule = PlRule();
    config.attribute_level_blocking = false;
    config.record_K = 30;
    config.record_theta = 4;
  } else {
    config.rule = PhRuleC1();
    config.attribute_level_blocking = true;
    config.attribute_K = AttributeK();
  }
  return config;
}

/// BfH configured as in Section 6.1: 500-bit filters, K = 30.  The paper
/// set its thresholds (45 per field for PL; 45/45/90 for PH) "after
/// experimenting exhaustively using the initial and corresponding
/// perturbed values"; we calibrate the same way against our hash family's
/// distance distribution (p99 of a single edit is ~55 bits — consistent
/// with the paper's own 'JOHN'/'JAHN' = 54 example).
inline BfhConfig BfhFor(const Schema& schema, Scheme scheme, uint64_t seed) {
  BfhConfig config;
  config.schema = schema;
  config.seed = seed;
  config.K = 30;
  if (scheme == Scheme::kPL) {
    config.rule = Rule::And({Rule::Pred(0, 55), Rule::Pred(1, 55),
                             Rule::Pred(2, 55), Rule::Pred(3, 55)});
    config.record_theta = 55;
  } else {
    config.rule = Rule::And(
        {Rule::Pred(0, 60), Rule::Pred(1, 60), Rule::Pred(2, 85)});
    config.record_theta = 205;
  }
  return config;
}

/// HARRA configured as in Section 6.1: K = 5, L = 30 / 90,
/// theta = 0.35 / 0.45.
inline HarraConfig HarraFor(Scheme scheme, uint64_t seed) {
  HarraConfig config;
  config.seed = seed;
  config.K = 5;
  config.L = scheme == Scheme::kPL ? 30 : 90;
  config.theta = scheme == Scheme::kPL ? 0.35 : 0.45;
  return config;
}

/// SM-EB configured as in Section 6.1: d = 20 per attribute, K = 5,
/// L = 29 / 194, thresholds 4.5 (PL) or 4.5/4.5/7.7 (PH).
inline SmEbConfig SmEbFor(const Schema& schema, Scheme scheme,
                          uint64_t seed) {
  SmEbConfig config;
  config.schema = schema;
  config.seed = seed;
  config.K = 5;
  if (scheme == Scheme::kPL) {
    config.thresholds = {4.5, 4.5, 4.5, 4.5};
    config.L = 29;
  } else {
    config.thresholds = {4.5, 4.5, 7.7};
    config.L = 194;
  }
  return config;
}

/// A make_linker callback for RunRepeated, choosing by method name.
inline Result<std::unique_ptr<Linker>> MakeLinker(const std::string& method,
                                                  const Schema& schema,
                                                  Scheme scheme,
                                                  uint64_t seed) {
  if (method == "cBV-HB") {
    Result<CbvHbLinker> linker =
        CbvHbLinker::Create(CbvHbFor(schema, scheme, seed));
    if (!linker.ok()) return linker.status();
    return std::unique_ptr<Linker>(new CbvHbLinker(std::move(linker).value()));
  }
  if (method == "BfH") {
    Result<BfhLinker> linker = BfhLinker::Create(BfhFor(schema, scheme, seed));
    if (!linker.ok()) return linker.status();
    return std::unique_ptr<Linker>(new BfhLinker(std::move(linker).value()));
  }
  if (method == "HARRA") {
    Result<HarraLinker> linker = HarraLinker::Create(HarraFor(scheme, seed));
    if (!linker.ok()) return linker.status();
    return std::unique_ptr<Linker>(new HarraLinker(std::move(linker).value()));
  }
  if (method == "SM-EB") {
    Result<SmEbLinker> linker = SmEbLinker::Create(SmEbFor(schema, scheme, seed));
    if (!linker.ok()) return linker.status();
    return std::unique_ptr<Linker>(new SmEbLinker(std::move(linker).value()));
  }
  return Status::InvalidArgument("unknown method: " + method);
}

/// Prints a banner line for a bench section.
inline void Banner(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Where a bench trajectory file named `file` goes: $CBVLINK_BENCH_DIR
/// when set, the working directory otherwise.  All benches use this so
/// CI can collect every BENCH_*.json from one place.
inline std::string BenchJsonPath(const std::string& file) {
  const char* dir = std::getenv("CBVLINK_BENCH_DIR");
  if (dir == nullptr || *dir == '\0') return file;
  return std::string(dir) + "/" + file;
}

/// Writes an ordered key -> number map as a flat JSON object to `path`
/// through the atomic tmp+rename path (a half-written trajectory file
/// would poison perf-history diffs).  Keys are emitted in the order
/// given; integral values render as integers.  This is the one helper
/// every bench binary shares, so BENCH_*.json files stay uniform.
inline Status WriteBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, double>>& values) {
  std::string payload = "{";
  bool first = true;
  for (const auto& [key, value] : values) {
    payload += first ? "\n  " : ",\n  ";
    first = false;
    payload += "\"" + key + "\": ";
    if (std::isfinite(value) && value == std::floor(value) &&
        std::fabs(value) < 1e15) {
      payload += StrFormat("%lld", static_cast<long long>(value));
    } else if (std::isfinite(value)) {
      payload += StrFormat("%.9g", value);
    } else {
      payload += "null";  // JSON has no NaN/Inf
    }
  }
  payload += first ? "}\n" : "\n}\n";
  return WriteFileAtomically(path, payload);
}


/// One value of a BENCH_*.json object: a number or a string (labels such
/// as the active kernel name ride along with the numeric series).
struct BenchValue {
  BenchValue(double v) : number(v) {}  // NOLINT(runtime/explicit)
  BenchValue(int v) : number(v) {}     // NOLINT(runtime/explicit)
  BenchValue(size_t v)                 // NOLINT(runtime/explicit)
      : number(static_cast<double>(v)) {}
  BenchValue(const char* v) : text(v), is_text(true) {}  // NOLINT
  BenchValue(std::string v)                              // NOLINT
      : text(std::move(v)), is_text(true) {}

  double number = 0;
  std::string text;
  bool is_text = false;
};

/// WriteBenchJson for mixed numeric/string values.  Strings are emitted
/// with minimal escaping (quote and backslash; bench labels are ASCII
/// identifiers in practice).
inline Status WriteBenchJson(
    const std::string& path,
    const std::vector<std::pair<std::string, BenchValue>>& values) {
  std::string payload = "{";
  bool first = true;
  for (const auto& [key, value] : values) {
    payload += first ? "\n  " : ",\n  ";
    first = false;
    payload += "\"" + key + "\": ";
    if (value.is_text) {
      payload += '"';
      for (const char c : value.text) {
        if (c == '"' || c == '\\') payload += '\\';
        payload += c;
      }
      payload += '"';
    } else if (std::isfinite(value.number) &&
               value.number == std::floor(value.number) &&
               std::fabs(value.number) < 1e15) {
      payload += StrFormat("%lld", static_cast<long long>(value.number));
    } else if (std::isfinite(value.number)) {
      payload += StrFormat("%.9g", value.number);
    } else {
      payload += "null";  // JSON has no NaN/Inf
    }
  }
  payload += first ? "}\n" : "\n}\n";
  return WriteFileAtomically(path, payload);
}

/// Aborts the bench with a readable message on configuration errors.
inline void DieOnError(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL (%s): %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

/// WriteBenchJson + a stderr note, aborting the bench on IO errors (a
/// trajectory file silently missing defeats the point of emitting it).
inline void EmitBenchJson(
    const std::string& file,
    const std::vector<std::pair<std::string, double>>& values) {
  const std::string path = BenchJsonPath(file);
  DieOnError(WriteBenchJson(path, values), file.c_str());
  std::fprintf(stderr, "wrote %s (%zu series)\n", path.c_str(),
               values.size());
}

/// EmitBenchJson for mixed numeric/string values.
inline void EmitBenchJson(
    const std::string& file,
    const std::vector<std::pair<std::string, BenchValue>>& values) {
  const std::string path = BenchJsonPath(file);
  DieOnError(WriteBenchJson(path, values), file.c_str());
  std::fprintf(stderr, "wrote %s (%zu series)\n", path.c_str(),
               values.size());
}

}  // namespace bench
}  // namespace cbvlink

#endif  // CBVLINK_BENCH_BENCH_UTIL_H_
