// The Section 3 protocol, end to end: Charlie publishes linkage
// parameters; Alice and Bob encode locally and ship only compact
// embeddings over the (simulated) wire; Charlie links the two files.
//
// Demonstrates what actually crosses the trust boundary: 24 bytes per
// record instead of names and addresses.

#include <cstdio>
#include <sys/stat.h>

#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/measures.h"
#include "src/protocol/party.h"

using namespace cbvlink;

namespace {

long FileSize(const std::string& path) {
  struct stat st {};
  return stat(path.c_str(), &st) == 0 ? static_cast<long>(st.st_size) : -1;
}

}  // namespace

int main() {
  Result<NcvrGenerator> generator = NcvrGenerator::Create();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  // The custodians' private data (Bob's set overlaps Alice's with typos).
  LinkagePairOptions options;
  options.num_records = 10000;
  options.seed = 47;
  Result<LinkagePair> data = BuildLinkagePair(
      generator.value(), PerturbationScheme::Light(), options);
  if (!data.ok()) return 1;

  // Step 1: Charlie publishes the parameters (schema, b estimates from a
  // public sample or prior agreement, sizing, shared hash seed).
  LinkageParameters parameters;
  parameters.schema = generator.value().schema();
  parameters.expected_qgrams = {5.1, 5.0, 20.0, 7.2};  // Table 3
  std::printf("Charlie publishes: 4 attributes, rho=%.1f r=%.3f, seed=%llu\n",
              parameters.sizing.max_collisions,
              parameters.sizing.confidence_ratio,
              static_cast<unsigned long long>(parameters.hash_seed));

  // Step 2: each custodian encodes locally and exports the wire file.
  Result<DataCustodian> alice = DataCustodian::Create("alice", parameters);
  Result<DataCustodian> bob = DataCustodian::Create("bob", parameters);
  if (!alice.ok() || !bob.ok()) return 1;
  const std::string path_a = "/tmp/alice_records.cbv";
  const std::string path_b = "/tmp/bob_records.cbv";
  if (!alice.value().ExportRecords(data.value().a, path_a).ok()) return 1;
  if (!bob.value().ExportRecords(data.value().b, path_b).ok()) return 1;
  std::printf(
      "Alice ships %zu records at %zu bits each: %ld bytes on the wire\n",
      data.value().a.size(), alice.value().record_bits(), FileSize(path_a));
  std::printf(
      "Bob ships   %zu records at %zu bits each: %ld bytes on the wire\n",
      data.value().b.size(), bob.value().record_bits(), FileSize(path_b));

  // Step 3: Charlie links the two files.
  LinkageUnit::Options charlie_options;
  charlie_options.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                                    Rule::Pred(2, 4), Rule::Pred(3, 4)});
  Result<LinkageUnit> charlie =
      LinkageUnit::Create(parameters, charlie_options);
  if (!charlie.ok()) return 1;
  Result<LinkageResultLite> result =
      charlie.value().LinkFiles(path_a, path_b);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const PairSet truth = TruthPairs(data.value().truth);
  size_t hits = 0;
  for (const IdPair& p : result.value().matches) {
    if (truth.contains(p)) ++hits;
  }
  std::printf(
      "\nCharlie reports %zu matching pairs (L = %zu groups, %llu "
      "comparisons)\nrecall of the %zu true matches: %.3f\n",
      result.value().matches.size(), result.value().blocking_groups,
      static_cast<unsigned long long>(result.value().stats.comparisons),
      truth.size(), static_cast<double>(hits) / truth.size());
  return 0;
}
