// Quickstart: link two small voter-style data sets with cBV-HB.
//
// Demonstrates the minimal public-API flow:
//   1. define a schema,
//   2. generate (or load) records,
//   3. configure the cBV-HB linker with a classification rule,
//   4. link and inspect matches and quality measures.

#include <cstdio>

#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/experiment.h"
#include "src/linkage/cbv_hb_linker.h"

using namespace cbvlink;

int main() {
  // 1. An NCVR-shaped generator carries its own 4-attribute schema
  //    (FirstName, LastName, Address, Town).
  Result<NcvrGenerator> generator = NcvrGenerator::Create();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  // 2. Build data sets A and B: 5,000 records each, half of B being
  //    lightly perturbed copies of A records (one random edit).
  LinkagePairOptions data_options;
  data_options.num_records = 5000;
  data_options.seed = 7;
  Result<LinkagePair> data = BuildLinkagePair(
      generator.value(), PerturbationScheme::Light(), data_options);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("Data: |A| = %zu, |B| = %zu, true matches = %zu\n",
              data.value().a.size(), data.value().b.size(),
              data.value().truth.size());

  // 3. Configure cBV-HB: Hamming threshold 4 per attribute (covers one
  //    edit: a substitution flips at most 4 bits), K = 30 base hashes,
  //    blocking groups derived from Equation 2.
  CbvHbConfig config;
  config.schema = generator.value().schema();
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 42;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  if (!linker.ok()) {
    std::fprintf(stderr, "%s\n", linker.status().ToString().c_str());
    return 1;
  }

  // 4. Link and score.
  Result<ExperimentResult> result = RunLinkage(linker.value(), data.value());
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  const ExperimentResult& r = result.value();
  std::printf("\ncBV-HB results\n");
  // encoder() is FailedPrecondition before the first Link(); RunLinkage
  // above already linked, so it is available here.
  Result<const CVectorRecordEncoder*> encoder = linker.value().encoder();
  if (!encoder.ok()) {
    std::fprintf(stderr, "%s\n", encoder.status().ToString().c_str());
    return 1;
  }
  std::printf("  record embedding size : %zu bits\n",
              encoder.value()->total_bits());
  std::printf("  blocking groups (L)   : %zu\n", r.linkage.blocking_groups);
  std::printf("  matched pairs         : %zu\n", r.linkage.matches.size());
  std::printf("  pairs completeness    : %.3f\n",
              r.quality.pairs_completeness);
  std::printf("  pairs quality         : %.4f\n", r.quality.pairs_quality);
  std::printf("  reduction ratio       : %.4f\n", r.quality.reduction_ratio);
  std::printf("  total time            : %.3f s\n",
              r.linkage.total_seconds());

  // A record of 4 strings in ~120 bits, linked with >95%% recall — the
  // paper's headline.
  return 0;
}
