// Single-database deduplication: a citation catalog accumulated from
// multiple imports contains typo-variant duplicates; FindDuplicates
// blocks, matches, and clusters them into entities in one pass.

#include <cstdio>
#include <map>

#include "src/datagen/generators.h"
#include "src/datagen/perturbator.h"
#include "src/linkage/dedup.h"

using namespace cbvlink;

int main() {
  Result<DblpGenerator> generator = DblpGenerator::Create();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  // A catalog of 6,000 entries: 4,000 distinct publications, a third of
  // which were imported twice more with typos.
  Rng rng(61);
  std::vector<Record> catalog;
  RecordId next_id = 0;
  size_t planted_duplicates = 0;
  const PerturbationScheme scheme = PerturbationScheme::Light();
  for (size_t i = 0; i < 4000; ++i) {
    Record original = generator.value().Generate(next_id++, rng);
    const bool duplicated = rng.NextBool(1.0 / 3.0);
    catalog.push_back(original);
    if (duplicated) {
      for (int copy = 0; copy < 2; ++copy) {
        Result<Record> dup = Perturbator::Apply(original, scheme, rng, nullptr);
        if (!dup.ok()) return 1;
        Record r = std::move(dup).value();
        r.id = next_id++;
        catalog.push_back(std::move(r));
        ++planted_duplicates;
      }
    } else {
      // keep id spacing uniform
    }
  }
  std::printf("Catalog: %zu entries, %zu planted duplicate copies\n",
              catalog.size(), planted_duplicates);

  CbvHbConfig config;
  config.schema = generator.value().schema();
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 62;
  Result<DedupResult> result = FindDuplicates(catalog, config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  std::map<size_t, size_t> cluster_size_histogram;
  size_t non_singleton = 0;
  for (const auto& cluster : result.value().clusters) {
    ++cluster_size_histogram[cluster.size()];
    if (cluster.size() > 1) ++non_singleton;
  }
  std::printf("\nFound %zu duplicate pairs in %llu comparisons "
              "(%zu blocking groups)\n",
              result.value().duplicate_pairs.size(),
              static_cast<unsigned long long>(
                  result.value().stats.comparisons),
              result.value().blocking_groups);
  std::printf("%zu entity clusters (%zu with duplicates):\n",
              result.value().clusters.size(), non_singleton);
  for (const auto& [size, count] : cluster_size_histogram) {
    std::printf("  clusters of size %zu: %zu\n", size, count);
  }
  std::printf(
      "\nExpected: ~%zu triples (original + 2 copies) and the rest "
      "singletons.\n",
      planted_duplicates / 2);
  return 0;
}
