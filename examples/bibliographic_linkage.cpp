// Bibliographic deduplication (the DBLP scenario of Section 6): link two
// citation lists whose entries carry author names, long titles, and a
// year.  Compares cBV-HB against HARRA to show why one shared bigram
// vector for the whole record (HARRA) loses accuracy when attributes
// share bigrams — e.g. a surname token appearing inside a title.

#include <cstdio>

#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/experiment.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/linkage/harra_linker.h"

using namespace cbvlink;

int main() {
  Result<DblpGenerator> generator = DblpGenerator::Create();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  LinkagePairOptions options;
  options.num_records = 4000;
  options.seed = 2016;
  Result<LinkagePair> data = BuildLinkagePair(
      generator.value(), PerturbationScheme::Light(), options);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }
  std::printf("Citation lists: |A| = |B| = %zu, true duplicates = %zu\n\n",
              data.value().a.size(), data.value().truth.size());

  // cBV-HB: attribute-level c-vectors; the Title attribute alone needs
  // ~226 bits (Table 3), the whole record ~267.
  CbvHbConfig cbv;
  cbv.schema = generator.value().schema();
  cbv.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 4),
                        Rule::Pred(3, 4)});
  cbv.record_K = 30;
  cbv.record_theta = 4;
  cbv.seed = 1;
  Result<CbvHbLinker> cbv_linker = CbvHbLinker::Create(std::move(cbv));
  if (!cbv_linker.ok()) {
    std::fprintf(stderr, "%s\n", cbv_linker.status().ToString().c_str());
    return 1;
  }
  Result<ExperimentResult> cbv_result =
      RunLinkage(cbv_linker.value(), data.value());
  if (!cbv_result.ok()) {
    std::fprintf(stderr, "%s\n", cbv_result.status().ToString().c_str());
    return 1;
  }

  // HARRA: one MinHash-blocked bigram set per record.
  HarraConfig harra;
  harra.K = 5;
  harra.L = 30;
  harra.theta = 0.35;
  harra.seed = 2;
  Result<HarraLinker> harra_linker = HarraLinker::Create(std::move(harra));
  if (!harra_linker.ok()) {
    std::fprintf(stderr, "%s\n", harra_linker.status().ToString().c_str());
    return 1;
  }
  Result<ExperimentResult> harra_result =
      RunLinkage(harra_linker.value(), data.value());
  if (!harra_result.ok()) {
    std::fprintf(stderr, "%s\n", harra_result.status().ToString().c_str());
    return 1;
  }

  std::printf("%-8s %10s %12s %10s %12s\n", "method", "PC", "PQ", "RR",
              "time (s)");
  for (const ExperimentResult* r : {&cbv_result.value(),
                                    &harra_result.value()}) {
    std::printf("%-8s %10.3f %12.5f %10.4f %12.3f\n", r->method.c_str(),
                r->quality.pairs_completeness, r->quality.pairs_quality,
                r->quality.reduction_ratio, r->linkage.total_seconds());
  }
  std::printf(
      "\nThe attribute-separated embedding keeps title bigrams from "
      "polluting name distances;\nHARRA's single shared vector cannot "
      "(Section 6.2's DBLP discussion).\n");
  return 0;
}
