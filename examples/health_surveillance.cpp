// Health-surveillance streaming scenario (the introduction's motivating
// application): a registry of hospital patient records is indexed once;
// pharmacy records then arrive one at a time and are matched in real
// time against the registry using the compact 120-bit embeddings.
//
// Demonstrates the streaming API (OnlineCbvHbLinker), per-event matching
// latency, and why small embeddings matter in distributed settings
// (bytes shipped per record).

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/common/stopwatch.h"
#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/measures.h"
#include "src/linkage/online_linker.h"

using namespace cbvlink;

int main() {
  Result<NcvrGenerator> generator = NcvrGenerator::Create();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  // Hospital registry (A) and a stream of pharmacy events (B): half the
  // events refer to registered patients, with typos.
  LinkagePairOptions options;
  options.num_records = 20000;
  options.seed = 11;
  Result<LinkagePair> data = BuildLinkagePair(
      generator.value(), PerturbationScheme::Light(), options);
  if (!data.ok()) {
    std::fprintf(stderr, "%s\n", data.status().ToString().c_str());
    return 1;
  }

  // One-time setup: the online linker estimates b^(f_i) from the
  // registry, sizes the c-vectors with Theorem 1, and builds the HB
  // blocking groups (Equation 2).
  CbvHbConfig config;
  config.schema = generator.value().schema();
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 23;
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(std::move(config), data.value().a);
  if (!linker.ok()) {
    std::fprintf(stderr, "%s\n", linker.status().ToString().c_str());
    return 1;
  }

  Stopwatch setup;
  for (const Record& patient : data.value().a) {
    const Status status = linker.value().Insert(patient);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("Registry indexed: %zu patients in %.2f s "
              "(%zu bits/record on the wire, L = %zu groups)\n",
              linker.value().size(), setup.ElapsedSeconds(),
              linker.value().encoder().total_bits(),
              linker.value().blocking_groups());

  // The stream: match each pharmacy event as it arrives.
  std::vector<IdPair> alerts;
  Stopwatch stream;
  double worst_ms = 0.0;
  for (const Record& event : data.value().b) {
    Stopwatch one;
    const Status status = linker.value().Match(event, &alerts);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    worst_ms = std::max(worst_ms, one.ElapsedMillis());
  }
  const double total_s = stream.ElapsedSeconds();

  const PairSet truth = TruthPairs(data.value().truth);
  const QualityMeasures q = ComputeQuality(
      alerts, truth, linker.value().stats().comparisons,
      data.value().a.size(), data.value().b.size());

  std::printf("\nStream processed: %zu events in %.2f s "
              "(%.0f events/s, worst event %.2f ms)\n",
              data.value().b.size(), total_s,
              static_cast<double>(data.value().b.size()) / total_s, worst_ms);
  std::printf("Alerts raised: %zu (recall %.3f, candidate comparisons "
              "%llu of %.0f possible)\n",
              alerts.size(), q.pairs_completeness,
              static_cast<unsigned long long>(
                  linker.value().stats().comparisons),
              static_cast<double>(data.value().a.size()) *
                  static_cast<double>(data.value().b.size()));
  return 0;
}
