// Rule-aware blocking walkthrough (Section 5.4): parse textual
// classification rules, inspect the blocking structures they induce
// (AND / OR / NOT, per-structure L from Equations 2 and 10-12), and link
// with a compound rule including a NOT.

#include <cstdio>

#include "src/blocking/attribute_blocker.h"
#include "src/blocking/matcher.h"
#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/measures.h"
#include "src/rules/probability.h"
#include "src/rules/rule_parser.h"

using namespace cbvlink;

int main() {
  Result<NcvrGenerator> generator = NcvrGenerator::Create();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }
  const Schema& schema = generator.value().schema();

  // Generate and encode a small data set.
  LinkagePairOptions options;
  options.num_records = 1500;
  options.seed = 5;
  Result<LinkagePair> data = BuildLinkagePair(
      generator.value(), PerturbationScheme::Heavy(4), options);
  if (!data.ok()) return 1;

  Rng rng(9);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      schema, EstimateExpectedQGrams(schema, data.value().a), rng);
  if (!encoder.ok()) return 1;
  std::printf("Record layout:");
  for (size_t i = 0; i < schema.num_attributes(); ++i) {
    std::printf(" %s=%zu bits", schema.attributes[i].name.c_str(),
                encoder.value().layout().segment(i).size);
  }
  std::printf(" (total %zu)\n\n", encoder.value().total_bits());

  // Three textual rules, parsed like a downstream user would write them.
  const char* rule_texts[] = {
      "f1 <= 4 AND f2 <= 4 AND f3 <= 8",             // C1
      "(f1 <= 4 AND f2 <= 4) OR f3 <= 8",            // C2
      "f1 <= 4 AND NOT f2 <= 4",                     // C3
  };

  std::vector<EncodedRecord> enc_a;
  for (const Record& r : data.value().a) {
    enc_a.push_back(encoder.value().Encode(r).value());
  }
  std::vector<EncodedRecord> enc_b;
  for (const Record& r : data.value().b) {
    enc_b.push_back(encoder.value().Encode(r).value());
  }
  VectorStore store;
  store.AddAll(enc_a);

  for (const char* text : rule_texts) {
    Result<Rule> rule = ParseRule(text);
    if (!rule.ok()) {
      std::fprintf(stderr, "parse error: %s\n",
                   rule.status().ToString().c_str());
      return 1;
    }
    std::printf("rule %s\n", rule.value().ToString().c_str());

    // The collision probability the blocking structures are sized for.
    std::vector<AttributeLshParams> params;
    const std::vector<size_t> K = {5, 5, 10, 5};
    for (size_t i = 0; i < schema.num_attributes(); ++i) {
      params.push_back({encoder.value().layout().segment(i).size, K[i]});
    }
    Result<double> p = RuleCollisionProbability(rule.value(), params);
    if (p.ok()) {
      std::printf("  per-group collision probability >= %.5f\n", p.value());
    }

    AttributeBlockerOptions blocker_options;
    blocker_options.attribute_K = K;
    Rng blocker_rng(17);
    Result<AttributeLevelBlocker> blocker = AttributeLevelBlocker::Create(
        rule.value(), encoder.value().layout(), blocker_options, blocker_rng);
    if (!blocker.ok()) {
      std::fprintf(stderr, "  blocker: %s\n",
                   blocker.status().ToString().c_str());
      continue;
    }
    std::printf("  blocking structures: %zu, tables: %zu, L per structure:",
                blocker.value().num_structures(),
                blocker.value().TotalTables());
    for (size_t s = 0; s < blocker.value().num_structures(); ++s) {
      std::printf(" %zu", blocker.value().structure_L(s));
    }
    std::printf("\n");

    blocker.value().Index(enc_a);
    Matcher matcher(&blocker.value(), &store);
    MatchStats stats;
    const PairClassifier classifier =
        MakeRuleClassifier(rule.value(), encoder.value().layout());
    const std::vector<IdPair> matches =
        matcher.MatchAll(enc_b, classifier, &stats);
    std::printf("  comparisons: %llu, matched pairs: %zu\n\n",
                static_cast<unsigned long long>(stats.comparisons),
                matches.size());
  }
  return 0;
}
