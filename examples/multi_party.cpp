// Multi-party linkage (Section 5.3): three hospital registries submit
// their records to Charlie, who identifies the common patients across
// every pair of custodians in a single blocking pass.

#include <cstdio>
#include <map>

#include "src/datagen/generators.h"
#include "src/datagen/perturbator.h"
#include "src/linkage/multi_party.h"

using namespace cbvlink;

int main() {
  Result<NcvrGenerator> generator = NcvrGenerator::Create();
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().ToString().c_str());
    return 1;
  }

  // Build three registries: 2,000 shared patients (with independent
  // single-typo corruption per registry) plus 1,000 unique per site.
  Rng rng(31);
  std::vector<Record> population;
  for (size_t i = 0; i < 2000; ++i) {
    population.push_back(generator.value().Generate(i, rng));
  }
  const PerturbationScheme scheme = PerturbationScheme::Light();
  std::vector<std::vector<Record>> hospitals(3);
  for (size_t h = 0; h < 3; ++h) {
    for (const Record& patient : population) {
      Result<Record> noisy = Perturbator::Apply(patient, scheme, rng, nullptr);
      if (!noisy.ok()) return 1;
      hospitals[h].push_back(std::move(noisy).value());  // keeps patient id
    }
    for (size_t i = 0; i < 1000; ++i) {
      Record unique = generator.value().Generate(100000 + h * 10000 + i, rng);
      unique.id = 2000 + i;  // ids only need uniqueness within a party
      hospitals[h].push_back(std::move(unique));
    }
  }
  std::printf("3 registries x %zu records (2000 shared patients each)\n",
              hospitals[0].size());

  MultiPartyConfig config;
  config.schema = generator.value().schema();
  // Each side of a cross-registry pair carries one typo, so distances
  // can reach 2 edits per attribute: budget 8 bits (alpha = 4).
  config.rule = Rule::And({Rule::Pred(0, 8), Rule::Pred(1, 8),
                           Rule::Pred(2, 8), Rule::Pred(3, 8)});
  config.record_theta = 8;
  config.seed = 77;
  Result<MultiPartyLinker> linker = MultiPartyLinker::Create(std::move(config));
  if (!linker.ok()) {
    std::fprintf(stderr, "%s\n", linker.status().ToString().c_str());
    return 1;
  }
  Result<MultiPartyResult> result = linker.value().Link(hospitals);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // Score per registry pair: a cross-match is true when both sides carry
  // the same shared-patient id (< 2000).
  std::map<std::pair<PartyId, PartyId>, std::pair<size_t, size_t>> per_pair;
  for (const MultiPartyMatch& m : result.value().matches) {
    auto& [true_hits, total] = per_pair[{m.party_a, m.party_b}];
    ++total;
    if (m.id_a == m.id_b && m.id_a < 2000) ++true_hits;
  }
  std::printf("\n%zu cross-registry matches, %llu comparisons, L = %zu\n",
              result.value().matches.size(),
              static_cast<unsigned long long>(
                  result.value().stats.comparisons),
              result.value().blocking_groups);
  for (const auto& [parties, counts] : per_pair) {
    std::printf(
        "  registries %zu-%zu: %zu matches, recall of shared patients "
        "%.3f\n",
        parties.first, parties.second, counts.second,
        static_cast<double>(counts.first) / 2000.0);
  }
  return 0;
}
