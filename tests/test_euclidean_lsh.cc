#include "src/lsh/euclidean_lsh.h"

#include <gtest/gtest.h>

#include "src/lsh/params.h"

namespace cbvlink {
namespace {

TEST(EuclideanLshFamilyTest, CreateValidation) {
  Rng rng(1);
  EXPECT_FALSE(EuclideanLshFamily::Create(0, 3, 20, 4.0, rng).ok());
  EXPECT_FALSE(EuclideanLshFamily::Create(5, 0, 20, 4.0, rng).ok());
  EXPECT_FALSE(EuclideanLshFamily::Create(5, 3, 0, 4.0, rng).ok());
  EXPECT_FALSE(EuclideanLshFamily::Create(5, 3, 20, 0.0, rng).ok());
  EXPECT_FALSE(EuclideanLshFamily::Create(5, 3, 20, -1.0, rng).ok());
  Result<EuclideanLshFamily> family =
      EuclideanLshFamily::Create(5, 3, 20, 4.0, rng);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family.value().K(), 5u);
  EXPECT_EQ(family.value().L(), 3u);
  EXPECT_EQ(family.value().dimensions(), 20u);
}

TEST(EuclideanLshFamilyTest, EqualPointsEqualKeys) {
  Rng rng(2);
  const EuclideanLshFamily family =
      EuclideanLshFamily::Create(5, 4, 8, 4.0, rng).value();
  const std::vector<double> p{1.0, -2.0, 0.5, 3.0, 0.0, 0.0, 1.0, 2.0};
  for (size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(family.Key(p, l), family.Key(p, l));
  }
}

TEST(EuclideanLshFamilyTest, NearbyPointsCollideMoreOftenThanFarPoints) {
  Rng rng(3);
  const std::vector<double> origin(10, 0.0);
  std::vector<double> near(10, 0.0);
  near[0] = 0.5;
  std::vector<double> far(10, 0.0);
  for (auto& v : far) v = 10.0;

  constexpr size_t kTrials = 1500;
  size_t near_hits = 0;
  size_t far_hits = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const EuclideanLshFamily family =
        EuclideanLshFamily::Create(2, 1, 10, 4.0, rng).value();
    if (family.Key(origin, 0) == family.Key(near, 0)) ++near_hits;
    if (family.Key(origin, 0) == family.Key(far, 0)) ++far_hits;
  }
  EXPECT_GT(near_hits, far_hits * 3);
  EXPECT_GT(near_hits, kTrials / 2);
}

TEST(EuclideanLshFamilyTest, CollisionRateMatchesDatarFormula) {
  // Empirical single-projection collision rate at distance c should match
  // EuclideanBaseProbability(c, w).
  Rng rng(4);
  constexpr double kW = 4.0;
  constexpr double kC = 4.0;
  const std::vector<double> a(6, 0.0);
  std::vector<double> b(6, 0.0);
  b[0] = kC;

  constexpr size_t kTrials = 6000;
  size_t hits = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const EuclideanLshFamily family =
        EuclideanLshFamily::Create(1, 1, 6, kW, rng).value();
    if (family.Key(a, 0) == family.Key(b, 0)) ++hits;
  }
  const double expected = EuclideanBaseProbability(kC, kW).value();
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, expected, 0.03);
}

TEST(EuclideanLshFamilyTest, TranslationInvarianceOfDistances) {
  // Keys themselves change under translation, but collision behaviour
  // depends only on the difference vector; check empirically.
  Rng rng(5);
  const std::vector<double> a1{0.0, 0.0};
  const std::vector<double> b1{1.0, 1.0};
  const std::vector<double> a2{100.0, -50.0};
  const std::vector<double> b2{101.0, -49.0};
  constexpr size_t kTrials = 3000;
  size_t hits1 = 0;
  size_t hits2 = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const EuclideanLshFamily family =
        EuclideanLshFamily::Create(1, 1, 2, 4.0, rng).value();
    if (family.Key(a1, 0) == family.Key(b1, 0)) ++hits1;
    if (family.Key(a2, 0) == family.Key(b2, 0)) ++hits2;
  }
  EXPECT_NEAR(static_cast<double>(hits1) / kTrials,
              static_cast<double>(hits2) / kTrials, 0.04);
}

}  // namespace
}  // namespace cbvlink
