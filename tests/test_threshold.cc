#include "src/rules/threshold.h"

#include <gtest/gtest.h>

#include <string>

#include "src/datagen/perturbator.h"
#include "src/embedding/qgram_vector.h"

namespace cbvlink {
namespace {

TEST(HammingThetaTest, PaperValuesForBigrams) {
  // One substitution: alpha = 4 (Section 5.1).
  EXPECT_EQ(HammingThetaForEditBudget({.substitutions = 1}).value(), 4u);
  // One insert/delete: alpha = 3.
  EXPECT_EQ(HammingThetaForEditBudget({.indels = 1}).value(), 3u);
  // The PH Address budget (two operations): worst case two substitutions.
  EXPECT_EQ(HammingThetaForEditBudget({.substitutions = 2}).value(), 8u);
  // Zero budget -> exact match only.
  EXPECT_EQ(HammingThetaForEditBudget({}).value(), 0u);
}

TEST(HammingThetaTest, TrigramScaling) {
  EXPECT_EQ(
      HammingThetaForEditBudget({.substitutions = 1}, /*q=*/3).value(), 6u);
  EXPECT_EQ(HammingThetaForEditBudget({.indels = 1}, /*q=*/3).value(), 5u);
}

TEST(HammingThetaTest, RejectsUnigram) {
  EXPECT_FALSE(HammingThetaForEditBudget({.substitutions = 1}, 1).ok());
  EXPECT_FALSE(HammingThetaForEditBudget({}, 0).ok());
}

TEST(HammingThetaTest, BudgetIsSoundAgainstActualVectors) {
  // Property: for any mix of n_sub substitutions and n_indel edits, the
  // full q-gram vector distance never exceeds the derived theta.
  Result<QGramExtractor> extractor =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  ASSERT_TRUE(extractor.ok());
  const QGramVectorEncoder encoder =
      QGramVectorEncoder::Create(std::move(extractor).value()).value();
  Rng rng(7);
  const std::string base = "MONTGOMERY";
  for (size_t subs = 0; subs <= 2; ++subs) {
    for (size_t indels = 0; indels <= 2; ++indels) {
      const size_t theta =
          HammingThetaForEditBudget({subs, indels}).value();
      for (int trial = 0; trial < 50; ++trial) {
        std::string perturbed = base;
        for (size_t i = 0; i < subs; ++i) {
          perturbed = Perturbator::ApplyOp(
              perturbed, PerturbationType::kSubstitute, rng);
        }
        for (size_t i = 0; i < indels; ++i) {
          perturbed = Perturbator::ApplyOp(
              perturbed,
              rng.NextBool(0.5) ? PerturbationType::kInsert
                                : PerturbationType::kDelete,
              rng);
        }
        EXPECT_LE(encoder.Encode(base).HammingDistance(
                      encoder.Encode(perturbed)),
                  theta)
            << base << " -> " << perturbed << " subs=" << subs
            << " indels=" << indels;
      }
    }
  }
}

TEST(RuleForEditBudgetsTest, SingleBudgetIsPredicate) {
  Result<Rule> rule = RuleForEditBudgets({{.substitutions = 1}});
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule.value().ToString(), "(f1 <= 4)");
}

TEST(RuleForEditBudgetsTest, MultipleBudgetsConjoin) {
  // The paper's PH rule C1: one edit on f1 and f2, two on f3.
  Result<Rule> rule = RuleForEditBudgets(
      {{.substitutions = 1}, {.substitutions = 1}, {.substitutions = 2}});
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(rule.value().ToString(),
            "((f1 <= 4) AND (f2 <= 4) AND (f3 <= 8))");
}

TEST(RuleForEditBudgetsTest, EmptyRejected) {
  EXPECT_FALSE(RuleForEditBudgets({}).ok());
}

}  // namespace
}  // namespace cbvlink
