#include "src/linkage/online_linker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/measures.h"

namespace cbvlink {
namespace {

CbvHbConfig BaseConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 5;
  return config;
}

TEST(OnlineLinkerTest, NeedsCalibrationOrExplicitB) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  EXPECT_FALSE(
      OnlineCbvHbLinker::Create(BaseConfig(gen.value().schema())).ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  EXPECT_TRUE(OnlineCbvHbLinker::Create(std::move(config)).ok());
}

TEST(OnlineLinkerTest, PropagatesConfigValidation) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.rule = Rule::Pred(9, 4);  // out of range
  EXPECT_FALSE(OnlineCbvHbLinker::Create(std::move(config)).ok());
}

TEST(OnlineLinkerTest, InsertThenMatchFindsDuplicates) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());

  Rng rng(1);
  const Record alice = gen.value().Generate(0, rng);
  const Record bob = gen.value().Generate(1, rng);
  ASSERT_TRUE(linker.value().Insert(alice).ok());
  ASSERT_TRUE(linker.value().Insert(bob).ok());
  EXPECT_EQ(linker.value().size(), 2u);

  Record query = alice;
  query.id = 100;
  std::vector<IdPair> out;
  ASSERT_TRUE(linker.value().Match(query, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a_id, alice.id);
  EXPECT_EQ(out[0].b_id, 100u);
  EXPECT_GT(linker.value().stats().comparisons, 0u);
}

TEST(OnlineLinkerTest, MatchDoesNotInsert) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Rng rng(2);
  const Record r = gen.value().Generate(0, rng);
  std::vector<IdPair> out;
  ASSERT_TRUE(linker.value().Match(r, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(linker.value().size(), 0u);
}

TEST(OnlineLinkerTest, MatchAndInsertChainsArrivals) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Rng rng(3);
  Record r = gen.value().Generate(0, rng);
  std::vector<IdPair> out;
  ASSERT_TRUE(linker.value().MatchAndInsert(r, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(linker.value().size(), 1u);
  // The same record arriving again now matches the first arrival.
  Record again = r;
  again.id = 55;
  ASSERT_TRUE(linker.value().MatchAndInsert(again, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a_id, r.id);
  EXPECT_EQ(linker.value().size(), 2u);
}

TEST(OnlineLinkerTest, StreamingEqualsBatchRecall) {
  // Feeding B as a stream must find (at least) the pairs the batch
  // pipeline finds under the same seed/encoder parameters.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 500;
  options.seed = 21;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());

  CbvHbConfig config = BaseConfig(gen.value().schema());
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(std::move(config), data.value().a);
  ASSERT_TRUE(linker.ok());
  for (const Record& r : data.value().a) {
    ASSERT_TRUE(linker.value().Insert(r).ok());
  }
  std::vector<IdPair> found;
  for (const Record& r : data.value().b) {
    ASSERT_TRUE(linker.value().Match(r, &found).ok());
  }
  const PairSet truth = TruthPairs(data.value().truth);
  size_t hits = 0;
  PairSet unique;
  for (const IdPair& p : found) unique.insert(p);
  for (const IdPair& p : unique) {
    if (truth.contains(p)) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(truth.size()),
            0.9);
}

TEST(OnlineLinkerTest, AttributeLevelStreamingWorks) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.attribute_level_blocking = true;
  config.attribute_K = {5, 5, 10, 5};
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  EXPECT_GT(linker.value().blocking_groups(), 0u);

  Rng rng(9);
  const Record r = gen.value().Generate(0, rng);
  ASSERT_TRUE(linker.value().Insert(r).ok());
  Record query = r;
  query.id = 77;
  std::vector<IdPair> out;
  ASSERT_TRUE(linker.value().Match(query, &out).ok());
  ASSERT_EQ(out.size(), 1u);
}

TEST(OnlineLinkerTest, EncoderExposedForIntrospection) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  Result<OnlineCbvHbLinker> linker =
      OnlineCbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  EXPECT_EQ(linker.value().encoder().total_bits(), 120u);
}

}  // namespace
}  // namespace cbvlink
