#include "src/common/bitvector.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace cbvlink {
namespace {

TEST(BitVectorTest, DefaultIsEmpty) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.PopCount(), 0u);
}

TEST(BitVectorTest, ConstructedCleared) {
  BitVector bv(130);
  EXPECT_EQ(bv.size(), 130u);
  EXPECT_FALSE(bv.empty());
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bv.Test(i));
}

TEST(BitVectorTest, SetClearTest) {
  BitVector bv(100);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(99);
  EXPECT_TRUE(bv.Test(0));
  EXPECT_TRUE(bv.Test(63));
  EXPECT_TRUE(bv.Test(64));
  EXPECT_TRUE(bv.Test(99));
  EXPECT_FALSE(bv.Test(1));
  EXPECT_EQ(bv.PopCount(), 4u);
  bv.Clear(63);
  EXPECT_FALSE(bv.Test(63));
  EXPECT_EQ(bv.PopCount(), 3u);
}

TEST(BitVectorTest, AssignSetsAndClears) {
  BitVector bv(10);
  bv.Assign(3, true);
  EXPECT_TRUE(bv.Test(3));
  bv.Assign(3, false);
  EXPECT_FALSE(bv.Test(3));
}

TEST(BitVectorTest, ResetClearsAllKeepingSize) {
  BitVector bv(70);
  bv.Set(5);
  bv.Set(65);
  bv.Reset();
  EXPECT_EQ(bv.size(), 70u);
  EXPECT_EQ(bv.PopCount(), 0u);
}

TEST(BitVectorTest, HammingDistanceBasic) {
  BitVector a(128);
  BitVector b(128);
  EXPECT_EQ(a.HammingDistance(b), 0u);
  a.Set(0);
  a.Set(64);
  a.Set(127);
  EXPECT_EQ(a.HammingDistance(b), 3u);
  b.Set(64);
  EXPECT_EQ(a.HammingDistance(b), 2u);
  b.Set(1);
  EXPECT_EQ(a.HammingDistance(b), 3u);
}

TEST(BitVectorTest, HammingIsSymmetric) {
  Rng rng(1);
  BitVector a(200);
  BitVector b(200);
  for (int i = 0; i < 50; ++i) {
    a.Set(rng.Below(200));
    b.Set(rng.Below(200));
  }
  EXPECT_EQ(a.HammingDistance(b), b.HammingDistance(a));
}

TEST(BitVectorTest, AppendWordAligned) {
  BitVector a(64);
  a.Set(1);
  BitVector b(64);
  b.Set(0);
  b.Set(63);
  a.Append(b);
  EXPECT_EQ(a.size(), 128u);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(64));
  EXPECT_TRUE(a.Test(127));
  EXPECT_EQ(a.PopCount(), 3u);
}

TEST(BitVectorTest, AppendUnaligned) {
  BitVector a(15);
  a.Set(0);
  a.Set(14);
  BitVector b(22);
  b.Set(0);
  b.Set(21);
  a.Append(b);
  EXPECT_EQ(a.size(), 37u);
  EXPECT_TRUE(a.Test(0));
  EXPECT_TRUE(a.Test(14));
  EXPECT_TRUE(a.Test(15));
  EXPECT_TRUE(a.Test(36));
  EXPECT_EQ(a.PopCount(), 4u);
}

TEST(BitVectorTest, AppendToEmpty) {
  BitVector a;
  BitVector b(10);
  b.Set(9);
  a.Append(b);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_TRUE(a.Test(9));
}

TEST(BitVectorTest, SliceAlignedAndUnaligned) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(64);
  bv.Set(65);
  bv.Set(129);

  BitVector aligned = bv.Slice(64, 66);
  EXPECT_EQ(aligned.size(), 66u);
  EXPECT_TRUE(aligned.Test(0));
  EXPECT_TRUE(aligned.Test(1));
  EXPECT_TRUE(aligned.Test(65));
  EXPECT_EQ(aligned.PopCount(), 3u);

  BitVector unaligned = bv.Slice(63, 4);
  EXPECT_EQ(unaligned.size(), 4u);
  EXPECT_FALSE(unaligned.Test(0));  // bit 63
  EXPECT_TRUE(unaligned.Test(1));   // bit 64
  EXPECT_TRUE(unaligned.Test(2));   // bit 65
  EXPECT_FALSE(unaligned.Test(3));  // bit 66
}

TEST(BitVectorTest, SliceTailBitsAreMaskedOut) {
  BitVector bv(128);
  for (size_t i = 0; i < 128; ++i) bv.Set(i);
  BitVector head = bv.Slice(0, 10);
  EXPECT_EQ(head.PopCount(), 10u);
  BitVector other(10);
  EXPECT_EQ(head.HammingDistance(other), 10u);
}

TEST(BitVectorTest, HammingDistanceRangeMatchesSlice) {
  Rng rng(7);
  BitVector a(300);
  BitVector b(300);
  for (int i = 0; i < 120; ++i) {
    a.Set(rng.Below(300));
    b.Set(rng.Below(300));
  }
  for (const auto& [offset, length] :
       {std::pair<size_t, size_t>{0, 300}, {0, 64}, {64, 64}, {13, 57},
        {63, 2}, {128, 1}, {250, 50}, {299, 1}, {100, 0}}) {
    SCOPED_TRACE(testing::Message() << "offset=" << offset
                                    << " length=" << length);
    EXPECT_EQ(a.HammingDistanceRange(b, offset, length),
              a.Slice(offset, length).HammingDistance(b.Slice(offset, length)));
  }
}

TEST(BitVectorTest, HammingDistanceRangeWordBoundaries) {
  // The range kernel masks the first and last word of the range; these
  // are the exact boundary shapes that masking must get right.
  BitVector a(256);
  BitVector b(256);
  for (size_t i = 0; i < 256; ++i) b.Set(i);  // every bit differs

  // Word-aligned start (offset % 64 == 0).
  EXPECT_EQ(a.HammingDistanceRange(b, 64, 10), 10u);
  EXPECT_EQ(a.HammingDistanceRange(b, 128, 64), 64u);
  // Range ending exactly on bit 63 of a word (trail == 63: no tail mask).
  EXPECT_EQ(a.HammingDistanceRange(b, 60, 4), 4u);
  EXPECT_EQ(a.HammingDistanceRange(b, 0, 64), 64u);
  EXPECT_EQ(a.HammingDistanceRange(b, 100, 28), 28u);  // ends at bit 127
  // Range spanning exactly one word but unaligned within it.
  EXPECT_EQ(a.HammingDistanceRange(b, 65, 5), 5u);
  // Single bits at the extreme positions of a word.
  EXPECT_EQ(a.HammingDistanceRange(b, 63, 1), 1u);
  EXPECT_EQ(a.HammingDistanceRange(b, 64, 1), 1u);
  EXPECT_EQ(a.HammingDistanceRange(b, 255, 1), 1u);
  // Length zero anywhere, including at a word boundary.
  EXPECT_EQ(a.HammingDistanceRange(b, 0, 0), 0u);
  EXPECT_EQ(a.HammingDistanceRange(b, 64, 0), 0u);
  EXPECT_EQ(a.HammingDistanceRange(b, 256, 0), 0u);
  // Full-width range equals the unrestricted distance.
  EXPECT_EQ(a.HammingDistanceRange(b, 0, 256), a.HammingDistance(b));
}

TEST(BitVectorTest, RawWordRangeKernelAgreesWithBitVector) {
  Rng rng(23);
  BitVector a(200);
  BitVector b(200);
  for (int i = 0; i < 80; ++i) {
    a.Set(rng.Below(200));
    b.Set(rng.Below(200));
  }
  for (const auto& [offset, length] :
       {std::pair<size_t, size_t>{0, 200}, {0, 64}, {64, 64}, {64, 1},
        {63, 1}, {63, 2}, {199, 1}, {32, 0}, {1, 127}}) {
    SCOPED_TRACE(testing::Message() << "offset=" << offset
                                    << " length=" << length);
    EXPECT_EQ(HammingDistanceRangeWords(a.words().data(), b.words().data(),
                                        offset, length),
              a.HammingDistanceRange(b, offset, length));
  }
  EXPECT_EQ(HammingDistanceWords(a.words().data(), b.words().data(),
                                 a.words().size()),
            a.HammingDistance(b));
}

TEST(BitVectorTest, RangeDistancesSumToTotal) {
  Rng rng(9);
  BitVector a(120);
  BitVector b(120);
  for (int i = 0; i < 40; ++i) {
    a.Set(rng.Below(120));
    b.Set(rng.Below(120));
  }
  // Segments shaped like the NCVR layout of Table 3 (15+15+68+22 = 120).
  const size_t total = a.HammingDistanceRange(b, 0, 15) +
                       a.HammingDistanceRange(b, 15, 15) +
                       a.HammingDistanceRange(b, 30, 68) +
                       a.HammingDistanceRange(b, 98, 22);
  EXPECT_EQ(total, a.HammingDistance(b));
}

TEST(BitVectorTest, JaccardDistance) {
  BitVector a(32);
  BitVector b(32);
  EXPECT_DOUBLE_EQ(a.JaccardDistance(b), 0.0);  // both empty
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  // intersection 1, union 3.
  EXPECT_DOUBLE_EQ(a.JaccardDistance(b), 1.0 - 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.JaccardDistance(a), 0.0);
}

TEST(BitVectorTest, EqualityIncludesSize) {
  BitVector a(10);
  BitVector b(11);
  EXPECT_FALSE(a == b);
  BitVector c(10);
  EXPECT_TRUE(a == c);
  c.Set(3);
  EXPECT_FALSE(a == c);
}

TEST(BitVectorTest, ToStringBitZeroFirst) {
  BitVector bv(5);
  bv.Set(0);
  bv.Set(3);
  EXPECT_EQ(bv.ToString(), "10010");
}

TEST(BitVectorTest, FromWordsValidatedAcceptsWellFormedInput) {
  Result<BitVector> bv = BitVector::FromWordsValidated(70, {~uint64_t{0}, 0x3f});
  ASSERT_TRUE(bv.ok());
  EXPECT_EQ(bv.value().size(), 70u);
  EXPECT_EQ(bv.value().PopCount(), 70u);
  // Word-aligned width: no padding to check.
  EXPECT_TRUE(BitVector::FromWordsValidated(128, {1, ~uint64_t{0}}).ok());
  // Empty vector.
  EXPECT_TRUE(BitVector::FromWordsValidated(0, {}).ok());
}

TEST(BitVectorTest, FromWordsValidatedRejectsWordCountMismatch) {
  EXPECT_FALSE(BitVector::FromWordsValidated(70, {0}).ok());
  EXPECT_FALSE(BitVector::FromWordsValidated(70, {0, 0, 0}).ok());
  EXPECT_FALSE(BitVector::FromWordsValidated(0, {0}).ok());
  EXPECT_EQ(BitVector::FromWordsValidated(70, {0}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(BitVectorTest, FromWordsValidatedRejectsNonzeroPadding) {
  // Regression: a set bit past the logical width was only debug-asserted;
  // it silently skews every whole-word Hamming distance in release
  // builds, so untrusted input must be rejected at this boundary.
  // 70 bits leaves 58 padding bits in word 1; bit 6 of that word is the
  // first illegal one.
  EXPECT_FALSE(
      BitVector::FromWordsValidated(70, {0, uint64_t{1} << 6}).ok());
  // The highest padding bit.
  EXPECT_FALSE(
      BitVector::FromWordsValidated(70, {0, uint64_t{1} << 63}).ok());
  // The highest *legal* bit is fine.
  EXPECT_TRUE(
      BitVector::FromWordsValidated(70, {0, uint64_t{1} << 5}).ok());
}

}  // namespace
}  // namespace cbvlink
