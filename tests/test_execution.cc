// ExecutionOptions / ExecutionContext: the unified execution surface
// every Link / bulk-build / batch call goes through (DESIGN.md §10).

#include "src/common/execution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

TEST(ExecutionTest, ResolveNumThreadsUnifiedConvention) {
  // 0 = hardware concurrency, 1 = serial, N = N.
  const size_t hardware = ResolveNumThreads(0);
  EXPECT_GE(hardware, 1u);
  EXPECT_EQ(hardware,
            std::max<size_t>(1, std::thread::hardware_concurrency()));
  EXPECT_EQ(ResolveNumThreads(1), 1u);
  EXPECT_EQ(ResolveNumThreads(7), 7u);
}

TEST(ExecutionTest, DefaultIsSerial) {
  ExecutionOptions options;
  EXPECT_EQ(options.pool, nullptr);
  EXPECT_EQ(options.num_threads, 1u);
  EXPECT_EQ(options.chunk_size_hint, 0u);

  ExecutionContext ctx(options);
  EXPECT_EQ(ctx.pool(), nullptr);
  EXPECT_EQ(ctx.threads_used(), 1u);
  EXPECT_EQ(ctx.chunk_size_hint(), 0u);
}

TEST(ExecutionTest, SerialFactoryEqualsDefault) {
  ExecutionContext ctx(ExecutionOptions::Serial());
  EXPECT_EQ(ctx.pool(), nullptr);
  EXPECT_EQ(ctx.threads_used(), 1u);
}

TEST(ExecutionTest, WithThreadsOwnsAPool) {
  ExecutionContext ctx(ExecutionOptions::WithThreads(3));
  ASSERT_NE(ctx.pool(), nullptr);
  EXPECT_EQ(ctx.pool()->num_threads(), 3u);
  EXPECT_EQ(ctx.threads_used(), 3u);
}

TEST(ExecutionTest, WithThreadsOneStaysSerial) {
  // num_threads == 1 must not spin up a pool at all.
  ExecutionContext ctx(ExecutionOptions::WithThreads(1));
  EXPECT_EQ(ctx.pool(), nullptr);
  EXPECT_EQ(ctx.threads_used(), 1u);
}

TEST(ExecutionTest, WithThreadsZeroResolvesHardware) {
  ExecutionContext ctx(ExecutionOptions::WithThreads(0));
  const size_t hardware =
      std::max<size_t>(1, std::thread::hardware_concurrency());
  EXPECT_EQ(ctx.threads_used(), hardware);
  if (hardware > 1) {
    ASSERT_NE(ctx.pool(), nullptr);
    EXPECT_EQ(ctx.pool()->num_threads(), hardware);
  } else {
    // Single-core machine: hardware resolution degenerates to serial.
    EXPECT_EQ(ctx.pool(), nullptr);
  }
}

TEST(ExecutionTest, BorrowedPoolOverridesNumThreads) {
  ThreadPool pool(2);
  ExecutionOptions options = ExecutionOptions::WithPool(&pool);
  options.num_threads = 16;  // ignored when a pool is supplied
  ExecutionContext ctx(options);
  EXPECT_EQ(ctx.pool(), &pool);
  EXPECT_EQ(ctx.threads_used(), 2u);
}

TEST(ExecutionTest, ChunkSizeHintPassesThrough) {
  ExecutionOptions options = ExecutionOptions::WithThreads(2);
  options.chunk_size_hint = 128;
  ExecutionContext ctx(options);
  EXPECT_EQ(ctx.chunk_size_hint(), 128u);
}

TEST(ExecutionTest, ContextRunsWorkOnItsPool) {
  ExecutionContext ctx(ExecutionOptions::WithThreads(4));
  ASSERT_NE(ctx.pool(), nullptr);
  std::vector<int> out(1000, 0);
  ctx.pool()->ParallelFor(out.size(), /*min_chunk=*/1,
                          [&](size_t, size_t begin, size_t end) {
                            for (size_t i = begin; i < end; ++i) {
                              out[i] = static_cast<int>(i);
                            }
                          });
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace cbvlink
