#include "src/blocking/record_blocker.h"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <vector>

#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

EncodedRecord MakeRecord(RecordId id, size_t bits,
                         std::initializer_list<size_t> set_bits) {
  EncodedRecord r;
  r.id = id;
  r.bits = BitVector(bits);
  for (size_t b : set_bits) r.bits.Set(b);
  return r;
}

std::set<RecordId> Candidates(const RecordLevelBlocker& blocker,
                              const BitVector& probe) {
  std::set<RecordId> out;
  blocker.ForEachCandidate(probe, [&](RecordId id) { out.insert(id); });
  return out;
}

TEST(RecordLevelBlockerTest, CreateComputesLFromEquation2) {
  Rng rng(1);
  // Paper PL: m = 120, K = 30, theta = 4, delta = 0.1 -> L = 6.
  Result<RecordLevelBlocker> blocker =
      RecordLevelBlocker::Create(120, 30, 4, 0.1, rng);
  ASSERT_TRUE(blocker.ok());
  EXPECT_EQ(blocker.value().L(), 6u);
  EXPECT_EQ(blocker.value().K(), 30u);
}

TEST(RecordLevelBlockerTest, CreateWithLRespectsExplicitValue) {
  Rng rng(2);
  Result<RecordLevelBlocker> blocker =
      RecordLevelBlocker::CreateWithL(120, 30, 9, rng);
  ASSERT_TRUE(blocker.ok());
  EXPECT_EQ(blocker.value().L(), 9u);
}

TEST(RecordLevelBlockerTest, CreateErrorsPropagate) {
  Rng rng(3);
  EXPECT_FALSE(RecordLevelBlocker::Create(120, 30, 200, 0.1, rng).ok());
  EXPECT_FALSE(RecordLevelBlocker::CreateWithL(0, 30, 4, rng).ok());
  EXPECT_FALSE(RecordLevelBlocker::CreateWithL(120, 0, 4, rng).ok());
}

TEST(RecordLevelBlockerTest, IdenticalVectorsAlwaysCandidates) {
  Rng rng(4);
  RecordLevelBlocker blocker =
      RecordLevelBlocker::CreateWithL(120, 30, 6, rng).value();
  const EncodedRecord a = MakeRecord(1, 120, {0, 5, 50, 100});
  blocker.Insert(a);
  const std::set<RecordId> cands = Candidates(blocker, a.bits);
  EXPECT_TRUE(cands.contains(1));
}

TEST(RecordLevelBlockerTest, EmptyBlockerYieldsNoCandidates) {
  Rng rng(5);
  RecordLevelBlocker blocker =
      RecordLevelBlocker::CreateWithL(120, 30, 6, rng).value();
  const EncodedRecord probe = MakeRecord(9, 120, {1, 2, 3});
  EXPECT_TRUE(Candidates(blocker, probe.bits).empty());
}

TEST(RecordLevelBlockerTest, NearDuplicatesFoundWithHighProbability) {
  Rng rng(6);
  constexpr size_t kRounds = 200;
  size_t found = 0;
  Rng perturb(7);
  for (size_t round = 0; round < kRounds; ++round) {
    RecordLevelBlocker blocker =
        RecordLevelBlocker::Create(120, 30, 4, 0.1, rng).value();
    EncodedRecord a = MakeRecord(1, 120, {});
    for (size_t i = 0; i < 120; i += 4) a.bits.Set(i);
    EncodedRecord b = a;
    b.id = 2;
    for (int flips = 0; flips < 4; ++flips) {
      const size_t pos = perturb.Below(120);
      if (b.bits.Test(pos)) {
        b.bits.Clear(pos);
      } else {
        b.bits.Set(pos);
      }
    }
    blocker.Insert(a);
    if (Candidates(blocker, b.bits).contains(1)) ++found;
  }
  // Guarantee: >= 1 - delta = 0.9, allow sampling slack.
  EXPECT_GE(static_cast<double>(found) / kRounds, 0.86);
}

TEST(RecordLevelBlockerTest, DistantVectorsRarelyCandidates) {
  Rng rng(8);
  RecordLevelBlocker blocker =
      RecordLevelBlocker::CreateWithL(120, 30, 6, rng).value();
  EncodedRecord a = MakeRecord(1, 120, {});
  for (size_t i = 0; i < 60; ++i) a.bits.Set(i);
  EncodedRecord far = MakeRecord(2, 120, {});
  for (size_t i = 60; i < 120; ++i) far.bits.Set(i);
  blocker.Insert(a);
  EXPECT_FALSE(Candidates(blocker, far.bits).contains(1));
}

TEST(RecordLevelBlockerTest, CandidateOccurrencesRepeatAcrossGroups) {
  Rng rng(9);
  RecordLevelBlocker blocker =
      RecordLevelBlocker::CreateWithL(120, 5, 8, rng).value();
  const EncodedRecord a = MakeRecord(1, 120, {0, 1, 2});
  blocker.Insert(a);
  size_t occurrences = 0;
  blocker.ForEachCandidate(a.bits, [&](RecordId) { ++occurrences; });
  // Identical vectors collide in every group.
  EXPECT_EQ(occurrences, 8u);
}

TEST(RecordLevelBlockerTest, StatsReflectIndexedRecords) {
  Rng rng(10);
  RecordLevelBlocker blocker =
      RecordLevelBlocker::CreateWithL(64, 8, 4, rng).value();
  std::vector<EncodedRecord> records;
  Rng data(11);
  for (RecordId id = 0; id < 50; ++id) {
    EncodedRecord r = MakeRecord(id, 64, {});
    for (int i = 0; i < 16; ++i) r.bits.Set(data.Below(64));
    records.push_back(std::move(r));
  }
  blocker.Index(records);
  EXPECT_GT(blocker.TotalBuckets(), 0u);
  EXPECT_GE(blocker.MaxBucketSize(), 1u);
  EXPECT_LE(blocker.MaxBucketSize(), 50u);
}

// --- BulkInsert determinism: identical tables to Index() at any thread
// count (buckets, per-bucket id order, counters).

std::vector<EncodedRecord> RandomRecords(size_t n, size_t bits,
                                         uint64_t seed) {
  std::vector<EncodedRecord> records;
  Rng data(seed);
  for (RecordId id = 0; id < n; ++id) {
    EncodedRecord r = MakeRecord(id, bits, {});
    for (size_t i = 0; i < bits / 4; ++i) r.bits.Set(data.Below(bits));
    records.push_back(std::move(r));
  }
  return records;
}

void ExpectSameTables(const RecordLevelBlocker& actual,
                      const RecordLevelBlocker& expected, size_t threads) {
  ASSERT_EQ(actual.L(), expected.L());
  for (size_t l = 0; l < expected.L(); ++l) {
    const BlockingTable& a = actual.tables()[l];
    const BlockingTable& e = expected.tables()[l];
    EXPECT_EQ(a.NumEntries(), e.NumEntries())
        << "table " << l << " at " << threads << " threads";
    EXPECT_EQ(a.MaxBucketSize(), e.MaxBucketSize())
        << "table " << l << " at " << threads << " threads";
    // unordered_map equality compares bucket contents including the
    // per-bucket id order Insert() would have produced.
    EXPECT_EQ(a.buckets(), e.buckets())
        << "table " << l << " at " << threads << " threads";
  }
}

TEST(RecordLevelBlockerBulkInsertTest, IdenticalToIndexAtAnyThreadCount) {
  const auto make_blocker = [] {
    Rng rng(99);
    return RecordLevelBlocker::CreateWithL(120, 30, 6, rng).value();
  };
  const std::vector<EncodedRecord> records = RandomRecords(400, 120, 12345);

  RecordLevelBlocker serial = make_blocker();
  serial.Index(records);

  // Null pool takes the plain serial path.
  RecordLevelBlocker no_pool = make_blocker();
  no_pool.BulkInsert(records);
  ExpectSameTables(no_pool, serial, 0);

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    RecordLevelBlocker parallel = make_blocker();
    parallel.BulkInsert(records, &pool);
    ExpectSameTables(parallel, serial, threads);
  }
}

TEST(RecordLevelBlockerBulkInsertTest, MinChunkDoesNotChangeTables) {
  const auto make_blocker = [] {
    Rng rng(17);
    return RecordLevelBlocker::CreateWithL(64, 8, 4, rng).value();
  };
  const std::vector<EncodedRecord> records = RandomRecords(100, 64, 5);
  RecordLevelBlocker serial = make_blocker();
  serial.Index(records);
  ThreadPool pool(4);
  for (size_t min_chunk : {1u, 9u, 1000u}) {
    RecordLevelBlocker parallel = make_blocker();
    parallel.BulkInsert(records, &pool, min_chunk);
    ExpectSameTables(parallel, serial, min_chunk);
  }
}

TEST(RecordLevelBlockerBulkInsertTest, EmptyAndSingleRecordInputs) {
  const auto make_blocker = [] {
    Rng rng(21);
    return RecordLevelBlocker::CreateWithL(64, 8, 4, rng).value();
  };
  ThreadPool pool(4);

  RecordLevelBlocker empty = make_blocker();
  empty.BulkInsert(std::span<const EncodedRecord>{}, &pool);
  EXPECT_EQ(empty.TotalBuckets(), 0u);

  const std::vector<EncodedRecord> one = RandomRecords(1, 64, 6);
  RecordLevelBlocker serial = make_blocker();
  serial.Index(one);
  RecordLevelBlocker parallel = make_blocker();
  parallel.BulkInsert(one, &pool);
  ExpectSameTables(parallel, serial, 1);
}

TEST(RecordLevelBlockerBulkInsertTest, AppendsAfterPriorInserts) {
  // BulkInsert on a non-empty blocker must behave like more Insert()
  // calls, not a rebuild.
  const auto make_blocker = [] {
    Rng rng(23);
    return RecordLevelBlocker::CreateWithL(64, 8, 4, rng).value();
  };
  const std::vector<EncodedRecord> first = RandomRecords(30, 64, 7);
  std::vector<EncodedRecord> second = RandomRecords(40, 64, 8);
  for (EncodedRecord& r : second) r.id += 1000;

  RecordLevelBlocker serial = make_blocker();
  serial.Index(first);
  serial.Index(second);

  ThreadPool pool(3);
  RecordLevelBlocker parallel = make_blocker();
  parallel.BulkInsert(first, &pool);
  parallel.BulkInsert(second, &pool);
  ExpectSameTables(parallel, serial, 3);
}

}  // namespace
}  // namespace cbvlink
