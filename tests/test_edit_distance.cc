#include "src/metrics/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "src/common/random.h"

namespace cbvlink {
namespace {

TEST(EditDistanceTest, IdenticalStrings) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("JONES", "JONES"), 0u);
}

TEST(EditDistanceTest, EmptyVsNonEmpty) {
  EXPECT_EQ(EditDistance("", "ABC"), 3u);
  EXPECT_EQ(EditDistance("ABC", ""), 3u);
}

TEST(EditDistanceTest, PaperExamples) {
  EXPECT_EQ(EditDistance("JONES", "JONAS"), 1u);   // substitute
  EXPECT_EQ(EditDistance("JONES", "JONS"), 1u);    // delete
  EXPECT_EQ(EditDistance("JONES", "JONEAS"), 1u);  // insert
  EXPECT_EQ(EditDistance("SHANNEN", "SHENNEN"), 1u);
  EXPECT_EQ(EditDistance("WASHINGTON", "WASHANGTON"), 1u);
  EXPECT_EQ(EditDistance("JOHN", "JAHN"), 1u);
}

TEST(EditDistanceTest, ClassicCases) {
  EXPECT_EQ(EditDistance("KITTEN", "SITTING"), 3u);
  EXPECT_EQ(EditDistance("FLAW", "LAWN"), 2u);
  EXPECT_EQ(EditDistance("INTENTION", "EXECUTION"), 5u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("ABCDEF", "AXCYEF"),
            EditDistance("AXCYEF", "ABCDEF"));
}

class EditDistanceWithinTest
    : public testing::TestWithParam<std::tuple<const char*, const char*>> {};

TEST_P(EditDistanceWithinTest, AgreesWithFullDistanceAtEveryThreshold) {
  const auto [a, b] = GetParam();
  const size_t d = EditDistance(a, b);
  for (size_t t = 0; t <= d + 2; ++t) {
    EXPECT_EQ(EditDistanceWithin(a, b, t), d <= t)
        << "a=" << a << " b=" << b << " t=" << t << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, EditDistanceWithinTest,
    testing::Values(std::make_tuple("", ""), std::make_tuple("", "ABCD"),
                    std::make_tuple("JONES", "JONAS"),
                    std::make_tuple("JONES", "JONS"),
                    std::make_tuple("KITTEN", "SITTING"),
                    std::make_tuple("INTENTION", "EXECUTION"),
                    std::make_tuple("AAAA", "BBBB"),
                    std::make_tuple("AB", "BA"),
                    std::make_tuple("SHORT", "MUCHLONGERSTRING")));

TEST(EditDistanceWithinTest, ZeroThresholdIsEquality) {
  EXPECT_TRUE(EditDistanceWithin("SAME", "SAME", 0));
  EXPECT_FALSE(EditDistanceWithin("SAME", "SOME", 0));
}

TEST(EditDistanceWithinTest, LengthGapShortCircuit) {
  EXPECT_FALSE(EditDistanceWithin("A", "ABCDEFG", 3));
  EXPECT_TRUE(EditDistanceWithin("A", "ABCD", 3));
}

TEST(EditDistancePropertyTest, RandomizedAgreementBandedVsFull) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    std::string a;
    std::string b;
    const size_t la = rng.Below(12);
    const size_t lb = rng.Below(12);
    for (size_t i = 0; i < la; ++i) {
      a.push_back(static_cast<char>('A' + rng.Below(4)));
    }
    for (size_t i = 0; i < lb; ++i) {
      b.push_back(static_cast<char>('A' + rng.Below(4)));
    }
    const size_t d = EditDistance(a, b);
    const size_t t = rng.Below(8);
    EXPECT_EQ(EditDistanceWithin(a, b, t), d <= t)
        << "a=" << a << " b=" << b;
  }
}

TEST(EditDistancePropertyTest, TriangleInequality) {
  Rng rng(77);
  for (int trial = 0; trial < 200; ++trial) {
    std::string s[3];
    for (auto& str : s) {
      const size_t len = rng.Below(10);
      for (size_t i = 0; i < len; ++i) {
        str.push_back(static_cast<char>('A' + rng.Below(3)));
      }
    }
    const size_t dab = EditDistance(s[0], s[1]);
    const size_t dbc = EditDistance(s[1], s[2]);
    const size_t dac = EditDistance(s[0], s[2]);
    EXPECT_LE(dac, dab + dbc);
  }
}

TEST(EditDistancePropertyTest, SingleEditAlwaysDistanceOne) {
  Rng rng(55);
  const std::string base = "ABCDEFGHIJ";
  for (int trial = 0; trial < 100; ++trial) {
    std::string mod = base;
    switch (rng.Below(3)) {
      case 0: {  // substitute with a letter outside the base alphabet
        mod[rng.Below(mod.size())] = static_cast<char>('K' + rng.Below(10));
        break;
      }
      case 1:
        mod.insert(mod.begin() + static_cast<ptrdiff_t>(rng.Below(mod.size() + 1)),
                   'Z');
        break;
      default:
        mod.erase(mod.begin() + static_cast<ptrdiff_t>(rng.Below(mod.size())));
        break;
    }
    EXPECT_EQ(EditDistance(base, mod), 1u) << mod;
  }
}

}  // namespace
}  // namespace cbvlink
