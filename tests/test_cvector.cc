#include "src/embedding/cvector.h"

#include <gtest/gtest.h>

#include <string>

#include "src/datagen/perturbator.h"
#include "src/embedding/qgram_vector.h"

namespace cbvlink {
namespace {

QGramExtractor MakeExtractor() {
  Result<QGramExtractor> extractor =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  EXPECT_TRUE(extractor.ok());
  return std::move(extractor).value();
}

TEST(CVectorEncoderTest, SizeFollowsTheorem1) {
  Rng rng(1);
  Result<CVectorEncoder> encoder =
      CVectorEncoder::Create(MakeExtractor(), 5.1, rng);
  ASSERT_TRUE(encoder.ok());
  EXPECT_EQ(encoder.value().vector_size(), 15u);  // Table 3 FirstName
}

TEST(CVectorEncoderTest, ExplicitSize) {
  Rng rng(1);
  Result<CVectorEncoder> encoder =
      CVectorEncoder::CreateWithSize(MakeExtractor(), 64, rng);
  ASSERT_TRUE(encoder.ok());
  EXPECT_EQ(encoder.value().vector_size(), 64u);
  EXPECT_EQ(encoder.value().Encode("JOHN").size(), 64u);
}

TEST(CVectorEncoderTest, RejectsZeroSize) {
  Rng rng(1);
  EXPECT_FALSE(CVectorEncoder::CreateWithSize(MakeExtractor(), 0, rng).ok());
}

TEST(CVectorEncoderTest, PropagatesSizingErrors) {
  Rng rng(1);
  EXPECT_FALSE(CVectorEncoder::Create(MakeExtractor(), 0.5, rng).ok());
}

TEST(CVectorEncoderTest, DeterministicPerEncoder) {
  Rng rng(2);
  Result<CVectorEncoder> encoder =
      CVectorEncoder::Create(MakeExtractor(), 5.0, rng);
  ASSERT_TRUE(encoder.ok());
  EXPECT_EQ(encoder.value().Encode("JONES"), encoder.value().Encode("JONES"));
}

TEST(CVectorEncoderTest, EmptyStringIsZeroVector) {
  Rng rng(3);
  Result<CVectorEncoder> encoder =
      CVectorEncoder::Create(MakeExtractor(), 5.0, rng);
  ASSERT_TRUE(encoder.ok());
  EXPECT_EQ(encoder.value().Encode("").PopCount(), 0u);
}

TEST(CVectorEncoderTest, PopCountAtMostNumGrams) {
  Rng rng(4);
  Result<CVectorEncoder> encoder =
      CVectorEncoder::Create(MakeExtractor(), 20.0, rng);
  ASSERT_TRUE(encoder.ok());
  for (const char* s : {"JONES", "WASHINGTON", "KARAPIPERIS", "A", "AB"}) {
    const size_t grams = encoder.value().extractor().IndexSet(s).size();
    EXPECT_LE(encoder.value().Encode(s).PopCount(), grams) << s;
    if (grams > 0) {
      // Any string with at least one bigram sets at least one bit.
      EXPECT_GE(encoder.value().Encode(s).PopCount(), 1u) << s;
    }
  }
}

TEST(CVectorEncoderTest, DistancePreservationOnAverage) {
  // Compact distances track full q-gram vector distances up to collision
  // loss: u_cBV <= u_BV always, and on average stays close for the
  // Theorem 1 size (rho = 1).
  Rng rng(5);
  const QGramVectorEncoder full =
      QGramVectorEncoder::Create(MakeExtractor()).value();
  size_t total_full = 0;
  size_t total_compact = 0;
  size_t violations = 0;
  for (int trial = 0; trial < 200; ++trial) {
    Result<CVectorEncoder> compact =
        CVectorEncoder::Create(MakeExtractor(), 5.0, rng);
    ASSERT_TRUE(compact.ok());
    const std::string base = "JONES";
    const std::string perturbed =
        Perturbator::ApplyOp(base, PerturbationType::kSubstitute, rng);
    const size_t u_full =
        full.Encode(base).HammingDistance(full.Encode(perturbed));
    const size_t u_compact = compact.value()
                                 .Encode(base)
                                 .HammingDistance(compact.value().Encode(perturbed));
    total_full += u_full;
    total_compact += u_compact;
    if (u_compact > u_full) ++violations;
  }
  // Hashing can only merge set bits, never create differences.
  EXPECT_EQ(violations, 0u);
  // Collisions should eat only a modest fraction of the distance.
  EXPECT_GT(total_compact, total_full / 2);
  EXPECT_LE(total_compact, total_full);
}

TEST(CVectorEncoderTest, IdenticalStringsHaveZeroDistance) {
  Rng rng(6);
  Result<CVectorEncoder> encoder =
      CVectorEncoder::Create(MakeExtractor(), 7.2, rng);
  ASSERT_TRUE(encoder.ok());
  EXPECT_EQ(encoder.value().Encode("RALEIGH").HammingDistance(
                encoder.value().Encode("RALEIGH")),
            0u);
}

TEST(CVectorEncoderTest, DifferentSeedsProduceDifferentHashes) {
  Rng rng1(7);
  Rng rng2(8);
  const CVectorEncoder e1 =
      CVectorEncoder::Create(MakeExtractor(), 20.0, rng1).value();
  const CVectorEncoder e2 =
      CVectorEncoder::Create(MakeExtractor(), 20.0, rng2).value();
  EXPECT_FALSE(e1.Encode("WASHINGTON") == e2.Encode("WASHINGTON"));
}

TEST(CVectorEncoderTest, SharedEncoderPreservesEquality) {
  // Equal strings must map to equal c-vectors under the same encoder —
  // the property HB relies on.
  Rng rng(9);
  const CVectorEncoder encoder =
      CVectorEncoder::Create(MakeExtractor(), 5.0, rng).value();
  EXPECT_EQ(encoder.Encode("SMITH"), encoder.Encode("SMITH"));
}

}  // namespace
}  // namespace cbvlink
