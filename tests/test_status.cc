#include "src/common/status.h"

#include <gtest/gtest.h>

namespace cbvlink {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad q");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad q");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad q");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotImplemented("").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::IOError("").code(), StatusCode::kIOError);
}

TEST(StatusTest, ConstructingWithOkCodeYieldsOk) {
  Status s(StatusCode::kOk, "ignored");
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.message(), "");
}

TEST(StatusTest, CopyIsCheapAndEqual) {
  Status a = Status::NotFound("x");
  Status b = a;  // shared rep
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "x");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusCodeNameTest, CoversEveryCode) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_EQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_EQ(StatusCodeName(StatusCode::kAlreadyExists), "AlreadyExists");
  EXPECT_EQ(StatusCodeName(StatusCode::kFailedPrecondition),
            "FailedPrecondition");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_EQ(StatusCodeName(StatusCode::kNotImplemented), "NotImplemented");
  EXPECT_EQ(StatusCodeName(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MoveOnlyValueTypesWork) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, NonDefaultConstructibleValueTypesWork) {
  struct NoDefault {
    explicit NoDefault(int x) : value(x) {}
    int value;
  };
  Result<NoDefault> ok_result(NoDefault(3));
  ASSERT_TRUE(ok_result.ok());
  EXPECT_EQ(ok_result.value().value, 3);
  Result<NoDefault> err(Status::Internal("nope"));
  EXPECT_FALSE(err.ok());
}

TEST(ReturnNotOkMacroTest, PropagatesError) {
  const auto inner = []() -> Status { return Status::Internal("boom"); };
  const auto outer = [&]() -> Status {
    CBVLINK_RETURN_NOT_OK(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

TEST(ReturnNotOkMacroTest, PassesThroughOk) {
  const auto outer = []() -> Status {
    CBVLINK_RETURN_NOT_OK(Status::OK());
    return Status::NotFound("reached end");
  };
  EXPECT_EQ(outer().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace cbvlink
