#include "src/rules/rule_parser.h"

#include <gtest/gtest.h>

namespace cbvlink {
namespace {

TEST(RuleParserTest, SinglePredicate) {
  Result<Rule> r = ParseRule("f1 <= 4");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().kind(), Rule::Kind::kPredicate);
  EXPECT_EQ(r.value().predicate().attribute, 0u);
  EXPECT_EQ(r.value().predicate().threshold, 4u);
}

TEST(RuleParserTest, ParenthesizedPredicate) {
  Result<Rule> r = ParseRule("(f2 <= 8)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().predicate().attribute, 1u);
}

TEST(RuleParserTest, AndChain) {
  Result<Rule> r = ParseRule("(f1 <= 4) AND (f2 <= 4) AND (f3 <= 8)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind(), Rule::Kind::kAnd);
  EXPECT_EQ(r.value().children().size(), 3u);
  EXPECT_EQ(r.value().ToString(),
            "((f1 <= 4) AND (f2 <= 4) AND (f3 <= 8))");
}

TEST(RuleParserTest, AndBindsTighterThanOr) {
  // C2 of Section 6.2 without explicit brackets around the AND.
  Result<Rule> r = ParseRule("f1 <= 4 AND f2 <= 4 OR f3 <= 8");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind(), Rule::Kind::kOr);
  ASSERT_EQ(r.value().children().size(), 2u);
  EXPECT_EQ(r.value().children()[0].kind(), Rule::Kind::kAnd);
  EXPECT_EQ(r.value().children()[1].kind(), Rule::Kind::kPredicate);
}

TEST(RuleParserTest, NotFactor) {
  Result<Rule> r = ParseRule("(f1 <= 4) AND NOT (f2 <= 8)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ToString(), "((f1 <= 4) AND (NOT (f2 <= 8)))");
}

TEST(RuleParserTest, DoubleNegation) {
  Result<Rule> r = ParseRule("NOT NOT f1 <= 4");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind(), Rule::Kind::kNot);
  EXPECT_EQ(r.value().children()[0].kind(), Rule::Kind::kNot);
}

TEST(RuleParserTest, CaseInsensitiveKeywords) {
  EXPECT_TRUE(ParseRule("f1 <= 1 and f2 <= 2").ok());
  EXPECT_TRUE(ParseRule("f1 <= 1 Or not f2 <= 2").ok());
}

TEST(RuleParserTest, NestedParentheses) {
  Result<Rule> r =
      ParseRule("((f1 <= 4) AND (f2 <= 4)) OR ((f3 <= 8) AND (f4 <= 2))");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().kind(), Rule::Kind::kOr);
  EXPECT_EQ(r.value().children()[0].kind(), Rule::Kind::kAnd);
  EXPECT_EQ(r.value().children()[1].kind(), Rule::Kind::kAnd);
}

TEST(RuleParserTest, RoundTripThroughToString) {
  const char* exprs[] = {
      "(f1 <= 4)",
      "((f1 <= 4) AND (f2 <= 8))",
      "((f1 <= 4) OR (NOT (f2 <= 8)))",
      "(((f1 <= 4) AND (f2 <= 4)) OR (f3 <= 8))",
  };
  for (const char* expr : exprs) {
    Result<Rule> parsed = ParseRule(expr);
    ASSERT_TRUE(parsed.ok()) << expr;
    EXPECT_EQ(parsed.value().ToString(), expr);
  }
}

TEST(RuleParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseRule("").ok());
  EXPECT_FALSE(ParseRule("f1").ok());
  EXPECT_FALSE(ParseRule("f1 <=").ok());
  EXPECT_FALSE(ParseRule("f1 >= 4").ok());
  EXPECT_FALSE(ParseRule("f1 <= 4 AND").ok());
  EXPECT_FALSE(ParseRule("(f1 <= 4").ok());
  EXPECT_FALSE(ParseRule("f1 <= 4)").ok());
  EXPECT_FALSE(ParseRule("g1 <= 4").ok());
  EXPECT_FALSE(ParseRule("f1 <= 4 f2 <= 8").ok());
  EXPECT_FALSE(ParseRule("AND f1 <= 4").ok());
}

TEST(RuleParserTest, ZeroAttributeRejected) {
  // Attribute numbers are 1-based in the textual form.
  EXPECT_FALSE(ParseRule("f0 <= 4").ok());
}

TEST(RuleParserTest, KeywordPrefixIdentifiersRejected) {
  // "ANDY" is not the keyword AND.
  EXPECT_FALSE(ParseRule("f1 <= 4 ANDY f2 <= 8").ok());
}

TEST(RuleParserTest, ZeroThresholdAllowed) {
  Result<Rule> r = ParseRule("f1 <= 0");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().predicate().threshold, 0u);
}

}  // namespace
}  // namespace cbvlink
