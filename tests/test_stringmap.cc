#include "src/embedding/stringmap.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/random.h"
#include "src/datagen/corpora.h"
#include "src/metrics/edit_distance.h"
#include "src/metrics/euclidean.h"

namespace cbvlink {
namespace {

std::vector<std::string> NameCorpus(size_t n) {
  Rng rng(99);
  const auto& pool = LastNamePool();
  std::vector<std::string> corpus;
  corpus.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    corpus.push_back(pool[rng.Below(pool.size())]);
  }
  return corpus;
}

TEST(StringMapTest, RejectsEmptyCorpusAndZeroDims) {
  EXPECT_FALSE(StringMapEmbedder::Train({}, {}).ok());
  StringMapOptions zero;
  zero.dimensions = 0;
  EXPECT_FALSE(StringMapEmbedder::Train({"A"}, zero).ok());
}

TEST(StringMapTest, EmbedsToRequestedDimensions) {
  StringMapOptions options;
  options.dimensions = 8;
  Result<StringMapEmbedder> embedder =
      StringMapEmbedder::Train(NameCorpus(200), options);
  ASSERT_TRUE(embedder.ok());
  EXPECT_EQ(embedder.value().dimensions(), 8u);
  EXPECT_EQ(embedder.value().Embed("SMITH").size(), 8u);
}

TEST(StringMapTest, DeterministicEmbedding) {
  StringMapOptions options;
  options.dimensions = 6;
  Result<StringMapEmbedder> embedder =
      StringMapEmbedder::Train(NameCorpus(150), options);
  ASSERT_TRUE(embedder.ok());
  EXPECT_EQ(embedder.value().Embed("JOHNSON"),
            embedder.value().Embed("JOHNSON"));
}

TEST(StringMapTest, IdenticalStringsEmbedIdentically) {
  StringMapOptions options;
  options.dimensions = 10;
  Result<StringMapEmbedder> embedder =
      StringMapEmbedder::Train(NameCorpus(150), options);
  ASSERT_TRUE(embedder.ok());
  EXPECT_DOUBLE_EQ(EuclideanDistance(embedder.value().Embed("WILLIAMS"),
                                     embedder.value().Embed("WILLIAMS")),
                   0.0);
}

TEST(StringMapTest, SingleStringCorpusDegeneratesGracefully) {
  StringMapOptions options;
  options.dimensions = 4;
  Result<StringMapEmbedder> embedder =
      StringMapEmbedder::Train({"ONLY"}, options);
  ASSERT_TRUE(embedder.ok());
  // All residual pivot distances are zero -> all coordinates zero.
  const std::vector<double> coords = embedder.value().Embed("ONLY");
  for (double c : coords) EXPECT_DOUBLE_EQ(c, 0.0);
}

TEST(StringMapTest, CloseStringsEmbedCloserThanFarStrings) {
  StringMapOptions options;
  options.dimensions = 20;
  Result<StringMapEmbedder> embedder =
      StringMapEmbedder::Train(NameCorpus(300), options);
  ASSERT_TRUE(embedder.ok());
  const auto d = [&](const char* a, const char* b) {
    return EuclideanDistance(embedder.value().Embed(a),
                             embedder.value().Embed(b));
  };
  // Edit distance 1 pairs should land much closer than unrelated names.
  EXPECT_LT(d("JOHNSON", "JOHNSIN"), d("JOHNSON", "RODRIGUEZ"));
  EXPECT_LT(d("SMITH", "SMYTH"), d("SMITH", "HERNANDEZ"));
}

TEST(StringMapTest, EmbeddedDistanceRoughlyTracksEditDistance) {
  // FastMap is contractive on average; check a rank-correlation-flavoured
  // property: across pairs, larger edit distance should not map to a
  // systematically smaller embedded distance.
  StringMapOptions options;
  options.dimensions = 20;
  const std::vector<std::string> corpus = NameCorpus(300);
  Result<StringMapEmbedder> embedder =
      StringMapEmbedder::Train(corpus, options);
  ASSERT_TRUE(embedder.ok());

  Rng rng(5);
  double sum_close = 0.0;
  double sum_far = 0.0;
  int n_close = 0;
  int n_far = 0;
  for (int trial = 0; trial < 200; ++trial) {
    const std::string& a = corpus[rng.Below(corpus.size())];
    const std::string& b = corpus[rng.Below(corpus.size())];
    const size_t ed = EditDistance(a, b);
    const double dd =
        EuclideanDistance(embedder.value().Embed(a), embedder.value().Embed(b));
    if (ed <= 2) {
      sum_close += dd;
      ++n_close;
    } else if (ed >= 6) {
      sum_far += dd;
      ++n_far;
    }
  }
  if (n_close > 5 && n_far > 5) {
    EXPECT_LT(sum_close / n_close, sum_far / n_far);
  }
}

TEST(StringMapTest, SubsamplingCapRespected) {
  StringMapOptions options;
  options.dimensions = 4;
  options.max_train_sample = 16;
  Result<StringMapEmbedder> embedder =
      StringMapEmbedder::Train(NameCorpus(1000), options);
  ASSERT_TRUE(embedder.ok());
  EXPECT_EQ(embedder.value().Embed("SMITH").size(), 4u);
}

}  // namespace
}  // namespace cbvlink
