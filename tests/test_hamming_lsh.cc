#include "src/lsh/hamming_lsh.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/lsh/params.h"

namespace cbvlink {
namespace {

TEST(HammingHashFunctionTest, SamplesWithinRange) {
  Rng rng(1);
  const HammingHashFunction h = HammingHashFunction::Sample(30, 10, 50, rng);
  EXPECT_EQ(h.positions().size(), 30u);
  std::unordered_set<uint32_t> seen;
  for (uint32_t p : h.positions()) {
    EXPECT_GE(p, 10u);
    EXPECT_LT(p, 60u);
    EXPECT_TRUE(seen.insert(p).second) << "position " << p << " repeated";
  }
}

TEST(HammingHashFunctionTest, SamplesDistinctPositions) {
  // Regression: sampling with replacement silently weakened K — an h_l
  // with d duplicate positions behaves like K - d.  Exhaustive sampling
  // (K == range) is the sharpest check: the result must be a permutation
  // of the whole range, which with-replacement sampling essentially
  // never produces.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    const HammingHashFunction h = HammingHashFunction::Sample(50, 10, 50, rng);
    std::vector<uint32_t> sorted = h.positions();
    std::sort(sorted.begin(), sorted.end());
    ASSERT_EQ(sorted.size(), 50u);
    for (size_t i = 0; i < sorted.size(); ++i) {
      EXPECT_EQ(sorted[i], 10u + i) << "seed " << seed;
    }
  }
}

TEST(HammingHashFunctionTest, DistinctSamplingIsUniform) {
  // Every position of the range should be chosen about equally often —
  // a skew would mean Floyd's replacement branch biases the subset.
  constexpr size_t kRange = 40;
  constexpr size_t kK = 10;
  constexpr size_t kTrials = 4000;
  Rng rng(11);
  std::vector<size_t> counts(kRange, 0);
  for (size_t t = 0; t < kTrials; ++t) {
    const HammingHashFunction h = HammingHashFunction::Sample(kK, 0, kRange, rng);
    for (uint32_t p : h.positions()) ++counts[p];
  }
  const double expected =
      static_cast<double>(kTrials) * kK / static_cast<double>(kRange);
  for (size_t pos = 0; pos < kRange; ++pos) {
    EXPECT_NEAR(static_cast<double>(counts[pos]), expected, expected * 0.15)
        << "position " << pos;
  }
}

TEST(HammingHashFunctionTest, EqualVectorsEqualKeys) {
  Rng rng(2);
  const HammingHashFunction h = HammingHashFunction::Sample(20, 0, 120, rng);
  BitVector a(120);
  a.Set(3);
  a.Set(77);
  BitVector b = a;
  EXPECT_EQ(h.Key(a), h.Key(b));
}

TEST(HammingHashFunctionTest, KeyReflectsSampledBitsOnly) {
  Rng rng(3);
  const HammingHashFunction h = HammingHashFunction::Sample(10, 0, 64, rng);
  BitVector a(128);
  BitVector b(128);
  b.Set(100);  // outside the sampled range [0, 64)
  EXPECT_EQ(h.Key(a), h.Key(b));
}

TEST(HammingHashFunctionTest, SeedChangesKey) {
  Rng rng(4);
  const HammingHashFunction h = HammingHashFunction::Sample(10, 0, 64, rng);
  BitVector a(64);
  a.Set(1);
  EXPECT_NE(h.KeyWithSeed(a, 1), h.KeyWithSeed(a, 2));
}

TEST(HammingHashFunctionTest, LargeKHandled) {
  // K > 64 exercises the multi-chunk path.
  Rng rng(5);
  const HammingHashFunction h = HammingHashFunction::Sample(130, 0, 512, rng);
  BitVector a(512);
  BitVector b(512);
  EXPECT_EQ(h.Key(a), h.Key(b));
  // Flip one sampled position; keys must diverge.
  a.Set(h.positions()[0]);
  EXPECT_NE(h.Key(a), h.Key(b));
}

TEST(HammingLshFamilyTest, CreateValidation) {
  Rng rng(6);
  EXPECT_FALSE(HammingLshFamily::Create(0, 3, 0, 64, rng).ok());
  EXPECT_FALSE(HammingLshFamily::Create(5, 0, 0, 64, rng).ok());
  EXPECT_FALSE(HammingLshFamily::Create(5, 3, 0, 0, rng).ok());
  // Distinct sampling cannot draw more positions than the range holds.
  EXPECT_FALSE(HammingLshFamily::Create(65, 3, 0, 64, rng).ok());
  EXPECT_TRUE(HammingLshFamily::Create(64, 3, 0, 64, rng).ok());
  Result<HammingLshFamily> family = HammingLshFamily::CreateFull(5, 3, 64, rng);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family.value().K(), 5u);
  EXPECT_EQ(family.value().L(), 3u);
}

TEST(HammingLshFamilyTest, CollisionProbabilityMatchesDefinition3) {
  // Empirical check of Pr[h(a) = h(b)].  With K *distinct* positions the
  // exact probability is hypergeometric — C(m-u, K) / C(m, K) — which is
  // at most Definition 3's with-replacement (1 - u/m)^K; both are
  // asserted so reintroducing replacement (whose mean sits visibly above
  // the hypergeometric value) trips the bound.
  Rng rng(7);
  constexpr size_t kM = 120;
  constexpr size_t kK = 10;
  constexpr size_t kTrials = 3000;
  constexpr size_t kDist = 12;

  BitVector a(kM);
  for (size_t i = 0; i < kM; i += 3) a.Set(i);
  BitVector b = a;
  // Flip exactly kDist bits.
  for (size_t i = 0; i < kDist; ++i) {
    if (b.Test(i)) {
      b.Clear(i);
    } else {
      b.Set(i);
    }
  }
  ASSERT_EQ(a.HammingDistance(b), kDist);

  size_t collisions = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const HammingHashFunction h = HammingHashFunction::Sample(kK, 0, kM, rng);
    if (h.Key(a) == h.Key(b)) ++collisions;
  }
  // Hypergeometric: prod_{i=0}^{K-1} (m - u - i) / (m - i).
  double expected = 1.0;
  for (size_t i = 0; i < kK; ++i) {
    expected *= static_cast<double>(kM - kDist - i) / static_cast<double>(kM - i);
  }
  const double definition3 = std::pow(
      1.0 - static_cast<double>(kDist) / kM, static_cast<double>(kK));
  ASSERT_LT(expected, definition3);  // distinct sampling is the sharper bound
  const double observed = static_cast<double>(collisions) / kTrials;
  EXPECT_NEAR(observed, expected, 0.02);
  EXPECT_LE(observed, definition3 + 0.02);
}

TEST(HammingLshFamilyTest, FamilyGuaranteeWithOptimalL) {
  // End-to-end Definition 3 + Equation 2: a pair within theta collides in
  // at least one of the L groups with frequency >= 1 - delta.
  Rng rng(8);
  constexpr size_t kM = 120;
  constexpr size_t kK = 30;
  constexpr size_t kTheta = 4;
  constexpr double kDelta = 0.1;
  const double p = HammingBaseProbability(kTheta, kM).value();
  const size_t L = OptimalGroups(p, kK, kDelta).value();
  EXPECT_EQ(L, 6u);  // the paper's PL value

  BitVector a(kM);
  for (size_t i = 0; i < kM; i += 2) a.Set(i);

  constexpr size_t kRounds = 600;
  size_t found = 0;
  for (size_t round = 0; round < kRounds; ++round) {
    BitVector b = a;
    // Perturb exactly theta bits.
    for (size_t i = 0; i < kTheta; ++i) {
      const size_t pos = rng.Below(kM);
      if (b.Test(pos)) {
        b.Clear(pos);
      } else {
        b.Set(pos);
      }
    }
    Result<HammingLshFamily> family =
        HammingLshFamily::CreateFull(kK, L, kM, rng);
    ASSERT_TRUE(family.ok());
    for (size_t l = 0; l < L; ++l) {
      if (family.value().Key(a, l) == family.value().Key(b, l)) {
        ++found;
        break;
      }
    }
  }
  const double hit_rate = static_cast<double>(found) / kRounds;
  EXPECT_GE(hit_rate, 1.0 - kDelta - 0.04);
}

TEST(HammingLshFamilyTest, RangeRestrictedFamilyIgnoresOtherAttributes) {
  // Attribute-level h_l^(f_i) must be insensitive to bits outside its
  // segment (Section 5.4).
  Rng rng(9);
  Result<HammingLshFamily> family = HammingLshFamily::Create(8, 4, 30, 68, rng);
  ASSERT_TRUE(family.ok());
  BitVector a(120);
  BitVector b(120);
  b.Set(0);    // attribute f1
  b.Set(110);  // attribute f4
  for (size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(family.value().Key(a, l), family.value().Key(b, l));
  }
  b.Set(35);  // inside [30, 98)
  bool any_diff = false;
  for (size_t l = 0; l < 4; ++l) {
    if (family.value().Key(a, l) != family.value().Key(b, l)) any_diff = true;
  }
  // With 4 groups of 8 samples over 68 bits, the flipped bit is sampled
  // with probability 1 - (67/68)^32 ~ 0.38; not guaranteed, so only check
  // that keys *can* change — re-roll until the bit is sampled.
  if (!any_diff) {
    bool sampled_somewhere = false;
    for (size_t l = 0; l < 4 && !sampled_somewhere; ++l) {
      for (uint32_t pos : family.value().function(l).positions()) {
        if (pos == 35) sampled_somewhere = true;
      }
    }
    EXPECT_FALSE(sampled_somewhere);
  }
}

}  // namespace
}  // namespace cbvlink
