#include "src/lsh/blocking_table.h"

#include <gtest/gtest.h>

namespace cbvlink {
namespace {

TEST(BlockingTableTest, EmptyTable) {
  BlockingTable table;
  EXPECT_EQ(table.NumBuckets(), 0u);
  EXPECT_EQ(table.NumEntries(), 0u);
  EXPECT_EQ(table.MaxBucketSize(), 0u);
  EXPECT_TRUE(table.Get(42).empty());
}

TEST(BlockingTableTest, InsertAndGet) {
  BlockingTable table;
  table.Insert(1, 100);
  table.Insert(1, 101);
  table.Insert(2, 102);
  EXPECT_EQ(table.NumBuckets(), 2u);
  EXPECT_EQ(table.NumEntries(), 3u);
  EXPECT_EQ(table.MaxBucketSize(), 2u);
  const auto bucket = table.Get(1);
  ASSERT_EQ(bucket.size(), 2u);
  EXPECT_EQ(bucket[0], 100u);
  EXPECT_EQ(bucket[1], 101u);
  EXPECT_EQ(table.Get(2).size(), 1u);
  EXPECT_TRUE(table.Get(3).empty());
}

TEST(BlockingTableTest, DuplicateIdsAllowedInBucket) {
  BlockingTable table;
  table.Insert(5, 7);
  table.Insert(5, 7);
  EXPECT_EQ(table.Get(5).size(), 2u);
}

TEST(BlockingTableTest, ClearEmptiesEverything) {
  BlockingTable table;
  table.Insert(1, 1);
  table.Insert(2, 2);
  table.Clear();
  EXPECT_EQ(table.NumBuckets(), 0u);
  EXPECT_TRUE(table.Get(1).empty());
}

TEST(BlockingTableTest, EraseRemovesIdEverywhere) {
  BlockingTable table;
  table.Insert(1, 7);
  table.Insert(1, 8);
  table.Insert(2, 7);
  table.Erase(7);
  EXPECT_EQ(table.Get(1).size(), 1u);
  EXPECT_EQ(table.Get(1)[0], 8u);
  // Bucket 2 became empty and was dropped.
  EXPECT_TRUE(table.Get(2).empty());
  EXPECT_EQ(table.NumBuckets(), 1u);
}

TEST(BlockingTableTest, EraseUnknownIdIsNoOp) {
  BlockingTable table;
  table.Insert(1, 7);
  table.Erase(99);
  EXPECT_EQ(table.NumEntries(), 1u);
}

TEST(BlockingTableTest, MeanBucketSize) {
  BlockingTable table;
  EXPECT_DOUBLE_EQ(table.MeanBucketSize(), 0.0);
  table.Insert(1, 100);
  table.Insert(1, 101);
  table.Insert(1, 102);
  table.Insert(2, 103);
  EXPECT_DOUBLE_EQ(table.MeanBucketSize(), 2.0);  // 4 entries / 2 buckets
}

TEST(BlockingTableTest, OccupancyHistogramLog2Slots) {
  BlockingTable table;
  table.Insert(1, 1);                              // size 1 -> slot 0
  for (int i = 0; i < 3; ++i) table.Insert(2, i);  // size 3 -> slot 1
  for (int i = 0; i < 4; ++i) table.Insert(3, i);  // size 4 -> slot 2
  const std::vector<uint64_t> histogram = table.OccupancyHistogram(16);
  ASSERT_EQ(histogram.size(), 16u);
  EXPECT_EQ(histogram[0], 1u);
  EXPECT_EQ(histogram[1], 1u);
  EXPECT_EQ(histogram[2], 1u);
  for (size_t i = 3; i < histogram.size(); ++i) EXPECT_EQ(histogram[i], 0u);
}

TEST(BlockingTableTest, OccupancyHistogramClampsToLastSlot) {
  BlockingTable table;
  for (int i = 0; i < 100; ++i) table.Insert(7, i);  // log2(100) = 6 > 3
  const std::vector<uint64_t> histogram = table.OccupancyHistogram(4);
  ASSERT_EQ(histogram.size(), 4u);
  EXPECT_EQ(histogram[3], 1u);
}

TEST(BlockingTableTest, BucketsIterable) {
  BlockingTable table;
  table.Insert(1, 10);
  table.Insert(2, 20);
  size_t total = 0;
  for (const auto& [key, bucket] : table.buckets()) total += bucket.size();
  EXPECT_EQ(total, 2u);
}

}  // namespace
}  // namespace cbvlink
