#include "src/datagen/dataset.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace cbvlink {
namespace {

NcvrGenerator MakeGenerator() {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  EXPECT_TRUE(gen.ok());
  return std::move(gen).value();
}

TEST(BuildLinkagePairTest, SizesAndIdSpaces) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 500;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().a.size(), 500u);
  EXPECT_EQ(data.value().b.size(), 500u);
  for (const Record& r : data.value().a) EXPECT_LT(r.id, 500u);
  for (const Record& r : data.value().b) EXPECT_GE(r.id, 500u);
}

TEST(BuildLinkagePairTest, TruthFractionNearSelectionProbability) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 4000;
  options.selection_probability = 0.5;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());
  const double fraction =
      static_cast<double>(data.value().truth.size()) / 4000.0;
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(BuildLinkagePairTest, TruthPairsReferenceRealRecords) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 300;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());
  std::set<RecordId> b_ids;
  for (const Record& r : data.value().b) b_ids.insert(r.id);
  for (const GroundTruthEntry& entry : data.value().truth) {
    EXPECT_LT(entry.pair.a_id, 300u);
    EXPECT_TRUE(b_ids.contains(entry.pair.b_id));
    EXPECT_FALSE(entry.ops.empty());
  }
}

TEST(BuildLinkagePairTest, PerturbedRecordsDifferFromOriginals) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 300;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());
  for (const GroundTruthEntry& entry : data.value().truth) {
    const Record& a = data.value().a[entry.pair.a_id];
    const Record* b = nullptr;
    for (const Record& r : data.value().b) {
      if (r.id == entry.pair.b_id) b = &r;
    }
    ASSERT_NE(b, nullptr);
    EXPECT_NE(a.fields, b->fields);
  }
}

TEST(BuildLinkagePairTest, ZeroSelectionProbabilityGivesNoTruth) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 100;
  options.selection_probability = 0.0;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data.value().truth.empty());
  EXPECT_EQ(data.value().b.size(), 100u);
}

TEST(BuildLinkagePairTest, FullSelectionGivesAllTruth) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 100;
  options.selection_probability = 1.0;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().truth.size(), 100u);
}

TEST(BuildLinkagePairTest, DeterministicForSeed) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 200;
  options.seed = 77;
  Result<LinkagePair> d1 =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  Result<LinkagePair> d2 =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1.value().truth.size(), d2.value().truth.size());
  for (size_t i = 0; i < d1.value().a.size(); ++i) {
    EXPECT_EQ(d1.value().a[i].fields, d2.value().a[i].fields);
  }
}

TEST(BuildLinkagePairTest, InvalidOptionsRejected) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 0;
  EXPECT_FALSE(
      BuildLinkagePair(gen, PerturbationScheme::Light(), options).ok());
  options.num_records = 10;
  options.selection_probability = 1.5;
  EXPECT_FALSE(
      BuildLinkagePair(gen, PerturbationScheme::Light(), options).ok());
  options.selection_probability = 0.5;
  options.copies_per_selected = 0;
  EXPECT_FALSE(
      BuildLinkagePair(gen, PerturbationScheme::Light(), options).ok());
}

TEST(BuildLinkagePairTest, HeavySchemeRecordsCarryFourOps) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 200;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Heavy(4), options);
  ASSERT_TRUE(data.ok());
  for (const GroundTruthEntry& entry : data.value().truth) {
    EXPECT_EQ(entry.ops.size(), 4u);  // 1 + 1 + 2
  }
}

TEST(BuildLinkagePairTest, MultipleCopiesPerSelected) {
  const NcvrGenerator gen = MakeGenerator();
  LinkagePairOptions options;
  options.num_records = 200;
  options.copies_per_selected = 2;
  Result<LinkagePair> data =
      BuildLinkagePair(gen, PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.value().b.size(), 200u);
  // Some A records should appear twice in the truth.
  std::map<RecordId, int> counts;
  for (const GroundTruthEntry& e : data.value().truth) {
    ++counts[e.pair.a_id];
  }
  bool any_double = false;
  for (const auto& [id, n] : counts) {
    if (n == 2) any_double = true;
  }
  EXPECT_TRUE(any_double);
}

}  // namespace
}  // namespace cbvlink
