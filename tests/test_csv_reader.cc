#include "src/io/csv_reader.h"

#include <gtest/gtest.h>

#include <fstream>

namespace cbvlink {
namespace {

std::string WriteTempCsv(const std::string& name, const std::string& body) {
  const std::string path = testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(ParseCsvLineTest, PlainFields) {
  Result<std::vector<std::string>> fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields.value(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFieldsPreserved) {
  EXPECT_EQ(ParseCsvLine("a,,c").value(),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(ParseCsvLine(",").value(), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(ParseCsvLine("").value(), (std::vector<std::string>{""}));
}

TEST(ParseCsvLineTest, QuotedFields) {
  EXPECT_EQ(ParseCsvLine("\"a,b\",c").value(),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvLine("\"he said \"\"hi\"\"\",x").value(),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
  EXPECT_EQ(ParseCsvLine("\"\"").value(), (std::vector<std::string>{""}));
}

TEST(ParseCsvLineTest, Malformed) {
  EXPECT_FALSE(ParseCsvLine("\"unterminated").ok());
  EXPECT_FALSE(ParseCsvLine("ab\"cd\"").ok());  // quote mid-field
}

TEST(ReadCsvDatasetTest, BasicWithIdColumn) {
  const std::string path = WriteTempCsv(
      "basic.csv",
      "id,first,last\n1,JOHN,SMITH\n2,MARY,JONES\n");
  Result<CsvDataset> dataset = ReadCsvDataset(path);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  EXPECT_EQ(dataset.value().attribute_names,
            (std::vector<std::string>{"first", "last"}));
  ASSERT_EQ(dataset.value().records.size(), 2u);
  EXPECT_EQ(dataset.value().records[0].id, 1u);
  EXPECT_EQ(dataset.value().records[0].fields,
            (std::vector<std::string>{"JOHN", "SMITH"}));
  EXPECT_EQ(dataset.value().records[1].id, 2u);
}

TEST(ReadCsvDatasetTest, AutoIdsWhenColumnAbsent) {
  const std::string path =
      WriteTempCsv("noid.csv", "first,last\nJOHN,SMITH\nMARY,JONES\n");
  CsvReadOptions options;
  options.first_auto_id = 100;
  Result<CsvDataset> dataset = ReadCsvDataset(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().records[0].id, 100u);
  EXPECT_EQ(dataset.value().records[1].id, 101u);
  EXPECT_EQ(dataset.value().attribute_names.size(), 2u);
}

TEST(ReadCsvDatasetTest, SelectedColumnsInRequestedOrder) {
  const std::string path = WriteTempCsv(
      "cols.csv", "id,first,last,town\n7,JOHN,SMITH,CARY\n");
  CsvReadOptions options;
  options.attribute_columns = {"town", "first"};
  Result<CsvDataset> dataset = ReadCsvDataset(path, options);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().records[0].fields,
            (std::vector<std::string>{"CARY", "JOHN"}));
}

TEST(ReadCsvDatasetTest, MissingRequestedColumn) {
  const std::string path = WriteTempCsv("miss.csv", "id,a\n1,x\n");
  CsvReadOptions options;
  options.attribute_columns = {"nope"};
  EXPECT_FALSE(ReadCsvDataset(path, options).ok());
}

TEST(ReadCsvDatasetTest, CrlfAndBlankLines) {
  const std::string path = WriteTempCsv(
      "crlf.csv", "id,a\r\n1,x\r\n\r\n2,y\r\n");
  Result<CsvDataset> dataset = ReadCsvDataset(path);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset.value().records.size(), 2u);
  EXPECT_EQ(dataset.value().records[1].fields[0], "y");
}

TEST(ReadCsvDatasetTest, FieldCountMismatchRejected) {
  const std::string path = WriteTempCsv("badrow.csv", "id,a,b\n1,x\n");
  Result<CsvDataset> dataset = ReadCsvDataset(path);
  EXPECT_FALSE(dataset.ok());
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalidArgument);
}

TEST(ReadCsvDatasetTest, UnparsableIdRejected) {
  const std::string path = WriteTempCsv("badid.csv", "id,a\nseven,x\n");
  EXPECT_FALSE(ReadCsvDataset(path).ok());
}

TEST(ReadCsvDatasetTest, MissingFileAndEmptyFile) {
  EXPECT_EQ(ReadCsvDataset("/nonexistent/x.csv").status().code(),
            StatusCode::kIOError);
  const std::string path = WriteTempCsv("empty.csv", "");
  EXPECT_EQ(ReadCsvDataset(path).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ReadCsvDatasetTest, LenientModeSkipsAndCountsMalformedRows) {
  const std::string path = WriteTempCsv(
      "lenient.csv",
      "id,a,b\n"
      "1,x,y\n"
      "2,onlyone\n"          // field-count mismatch
      "seven,p,q\n"          // unparsable id
      "3,\"unterminated\n"   // parse error
      "4,m,n\n");
  CsvReadOptions options;
  options.skip_malformed_rows = true;
  Result<CsvDataset> dataset = ReadCsvDataset(path, options);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  ASSERT_EQ(dataset.value().records.size(), 2u);
  EXPECT_EQ(dataset.value().records[0].id, 1u);
  EXPECT_EQ(dataset.value().records[1].id, 4u);
  EXPECT_EQ(dataset.value().skipped_rows, 3u);
  ASSERT_EQ(dataset.value().skip_errors.size(), 3u);

  // Header problems stay fatal even in lenient mode.
  const std::string bad_header = WriteTempCsv("lenient_hdr.csv", "\"x\n1\n");
  EXPECT_FALSE(ReadCsvDataset(bad_header, options).ok());

  // Strict mode still rejects the whole file.
  EXPECT_FALSE(ReadCsvDataset(path).ok());
}

TEST(ReadCsvDatasetTest, QuotedFieldWithCommaRoundTrips) {
  const std::string path = WriteTempCsv(
      "quoted.csv", "id,address\n1,\"12 OAK ST, APT 4\"\n");
  Result<CsvDataset> dataset = ReadCsvDataset(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset.value().records[0].fields[0], "12 OAK ST, APT 4");
}

}  // namespace
}  // namespace cbvlink
