// End-to-end integration tests: every linkage pipeline runs on a small
// NCVR-shaped data set and is scored against ground truth.  Thresholds
// follow Section 6 scaled to the PL scheme.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/thread_pool.h"
#include "src/eval/experiment.h"
#include "src/linkage/bfh_linker.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/linkage/harra_linker.h"
#include "src/linkage/smeb_linker.h"

namespace cbvlink {
namespace {

class LinkersTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    Result<NcvrGenerator> gen = NcvrGenerator::Create();
    ASSERT_TRUE(gen.ok());
    generator_ = new NcvrGenerator(std::move(gen).value());
    LinkagePairOptions options;
    options.num_records = 800;
    options.seed = 4242;
    Result<LinkagePair> data =
        BuildLinkagePair(*generator_, PerturbationScheme::Light(), options);
    ASSERT_TRUE(data.ok());
    data_ = new LinkagePair(std::move(data).value());
  }

  static void TearDownTestSuite() {
    delete data_;
    delete generator_;
    data_ = nullptr;
    generator_ = nullptr;
  }

  static Rule PlRule() {
    // PL: every attribute within theta = 4.
    return Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 4),
                      Rule::Pred(3, 4)});
  }

  static NcvrGenerator* generator_;
  static LinkagePair* data_;
};

NcvrGenerator* LinkersTest::generator_ = nullptr;
LinkagePair* LinkersTest::data_ = nullptr;

TEST_F(LinkersTest, CbvHbRecordLevelFindsMostPairs) {
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.attribute_level_blocking = false;
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 1;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), *data_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Paper: PC constantly above 0.95 (Figure 9a).
  EXPECT_GE(result.value().quality.pairs_completeness, 0.9);
  EXPECT_GE(result.value().quality.reduction_ratio, 0.9);
  // m-bar should be near the 120 bits of Table 3.
  Result<const CVectorRecordEncoder*> encoder = linker.value().encoder();
  ASSERT_TRUE(encoder.ok()) << encoder.status().ToString();
  EXPECT_NEAR(static_cast<double>(encoder.value()->total_bits()), 120.0,
              10.0);
}

TEST_F(LinkersTest, CbvHbEncoderBeforeLinkIsFailedPrecondition) {
  // encoder() used to return a silent null before the first Link();
  // now the misuse is a typed error.
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.seed = 1;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<const CVectorRecordEncoder*> encoder = linker.value().encoder();
  ASSERT_FALSE(encoder.ok());
  EXPECT_EQ(encoder.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(LinkersTest, CbvHbEmptyAWithoutExpectedQGramsIsAnError) {
  // With no expected_qgrams the sizing estimate samples data set A; an
  // empty A must be rejected up front instead of silently producing
  // degenerate vector sizes.
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.seed = 5;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link({}, data_->b);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LinkersTest, CbvHbEmptyAWithExpectedQGramsIsAllowed) {
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.expected_qgrams = {8.0, 9.0, 20.0, 7.0};
  config.seed = 5;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link({}, data_->b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result.value().matches.empty());
}

TEST_F(LinkersTest, CbvHbParallelMatchingReproducesSerialOutput) {
  // The acceptance bar of the parallel engine: pairs and stats must be
  // identical across thread counts on a fixed-seed dataset.
  auto run = [&](size_t num_threads) {
    CbvHbConfig config;
    config.schema = generator_->schema();
    config.rule = PlRule();
    config.record_K = 30;
    config.record_theta = 4;
    config.seed = 1;
    Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
    EXPECT_TRUE(linker.ok());
    Result<LinkageResult> result = linker.value().Link(
        data_->a, data_->b, ExecutionOptions::WithThreads(num_threads));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result.value().threads_used, num_threads);
    return std::move(result).value();
  };
  const LinkageResult serial = run(1);
  EXPECT_GT(serial.matches.size(), 0u);
  for (size_t threads : {2u, 8u}) {
    const LinkageResult parallel = run(threads);
    EXPECT_EQ(parallel.matches, serial.matches)
        << "matches diverge at " << threads << " threads";
    EXPECT_EQ(parallel.stats.candidate_occurrences,
              serial.stats.candidate_occurrences);
    EXPECT_EQ(parallel.stats.comparisons, serial.stats.comparisons);
    EXPECT_EQ(parallel.stats.matches, serial.stats.matches);
    EXPECT_EQ(parallel.stats.dedup_skipped, serial.stats.dedup_skipped);
  }
}

TEST_F(LinkersTest, SharedPoolOverridesNumThreads) {
  // A caller-owned pool drives every parallel stage; num_threads is
  // ignored and threads_used reports the pool's width.
  ThreadPool pool(3);
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.seed = 1;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  ExecutionOptions options = ExecutionOptions::WithPool(&pool);
  options.num_threads = 16;  // must be ignored
  Result<LinkageResult> result =
      linker.value().Link(data_->a, data_->b, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().threads_used, 3u);
}

TEST_F(LinkersTest, BaselinesAreThreadCountInvariant) {
  // Every linker — not just cBV-HB — must produce identical output at
  // any thread count (the Linker interface's contract).
  const auto run_harra = [&](size_t threads) {
    HarraConfig config;
    config.K = 5;
    config.L = 30;
    config.theta = 0.35;
    config.seed = 4;
    Result<HarraLinker> linker = HarraLinker::Create(std::move(config));
    EXPECT_TRUE(linker.ok());
    Result<LinkageResult> result = linker.value().Link(
        data_->a, data_->b, ExecutionOptions::WithThreads(threads));
    EXPECT_TRUE(result.ok());
    return std::move(result).value().matches;
  };
  const auto run_smeb = [&](size_t threads) {
    SmEbConfig config;
    config.schema = generator_->schema();
    config.thresholds = {4.5, 4.5, 4.5, 4.5};
    config.stringmap.dimensions = 6;
    config.stringmap.max_train_sample = 200;
    config.L = 8;
    config.seed = 5;
    Result<SmEbLinker> linker = SmEbLinker::Create(std::move(config));
    EXPECT_TRUE(linker.ok());
    Result<LinkageResult> result = linker.value().Link(
        data_->a, data_->b, ExecutionOptions::WithThreads(threads));
    EXPECT_TRUE(result.ok());
    return std::move(result).value().matches;
  };
  const std::vector<IdPair> harra_serial = run_harra(1);
  const std::vector<IdPair> smeb_serial = run_smeb(1);
  for (size_t threads : {2u, 8u}) {
    EXPECT_EQ(run_harra(threads), harra_serial)
        << "HARRA diverges at " << threads << " threads";
    EXPECT_EQ(run_smeb(threads), smeb_serial)
        << "SM-EB diverges at " << threads << " threads";
  }
}

TEST_F(LinkersTest, CbvHbAttributeLevelFindsMostPairs) {
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.attribute_level_blocking = true;
  config.attribute_K = {5, 5, 10, 5};
  config.seed = 2;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), *data_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().quality.pairs_completeness, 0.9);
}

TEST_F(LinkersTest, BfhFindsMostPairs) {
  BfhConfig config;
  config.schema = generator_->schema();
  // Section 6.1: theta = 45 per field for PL.
  config.rule = Rule::And({Rule::Pred(0, 45), Rule::Pred(1, 45),
                           Rule::Pred(2, 45), Rule::Pred(3, 45)});
  config.record_theta = 45;
  config.seed = 3;
  Result<BfhLinker> linker = BfhLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), *data_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // A single edit on a long Address can flip > 45 Bloom bits (the
  // length-dependence of Section 6.1), so BfH's PL recall sits slightly
  // below cBV-HB's.
  EXPECT_GE(result.value().quality.pairs_completeness, 0.8);
}

TEST_F(LinkersTest, HarraFindsPairsButMissesSome) {
  HarraConfig config;
  config.K = 5;
  config.L = 30;
  config.theta = 0.35;
  config.seed = 4;
  Result<HarraLinker> linker = HarraLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), *data_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // HARRA finds a substantial share but the paper reports ~0.82 on NCVR.
  EXPECT_GE(result.value().quality.pairs_completeness, 0.5);
}

TEST_F(LinkersTest, SmEbRunsEndToEnd) {
  SmEbConfig config;
  config.schema = generator_->schema();
  config.thresholds = {4.5, 4.5, 4.5, 4.5};
  config.stringmap.dimensions = 10;       // reduced for test speed
  config.stringmap.max_train_sample = 300;
  config.L = 12;
  config.seed = 5;
  Result<SmEbLinker> linker = SmEbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), *data_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // SM-EB is the weakest method; just require it to find a meaningful
  // fraction and produce sane measures.
  EXPECT_GE(result.value().quality.pairs_completeness, 0.3);
  EXPECT_LE(result.value().quality.pairs_completeness, 1.0);
  EXPECT_GT(result.value().linkage.stats.comparisons, 0u);
}

TEST_F(LinkersTest, ConfigValidationErrors) {
  // cBV-HB: attribute-level mode without K values.
  CbvHbConfig cbv;
  cbv.schema = generator_->schema();
  cbv.rule = PlRule();
  cbv.attribute_level_blocking = true;
  EXPECT_FALSE(CbvHbLinker::Create(std::move(cbv)).ok());

  // BfH: rule out of schema range.
  BfhConfig bfh;
  bfh.schema = generator_->schema();
  bfh.rule = Rule::Pred(9, 45);
  EXPECT_FALSE(BfhLinker::Create(std::move(bfh)).ok());

  // HARRA: invalid theta.
  HarraConfig harra;
  harra.theta = 1.5;
  EXPECT_FALSE(HarraLinker::Create(std::move(harra)).ok());

  // SM-EB: no thresholds.
  SmEbConfig smeb;
  smeb.schema = generator_->schema();
  EXPECT_FALSE(SmEbLinker::Create(std::move(smeb)).ok());
}

TEST_F(LinkersTest, ParallelEmbeddingMatchesSerialExactly) {
  // Encoding is deterministic per encoder, so threading must not change
  // the outcome — only the wall clock.
  const auto run = [&](size_t threads) {
    CbvHbConfig config;
    config.schema = generator_->schema();
    config.rule = PlRule();
    config.record_K = 30;
    config.record_theta = 4;
    config.seed = 77;
    Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
    EXPECT_TRUE(linker.ok());
    Result<LinkageResult> result = linker.value().Link(
        data_->a, data_->b, ExecutionOptions::WithThreads(threads));
    EXPECT_TRUE(result.ok());
    std::vector<IdPair> matches = std::move(result).value().matches;
    std::sort(matches.begin(), matches.end());
    return matches;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST_F(LinkersTest, MatchedPairsAreMostlyTrueMatches) {
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 6;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), *data_);
  ASSERT_TRUE(result.ok());
  const PairSet truth = TruthPairs(data_->truth);
  size_t hits = 0;
  for (const IdPair& pair : result.value().linkage.matches) {
    if (truth.contains(pair)) ++hits;
  }
  // Precision of the *matched* set (not PQ over candidates) should be
  // high: the rule verifies distances attribute by attribute.
  EXPECT_GT(result.value().linkage.matches.size(), 0u);
  EXPECT_GE(static_cast<double>(hits) /
                static_cast<double>(result.value().linkage.matches.size()),
            0.8);
}

TEST_F(LinkersTest, HarraEarlyPruningIsOneToOne) {
  // h-CC links de-duplicated sets: once a record matches it is removed,
  // so no A or B id may appear in two matched pairs.
  HarraConfig config;
  config.K = 5;
  config.L = 30;
  config.theta = 0.35;
  config.seed = 8;
  Result<HarraLinker> linker = HarraLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(data_->a, data_->b);
  ASSERT_TRUE(result.ok());
  std::set<RecordId> seen_a;
  std::set<RecordId> seen_b;
  for (const IdPair& pair : result.value().matches) {
    EXPECT_TRUE(seen_a.insert(pair.a_id).second) << pair.a_id;
    EXPECT_TRUE(seen_b.insert(pair.b_id).second) << pair.b_id;
  }
}

TEST_F(LinkersTest, SmEbDerivesLFromEquation2WhenUnset) {
  SmEbConfig config;
  config.schema = generator_->schema();
  // Tight thresholds keep the derived L small (larger thetas push the
  // p-stable collision probability down and L into the hundreds).
  config.thresholds = {1.0, 1.0, 1.0, 1.0};
  config.stringmap.dimensions = 6;
  config.stringmap.max_train_sample = 200;
  config.L = 0;  // derive from Eq. 2 at sqrt(sum theta^2)
  config.seed = 9;
  Result<SmEbLinker> linker = SmEbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(data_->a, data_->b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().blocking_groups, 0u);
}

TEST_F(LinkersTest, CompoundRuleEndToEnd) {
  // (f1 AND f2) OR (f3 AND f4): any PL-perturbed pair satisfies at
  // least one side (only one attribute carries the edit), so recall
  // should be high with attribute-level blocking over the compound rule.
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = Rule::Or(
      {Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)}),
       Rule::And({Rule::Pred(2, 4), Rule::Pred(3, 4)})});
  config.attribute_level_blocking = true;
  config.attribute_K = {5, 5, 10, 5};
  config.seed = 10;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), *data_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result.value().quality.pairs_completeness, 0.9);
}

TEST_F(LinkersTest, TimingBreakdownIsPopulated) {
  CbvHbConfig config;
  config.schema = generator_->schema();
  config.rule = PlRule();
  config.seed = 11;
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(data_->a, data_->b);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().embed_seconds, 0.0);
  EXPECT_GE(result.value().index_seconds, 0.0);
  EXPECT_GE(result.value().match_seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.value().total_seconds(),
                   result.value().embed_seconds +
                       result.value().index_seconds +
                       result.value().match_seconds);
}

}  // namespace
}  // namespace cbvlink
