// Cross-cutting edge cases that don't belong to a single module's suite:
// empty inputs through every pipeline, zero-width serialization,
// non-ASCII bytes, and deep rule nesting.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/datagen/generators.h"
#include "src/io/csv_reader.h"
#include "src/io/serialization.h"
#include "src/linkage/bfh_linker.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/linkage/harra_linker.h"
#include "src/lsh/params.h"
#include "src/rules/rule_parser.h"
#include "src/text/normalize.h"

namespace cbvlink {
namespace {

TEST(EdgeCaseTest, HarraLinksEmptySets) {
  Result<HarraLinker> linker = HarraLinker::Create(HarraConfig{});
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link({}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());
  EXPECT_EQ(result.value().stats.comparisons, 0u);
}

TEST(EdgeCaseTest, BfhLinksEmptySets) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  BfhConfig config;
  config.schema = gen.value().schema();
  config.rule = Rule::Pred(0, 45);
  Result<BfhLinker> linker = BfhLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link({}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());
}

TEST(EdgeCaseTest, HarraOneSidedData) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(1);
  std::vector<Record> a{gen.value().Generate(0, rng)};
  Result<HarraLinker> linker = HarraLinker::Create(HarraConfig{});
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(a, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());
}

TEST(EdgeCaseTest, ZeroWidthSerializationRoundTrips) {
  std::vector<EncodedRecord> records(3);
  for (RecordId id = 0; id < 3; ++id) {
    records[id].id = id;
    records[id].bits = BitVector(0);
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords(records, stream).ok());
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 3u);
  EXPECT_EQ(loaded.value()[2].id, 2u);
  EXPECT_EQ(loaded.value()[2].bits.size(), 0u);
}

TEST(EdgeCaseTest, NormalizeDropsNonAsciiBytes) {
  // UTF-8 'é' (0xC3 0xA9) and a control byte are outside every alphabet.
  const std::string raw = "JOS\xC3\xA9\x01 II";
  EXPECT_EQ(Normalize(raw, Alphabet::Uppercase()), "JOSII");
  EXPECT_EQ(Normalize(raw, Alphabet::Alphanumeric()), "JOS II");
}

TEST(EdgeCaseTest, HeaderOnlyCsvYieldsNoRecords) {
  const std::string path = testing::TempDir() + "/header_only.csv";
  {
    std::ofstream out(path);
    out << "id,first,last\n";
  }
  Result<CsvDataset> dataset = ReadCsvDataset(path);
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset.value().records.empty());
  EXPECT_EQ(dataset.value().attribute_names.size(), 2u);
}

TEST(EdgeCaseTest, DeeplyNestedRuleParsesAndEvaluates) {
  // 40 levels of parentheses and alternating operators.
  std::string text = "f1 <= 1";
  for (int i = 0; i < 40; ++i) {
    text = "(" + text + (i % 2 == 0 ? " AND f2 <= 2" : " OR f3 <= 3") + ")";
  }
  Result<Rule> rule = ParseRule(text);
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(rule.value().Validate(3).ok());
  // Distances satisfying f3 <= 3 make every OR level true.
  EXPECT_TRUE(rule.value().Evaluate([](size_t attr) {
    return attr == 2 ? size_t{0} : size_t{100};
  }));
  // Nothing satisfied -> false.
  EXPECT_FALSE(rule.value().Evaluate([](size_t) { return size_t{100}; }));
}

TEST(EdgeCaseTest, OptimalGroupsAtProbabilityExtremes) {
  // p^K barely below 1: one group suffices.
  EXPECT_EQ(OptimalGroupsFromComposite(0.999999, 0.1).value(), 1u);
  // delta close to 1: one group suffices even for small p.
  EXPECT_EQ(OptimalGroupsFromComposite(0.5, 0.9).value(), 1u);
}

TEST(EdgeCaseTest, RecordsWithIdenticalIdsAcrossSetsAreDistinct) {
  // A and B id spaces may legally overlap; matches reference (a_id,
  // b_id) so the pair is unambiguous.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(2);
  Record shared = gen.value().Generate(7, rng);
  std::vector<Record> a{shared};
  std::vector<Record> b{shared};  // same id 7, same content

  CbvHbConfig config;
  config.schema = gen.value().schema();
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(a, b);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().matches.size(), 1u);
  EXPECT_EQ(result.value().matches[0].a_id, 7u);
  EXPECT_EQ(result.value().matches[0].b_id, 7u);
}

}  // namespace
}  // namespace cbvlink
