// Tests for the telemetry subsystem: histogram bucket boundaries and
// quantile extraction against known distributions, exact totals under
// concurrent recording, registry handle stability, and golden output
// for the Prometheus / JSON exporters.

#include "src/telemetry/metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/telemetry/exporters.h"

namespace cbvlink {
namespace telemetry {
namespace {

// ---------------------------------------------------------------------
// Histogram buckets and quantiles.

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  // Bucket i counts values in (2^(i-1), 2^i]; bucket 0 takes 0 and 1.
  EXPECT_EQ(Histogram::BucketIndex(0), 0u);
  EXPECT_EQ(Histogram::BucketIndex(1), 0u);
  EXPECT_EQ(Histogram::BucketIndex(2), 1u);
  EXPECT_EQ(Histogram::BucketIndex(3), 2u);
  EXPECT_EQ(Histogram::BucketIndex(4), 2u);
  EXPECT_EQ(Histogram::BucketIndex(5), 3u);
  EXPECT_EQ(Histogram::BucketIndex(8), 3u);
  EXPECT_EQ(Histogram::BucketIndex(9), 4u);
  EXPECT_EQ(Histogram::BucketIndex(1024), 10u);
  EXPECT_EQ(Histogram::BucketIndex(1025), 11u);
  // The last finite bucket and the overflow bucket.
  const uint64_t last = Histogram::UpperBound(Histogram::kFiniteBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(last), Histogram::kFiniteBuckets - 1);
  EXPECT_EQ(Histogram::BucketIndex(last + 1), Histogram::kFiniteBuckets);
  EXPECT_EQ(Histogram::BucketIndex(UINT64_MAX), Histogram::kFiniteBuckets);
}

TEST(HistogramTest, SnapshotCountSumMaxMean) {
  Registry registry;
  Histogram* h = registry.GetHistogram("h");
  for (const uint64_t v : {3u, 5u, 7u, 9u}) h->Record(v);
  const Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, 4u);
  EXPECT_EQ(snap.sum, 24u);
  EXPECT_EQ(snap.max, 9u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 6.0);
}

TEST(HistogramTest, QuantilesOnUniformDistribution) {
  // 1..1000 each once.  Within a bucket the samples are uniform, which
  // is exactly the linear-interpolation model, and the exact max
  // tightens the last bucket's upper bound from 1024 to 1000 — so the
  // extracted quantiles land on the true order statistics.
  Registry registry;
  Histogram* h = registry.GetHistogram("uniform");
  for (uint64_t v = 1; v <= 1000; ++v) h->Record(v);
  const Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, 1000u);
  EXPECT_NEAR(snap.Quantile(0.50), 500.0, 5.0);
  EXPECT_NEAR(snap.Quantile(0.90), 900.0, 5.0);
  EXPECT_NEAR(snap.Quantile(0.99), 990.0, 5.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 1000.0);  // q=1 is the exact max
}

TEST(HistogramTest, QuantileBoundedByBucketOfConstantSamples) {
  Registry registry;
  Histogram* h = registry.GetHistogram("constant");
  for (int i = 0; i < 100; ++i) h->Record(100);
  const Histogram::Snapshot snap = h->Snap();
  // 100 lands in bucket (64, 128]; the upper bound is clamped to the
  // exact max, so every quantile stays within [64, 100].
  for (const double q : {0.5, 0.9, 0.99}) {
    EXPECT_GE(snap.Quantile(q), 64.0);
    EXPECT_LE(snap.Quantile(q), 100.0);
  }
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 100.0);
}

TEST(HistogramTest, EmptyHistogramQuantilesAreZero) {
  Registry registry;
  const Histogram::Snapshot snap = registry.GetHistogram("empty")->Snap();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Mean(), 0.0);
}

TEST(HistogramTest, OverflowSamplesLandInOverflowBucket) {
  Registry registry;
  Histogram* h = registry.GetHistogram("overflow");
  const uint64_t huge =
      Histogram::UpperBound(Histogram::kFiniteBuckets - 1) * 4;
  h->Record(huge);
  const Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.buckets[Histogram::kFiniteBuckets], 1u);
  EXPECT_EQ(snap.max, huge);
  // The overflow bucket spans [2^27, max]; quantiles interpolate inside
  // it, with q=1 pinned to the exact max.
  const double lower =
      static_cast<double>(Histogram::UpperBound(Histogram::kFiniteBuckets - 1));
  EXPECT_GE(snap.Quantile(0.5), lower);
  EXPECT_LE(snap.Quantile(0.5), static_cast<double>(huge));
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), static_cast<double>(huge));
}

// ---------------------------------------------------------------------
// Concurrency: totals must be exact once writers join.

TEST(ConcurrencyTest, CounterTotalsExactAcrossThreads) {
  Registry registry;
  Counter* counter = registry.GetCounter("hits");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(ConcurrencyTest, HistogramTotalsExactAcrossThreads) {
  Registry registry;
  Histogram* h = registry.GetHistogram("latency");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        h->Record(static_cast<uint64_t>(t) + 1);  // thread t records t+1
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot snap = h->Snap();
  EXPECT_EQ(snap.count, kThreads * kPerThread);
  // sum = sum_t (t+1) * kPerThread = kPerThread * kThreads*(kThreads+1)/2.
  EXPECT_EQ(snap.sum, kPerThread * kThreads * (kThreads + 1) / 2);
  EXPECT_EQ(snap.max, static_cast<uint64_t>(kThreads));
}

TEST(ConcurrencyTest, RegistryGetRacesYieldOnePointer) {
  Registry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> seen(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &seen, t] {
      seen[t] = registry.GetCounter("raced");
      seen[t]->Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(seen[t], seen[0]);
  EXPECT_EQ(seen[0]->Value(), static_cast<uint64_t>(kThreads));
}

// ---------------------------------------------------------------------
// Registry semantics.

TEST(RegistryTest, HandlesAreStableAndResetZeroesInPlace) {
  Registry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h");
  counter->Add(5);
  gauge->Set(2.5);
  histogram->Record(7);

  registry.ResetForTest();
  EXPECT_EQ(registry.GetCounter("c"), counter);  // same object, zeroed
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_DOUBLE_EQ(gauge->Value(), 0.0);
  EXPECT_EQ(histogram->Snap().count, 0u);
  counter->Add(1);  // old handle still records
  EXPECT_EQ(registry.GetCounter("c")->Value(), 1u);
}

TEST(RegistryTest, CollectIsSortedByName) {
  Registry registry;
  registry.GetCounter("zebra")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetGauge("mid")->Set(3);
  const Registry::Snapshot snap = registry.Collect();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[1].first, "zebra");
  EXPECT_EQ(snap.counters[0].second, 2u);
}

TEST(RegistryTest, LabeledNameFormat) {
  EXPECT_EQ(LabeledName("lsh_table_buckets", "table", "3"),
            "lsh_table_buckets{table=\"3\"}");
}

TEST(RegistryTest, ScopedTimerRecordsOneSample) {
  Registry registry;
  Histogram* h = registry.GetHistogram("span_us");
  { ScopedTimer timer(h); }
  EXPECT_EQ(h->Snap().count, 1u);
  { ScopedTimer null_timer(nullptr); }  // must not crash
}

// ---------------------------------------------------------------------
// Exporters.

Registry* GoldenRegistry() {
  auto* registry = new Registry();
  registry->GetCounter("requests_total")->Add(3);
  registry->GetCounter(LabeledName("requests_total", "kind", "insert"))
      ->Add(2);
  registry->GetGauge("records")->Set(42);
  Histogram* h = registry->GetHistogram("latency_us");
  h->Record(1);
  h->Record(3);
  h->Record(3);
  h->Record(100);
  return registry;
}

TEST(ExporterTest, PrometheusTextGolden) {
  std::unique_ptr<Registry> registry(GoldenRegistry());
  const std::string text = ToPrometheusText(*registry);

  // One TYPE line per base name even with labeled variants present.
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_EQ(text.find("# TYPE requests_total counter\n"),
            text.rfind("# TYPE requests_total counter\n"));
  EXPECT_NE(text.find("requests_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{kind=\"insert\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE records gauge\nrecords 42\n"),
            std::string::npos);

  // Histogram buckets are cumulative: le=1 has the sample at 1, le=2
  // still 1, le=4 picks up both 3s, +Inf has all four.
  EXPECT_NE(text.find("# TYPE latency_us histogram\n"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"2\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"4\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"128\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_us_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_us_sum 107\n"), std::string::npos);
  EXPECT_NE(text.find("latency_us_count 4\n"), std::string::npos);
}

TEST(ExporterTest, JsonGolden) {
  std::unique_ptr<Registry> registry(GoldenRegistry());
  const std::string json = ToJson(*registry);

  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_total\": 3"), std::string::npos);
  // The embedded label's quotes must be escaped in the JSON key.
  EXPECT_NE(json.find("\"requests_total{kind=\\\"insert\\\"}\": 2"),
            std::string::npos);
  EXPECT_NE(json.find("\"records\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\": {\"count\": 4, \"sum\": 107, "
                      "\"max\": 100"),
            std::string::npos);
  // Zero buckets are omitted; the three occupied ones survive.
  EXPECT_NE(json.find("{\"le\": 1, \"count\": 1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 4, \"count\": 2}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\": 128, \"count\": 1}"), std::string::npos);
  EXPECT_EQ(json.find("{\"le\": 2, \"count\""), std::string::npos);
}

TEST(ExporterTest, EmptyRegistryJsonIsStillAnObject) {
  Registry registry;
  const std::string json = ToJson(registry);
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {}"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos);
}

TEST(ExporterTest, DumpJsonWritesAtomically) {
  std::unique_ptr<Registry> registry(GoldenRegistry());
  const std::string path =
      testing::TempDir() + "/telemetry_dump_test.json";
  ASSERT_TRUE(DumpJson(*registry, path).ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream contents;
  contents << in.rdbuf();
  EXPECT_EQ(contents.str(), ToJson(*registry));
  // The tmp staging file must not survive the rename commit.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace telemetry
}  // namespace cbvlink
