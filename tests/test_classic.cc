#include "src/blocking/classic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/experiment.h"
#include "src/linkage/classic_linker.h"

namespace cbvlink {
namespace {

std::vector<Record> MakeA() {
  return {{0, {"JOHN", "SMITH"}},
          {1, {"MARY", "JONES"}},
          {2, {"ZARA", "WILSON"}}};
}

std::vector<Record> MakeB() {
  return {{10, {"JOHN", "SMITH"}},   // exact dup of 0
          {11, {"MARY", "JONAS"}},   // near dup of 1
          {12, {"QUENTIN", "ADAMS"}}};
}

bool Contains(const std::vector<IdPair>& pairs, IdPair p) {
  return std::find(pairs.begin(), pairs.end(), p) != pairs.end();
}

TEST(SortedNeighborhoodTest, WindowValidation) {
  SortedNeighborhoodOptions options;
  options.window = 0;
  EXPECT_FALSE(SortedNeighborhoodCandidates(MakeA(), MakeB(), options).ok());
}

TEST(SortedNeighborhoodTest, AdjacentKeysBecomeCandidates) {
  Result<std::vector<IdPair>> candidates =
      SortedNeighborhoodCandidates(MakeA(), MakeB());
  ASSERT_TRUE(candidates.ok());
  // Identical records sort adjacently.
  EXPECT_TRUE(Contains(candidates.value(), IdPair{0, 10}));
  EXPECT_TRUE(Contains(candidates.value(), IdPair{1, 11}));
}

TEST(SortedNeighborhoodTest, PairsAreCrossSourceOnly) {
  Result<std::vector<IdPair>> candidates =
      SortedNeighborhoodCandidates(MakeA(), MakeB());
  ASSERT_TRUE(candidates.ok());
  for (const IdPair& p : candidates.value()) {
    EXPECT_LT(p.a_id, 10u);
    EXPECT_GE(p.b_id, 10u);
  }
}

TEST(SortedNeighborhoodTest, WindowOneProducesNothing) {
  SortedNeighborhoodOptions options;
  options.window = 1;  // a window of one holds no pair
  Result<std::vector<IdPair>> candidates =
      SortedNeighborhoodCandidates(MakeA(), MakeB(), options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(candidates.value().empty());
}

TEST(SortedNeighborhoodTest, LargerWindowsSupersetSmaller) {
  SortedNeighborhoodOptions small;
  small.window = 2;
  SortedNeighborhoodOptions large;
  large.window = 6;
  const auto c_small =
      SortedNeighborhoodCandidates(MakeA(), MakeB(), small).value();
  const auto c_large =
      SortedNeighborhoodCandidates(MakeA(), MakeB(), large).value();
  for (const IdPair& p : c_small) {
    EXPECT_TRUE(Contains(c_large, p));
  }
  EXPECT_GE(c_large.size(), c_small.size());
}

TEST(SortedNeighborhoodTest, MissesSimilarPairsWithDifferentPrefixes) {
  // The classic failure: an error in the first characters of the key
  // sends similar records far apart in sort order.
  std::vector<Record> a = {{0, {"KATHERINE", "BROWN"}}};
  std::vector<Record> b = {{10, {"XATHERINE", "BROWN"}}};  // first char typo
  // Pad the pool so the two keys cannot fall into one window by luck.
  for (size_t i = 1; i <= 30; ++i) {
    a.push_back({i, {std::string("M") + std::string(3, 'A' + (i % 20)), "FILL"}});
  }
  SortedNeighborhoodOptions options;
  options.window = 3;
  Result<std::vector<IdPair>> candidates =
      SortedNeighborhoodCandidates(a, b, options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_FALSE(Contains(candidates.value(), IdPair{0, 10}));
}

TEST(CanopyTest, ThresholdValidation) {
  CanopyOptions options;
  options.loose_threshold = 0.3;
  options.tight_threshold = 0.5;  // tight > loose
  EXPECT_FALSE(CanopyCandidates(MakeA(), MakeB(), options).ok());
  options.loose_threshold = 1.5;
  EXPECT_FALSE(CanopyCandidates(MakeA(), MakeB(), options).ok());
}

TEST(CanopyTest, DuplicatesShareACanopy) {
  Result<std::vector<IdPair>> candidates = CanopyCandidates(MakeA(), MakeB());
  ASSERT_TRUE(candidates.ok());
  EXPECT_TRUE(Contains(candidates.value(), IdPair{0, 10}));
  EXPECT_TRUE(Contains(candidates.value(), IdPair{1, 11}));
}

TEST(CanopyTest, DissimilarRecordsStayApartWithStrictThresholds) {
  CanopyOptions options;
  options.loose_threshold = 0.3;
  options.tight_threshold = 0.2;
  Result<std::vector<IdPair>> candidates =
      CanopyCandidates(MakeA(), MakeB(), options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_FALSE(Contains(candidates.value(), IdPair{2, 12}));
}

TEST(CanopyTest, LooseThresholdOneIsAllPairs) {
  CanopyOptions options;
  options.loose_threshold = 1.0;
  options.tight_threshold = 1.0;
  Result<std::vector<IdPair>> candidates =
      CanopyCandidates(MakeA(), MakeB(), options);
  ASSERT_TRUE(candidates.ok());
  EXPECT_EQ(candidates.value().size(), 9u);  // 3 x 3 cross pairs
}

TEST(ClassicLinkerTest, CreateValidation) {
  ClassicConfig config;
  EXPECT_FALSE(ClassicLinker::Create(std::move(config)).ok());
}

TEST(ClassicLinkerTest, SortedNeighborhoodEndToEnd) {
  ClassicConfig config;
  config.blocking = ClassicBlocking::kSortedNeighborhood;
  config.edit_thresholds = {1, 1};
  Result<ClassicLinker> linker = ClassicLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  EXPECT_EQ(linker.value().name(), "SortedNbh");
  Result<LinkageResult> result = linker.value().Link(MakeA(), MakeB());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Contains(result.value().matches, IdPair{0, 10}));
  EXPECT_TRUE(Contains(result.value().matches, IdPair{1, 11}));
  EXPECT_FALSE(Contains(result.value().matches, IdPair{2, 12}));
}

TEST(ClassicLinkerTest, CanopyEndToEndOnGeneratedData) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 300;
  options.seed = 13;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());

  ClassicConfig config;
  config.blocking = ClassicBlocking::kCanopy;
  config.edit_thresholds = {1, 1, 1, 1};
  Result<ClassicLinker> linker = ClassicLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  EXPECT_EQ(linker.value().name(), "Canopy");
  Result<ExperimentResult> result = RunLinkage(linker.value(), data.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Canopy with generous thresholds finds most pairs at small scale, but
  // carries no guarantee — only sanity-check a reasonable range.
  EXPECT_GE(result.value().quality.pairs_completeness, 0.6);
}

TEST(ClassicLinkerTest, SortedNeighborhoodOnGeneratedData) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 300;
  options.seed = 17;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());

  ClassicConfig config;
  config.blocking = ClassicBlocking::kSortedNeighborhood;
  config.sorted_neighborhood.window = 12;
  config.edit_thresholds = {1, 1, 1, 1};
  Result<ClassicLinker> linker = ClassicLinker::Create(std::move(config));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result = RunLinkage(linker.value(), data.value());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().quality.pairs_completeness, 0.3);
  // No guarantee: typically well below the LSH methods' >= 0.95.
  EXPECT_GT(result.value().linkage.stats.comparisons, 0u);
}

}  // namespace
}  // namespace cbvlink
