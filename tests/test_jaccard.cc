#include "src/metrics/jaccard.h"

#include <gtest/gtest.h>

#include "src/text/qgram.h"

namespace cbvlink {
namespace {

TEST(JaccardTest, EmptySets) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1}, {}), 1.0);
}

TEST(JaccardTest, IdenticalSets) {
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(JaccardTest, DisjointSets) {
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {3, 4}), 1.0);
}

TEST(JaccardTest, PartialOverlap) {
  // |inter| = 2, |union| = 4.
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2, 3}, {2, 3, 4}), 0.5);
}

TEST(JaccardTest, PaperJonesJonasExample) {
  // Section 5.1: d_J('JONES', 'JONAS') ~= 0.667 over unpadded bigram sets
  // {JO,ON,NE,ES} vs {JO,ON,NA,AS}: |inter| = 2, |union| = 6.
  Result<QGramExtractor> e =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  ASSERT_TRUE(e.ok());
  const double d =
      JaccardDistance(e.value().IndexSet("JONES"), e.value().IndexSet("JONAS"));
  EXPECT_NEAR(d, 2.0 / 3.0, 1e-9);
}

TEST(JaccardTest, PaperWashingtonExampleIsLengthSensitive) {
  // Section 5.1: the same single substitution gives d_J ~= 0.364 for the
  // longer 'WASHINGTON'/'WASHANGTON' pair — the Hamming space does not
  // have this length dependence.
  Result<QGramExtractor> e =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  ASSERT_TRUE(e.ok());
  const double d = JaccardDistance(e.value().IndexSet("WASHINGTON"),
                                   e.value().IndexSet("WASHANGTON"));
  EXPECT_NEAR(d, 4.0 / 11.0, 1e-9);
  // Both pairs are one substitution apart, yet their Jaccard distances
  // differ by a factor ~1.8 — the motivation of Section 5.1.
  EXPECT_LT(d, 0.5);
}

TEST(JaccardTest, SubsetRelation) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {1, 2, 3, 4}), 0.5);
}

TEST(JaccardTest, SimilarityPlusDistanceIsOne) {
  const std::vector<uint64_t> a{1, 5, 9, 12};
  const std::vector<uint64_t> b{5, 9, 40};
  EXPECT_DOUBLE_EQ(JaccardSimilarity(a, b) + JaccardDistance(a, b), 1.0);
}

}  // namespace
}  // namespace cbvlink
