#include "src/text/qgram.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace cbvlink {
namespace {

QGramExtractor MakeExtractor(const Alphabet& alphabet, size_t q, bool pad) {
  Result<QGramExtractor> extractor =
      QGramExtractor::Create(alphabet, {.q = q, .pad = pad});
  EXPECT_TRUE(extractor.ok()) << extractor.status().ToString();
  return std::move(extractor).value();
}

TEST(QGramExtractorTest, CreateRejectsZeroQ) {
  Result<QGramExtractor> r =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 0, .pad = false});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(QGramExtractorTest, CreateRejectsPaddingWithoutPadSymbol) {
  Result<QGramExtractor> r =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = true});
  EXPECT_FALSE(r.ok());
}

TEST(QGramExtractorTest, PaperFigure1Indexes) {
  // Figure 1: for s = 'JOHN', F('JO') = 248, F('OH') = 371, F('HN') = 195.
  const QGramExtractor e = MakeExtractor(Alphabet::Uppercase(), 2, false);
  EXPECT_EQ(e.GramIndex("JO").value(), 248u);
  EXPECT_EQ(e.GramIndex("OH").value(), 371u);
  EXPECT_EQ(e.GramIndex("HN").value(), 195u);
  std::vector<uint64_t> expected{195, 248, 371};
  EXPECT_EQ(e.IndexSet("JOHN"), expected);
}

TEST(QGramExtractorTest, IndexSpaceSizeIs676ForBigrams) {
  const QGramExtractor e = MakeExtractor(Alphabet::Uppercase(), 2, false);
  EXPECT_EQ(e.IndexSpaceSize(), 676u);
}

TEST(QGramExtractorTest, GramsUnpadded) {
  const QGramExtractor e = MakeExtractor(Alphabet::Uppercase(), 2, false);
  EXPECT_EQ(e.Grams("JONES"),
            (std::vector<std::string>{"JO", "ON", "NE", "ES"}));
  EXPECT_TRUE(e.Grams("J").empty());
  EXPECT_TRUE(e.Grams("").empty());
}

TEST(QGramExtractorTest, GramsPadded) {
  const QGramExtractor e = MakeExtractor(Alphabet::UppercasePadded(), 2, true);
  EXPECT_EQ(e.Grams("JONES"),
            (std::vector<std::string>{"_J", "JO", "ON", "NE", "ES", "S_"}));
  EXPECT_EQ(e.Grams("J"), (std::vector<std::string>{"_J", "J_"}));
  EXPECT_TRUE(e.Grams("").empty());
}

TEST(QGramExtractorTest, GramIndexRejectsWrongLengthAndForeignSymbols) {
  const QGramExtractor e = MakeExtractor(Alphabet::Uppercase(), 2, false);
  EXPECT_FALSE(e.GramIndex("JON").ok());
  EXPECT_FALSE(e.GramIndex("J").ok());
  EXPECT_FALSE(e.GramIndex("J9").ok());
}

TEST(QGramExtractorTest, IndexSetSortedUniqueBelowSpace) {
  const QGramExtractor e = MakeExtractor(Alphabet::Uppercase(), 2, false);
  // 'AAAA' has three occurrences of 'AA' but one index.
  EXPECT_EQ(e.IndexSet("AAAA"), (std::vector<uint64_t>{0}));
  const std::vector<uint64_t> set = e.IndexSet("WASHINGTON");
  EXPECT_TRUE(std::is_sorted(set.begin(), set.end()));
  EXPECT_EQ(std::adjacent_find(set.begin(), set.end()), set.end());
  for (uint64_t ind : set) EXPECT_LT(ind, e.IndexSpaceSize());
}

TEST(QGramExtractorTest, CountGramsMatchesGramsSize) {
  for (const bool pad : {false, true}) {
    const QGramExtractor e = MakeExtractor(
        pad ? Alphabet::UppercasePadded() : Alphabet::Uppercase(), 2, pad);
    for (const char* s : {"", "J", "JO", "JONES", "WASHINGTON"}) {
      EXPECT_EQ(e.CountGrams(s), e.Grams(s).size())
          << "pad=" << pad << " s=" << s;
    }
  }
}

TEST(QGramExtractorTest, UnpaddedCountIsLenMinusOne) {
  // The convention Table 3's b values follow: 'JOHN' -> 3 bigrams,
  // '2003' -> 3 bigrams.
  const QGramExtractor e = MakeExtractor(Alphabet::Alphanumeric(), 2, false);
  EXPECT_EQ(e.CountGrams("JOHN"), 3u);
  EXPECT_EQ(e.CountGrams("2003"), 3u);
  EXPECT_EQ(e.CountGrams("AB"), 1u);
  EXPECT_EQ(e.CountGrams("A"), 0u);
}

TEST(QGramExtractorTest, TrigramsWork) {
  const QGramExtractor e = MakeExtractor(Alphabet::Uppercase(), 3, false);
  EXPECT_EQ(e.IndexSpaceSize(), 26u * 26u * 26u);
  EXPECT_EQ(e.Grams("JONES"), (std::vector<std::string>{"JON", "ONE", "NES"}));
  // 'JON' = 9*676 + 14*26 + 13 = 6461.
  EXPECT_EQ(e.GramIndex("JON").value(), 6461u);
}

TEST(QGramExtractorTest, CreateRejectsOverflowingSpace) {
  // 39 symbols ^ 13 overflows 64 bits.
  Result<QGramExtractor> r = QGramExtractor::Create(Alphabet::Alphanumeric(),
                                                    {.q = 13, .pad = false});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(QGramExtractorTest, SubstituteChangesAtMost2qGrams) {
  // Property behind Section 5.1: one interior substitution changes at
  // most q bigrams in each string, so at most 2q differing indexes.
  const QGramExtractor e = MakeExtractor(Alphabet::Uppercase(), 2, false);
  const std::string s1 = "JONES";
  const std::string s2 = "JONAS";  // substitute E->A
  const std::vector<uint64_t> u1 = e.IndexSet(s1);
  const std::vector<uint64_t> u2 = e.IndexSet(s2);
  std::vector<uint64_t> sym_diff;
  std::set_symmetric_difference(u1.begin(), u1.end(), u2.begin(), u2.end(),
                                std::back_inserter(sym_diff));
  EXPECT_LE(sym_diff.size(), 4u);
  EXPECT_EQ(sym_diff.size(), 4u);  // 'NE','ES' vs 'NA','AS'
}

}  // namespace
}  // namespace cbvlink
