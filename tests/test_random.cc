#include "src/common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace cbvlink {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(99);
  const uint64_t first = rng();
  rng();
  rng.Seed(99);
  EXPECT_EQ(rng(), first);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Below(7), 7u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.Below(1), 0u);
  }
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, BelowIsApproximatelyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Below(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.06);
  }
}

TEST(RngTest, UniformInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.Uniform(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(31);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.01);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(41);
  int hits = 0;
  for (int i = 0; i < 50000; ++i) {
    if (rng.NextBool(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 50000.0, 0.3, 0.01);
  Rng rng2(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng2.NextBool(0.0));
    EXPECT_TRUE(rng2.NextBool(1.0));
  }
}

TEST(RngTest, GaussianMomentsMatchStandardNormal) {
  Rng rng(55);
  constexpr int kDraws = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double v = rng.NextGaussian();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kDraws;
  const double var = sum_sq / kDraws - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(SplitMix64Test, AdvancesState) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  const uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(state, 0u);
}

TEST(SplitMix64Test, KnownVector) {
  // Reference values for seed 0 from the SplitMix64 reference
  // implementation.
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(state), 0x6e789e6aa1b965f4ULL);
}

}  // namespace
}  // namespace cbvlink
