// Wire-protocol tests for the network serving tier (src/net/protocol.h):
// frame encode/decode under fragmentation and corruption, the payload
// codecs, the HTTP/1.1 request parser and response renderer, the JSON
// record mapping, and host:port parsing.

#include "src/net/protocol.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/net/client.h"
#include "src/net/status_map.h"

namespace cbvlink {
namespace net {
namespace {

TEST(NetProtocolTest, FrameRoundTrip) {
  std::string wire;
  EncodeFrame(MsgType::kMatch, "hello", &wire);
  EncodeFrame(MsgType::kPing, "", &wire);
  EncodeFrame(MsgType::kStatsJson, std::string(1000, 'x'), &wire);

  FrameDecoder decoder;
  decoder.Feed(wire);
  Frame frame;
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kMatch);
  EXPECT_EQ(frame.payload, "hello");
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kPing);
  EXPECT_TRUE(frame.payload.empty());
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kStatsJson);
  EXPECT_EQ(frame.payload.size(), 1000u);
  EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
}

TEST(NetProtocolTest, FrameDecoderHandlesByteAtATimeDelivery) {
  std::string wire;
  EncodeFrame(MsgType::kInsert, "payload bytes", &wire);

  FrameDecoder decoder;
  Frame frame;
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    decoder.Feed(std::string_view(wire.data() + i, 1));
    ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kNeedMore)
        << "after byte " << i;
  }
  decoder.Feed(std::string_view(wire.data() + wire.size() - 1, 1));
  ASSERT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kInsert);
  EXPECT_EQ(frame.payload, "payload bytes");
}

TEST(NetProtocolTest, FrameDecoderCorruptionIsTerminal) {
  // A flipped payload byte fails the CRC.
  {
    std::string wire;
    EncodeFrame(MsgType::kMatch, "hello", &wire);
    wire[6] = static_cast<char>(wire[6] ^ 0x01);
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame frame;
    EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kCorrupt);
    EXPECT_FALSE(decoder.error().ok());
    // Terminal: more bytes do not revive the decoder.
    std::string good;
    EncodeFrame(MsgType::kPing, "", &good);
    decoder.Feed(good);
    EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kCorrupt);
  }
  // An over-cap length is rejected before any allocation.
  {
    std::string wire;
    const uint32_t huge = kMaxFramePayload + 1;
    for (int i = 0; i < 4; ++i) {
      wire.push_back(static_cast<char>((huge >> (8 * i)) & 0xff));
    }
    wire.push_back('\x02');
    FrameDecoder decoder;
    decoder.Feed(wire);
    Frame frame;
    EXPECT_EQ(decoder.Pop(&frame), FrameDecoder::Next::kCorrupt);
  }
}

TEST(NetProtocolTest, PairsCodecRoundTrip) {
  const std::vector<IdPair> pairs = {{1, 100}, {2, 200}, {UINT64_MAX, 0}};
  std::string payload;
  EncodePairs(pairs, &payload);
  std::vector<IdPair> decoded;
  ASSERT_TRUE(DecodePairs(payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), pairs.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(decoded[i].a_id, pairs[i].a_id);
    EXPECT_EQ(decoded[i].b_id, pairs[i].b_id);
  }

  // Empty round-trips; truncated and padded payloads are rejected.
  payload.clear();
  EncodePairs({}, &payload);
  ASSERT_TRUE(DecodePairs(payload, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
  EXPECT_FALSE(DecodePairs("abc", &decoded).ok());
  payload.push_back('x');
  EXPECT_FALSE(DecodePairs(payload, &decoded).ok());
}

TEST(NetProtocolTest, ErrorPayloadPreservesCodeAndMessage) {
  std::string payload;
  EncodeErrorPayload(Status::ResourceExhausted("queue full"), &payload);
  Status decoded = Status::OK();
  ASSERT_TRUE(DecodeErrorPayload(payload, &decoded).ok());
  EXPECT_EQ(decoded.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded.message(), "queue full");

  EXPECT_FALSE(DecodeErrorPayload("short", &decoded).ok());
}

TEST(NetProtocolTest, JournalCodecsRoundTrip) {
  std::string fetch;
  EncodeJournalFetch(7, 12345, &fetch);
  uint64_t epoch = 0;
  uint64_t offset = 0;
  ASSERT_TRUE(DecodeJournalFetch(fetch, &epoch, &offset).ok());
  EXPECT_EQ(epoch, 7u);
  EXPECT_EQ(offset, 12345u);
  EXPECT_FALSE(DecodeJournalFetch("bad", &epoch, &offset).ok());

  std::string data;
  EncodeJournalData(3, 999, "raw frame bytes", &data);
  uint64_t end_offset = 0;
  std::string frames;
  ASSERT_TRUE(DecodeJournalData(data, &epoch, &end_offset, &frames).ok());
  EXPECT_EQ(epoch, 3u);
  EXPECT_EQ(end_offset, 999u);
  EXPECT_EQ(frames, "raw frame bytes");
  EXPECT_FALSE(DecodeJournalData("tooshort", &epoch, &end_offset, &frames).ok());
}

TEST(NetProtocolTest, HttpParserHandlesPipelinedKeepAliveRequests) {
  HttpParser parser;
  parser.Feed(
      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
      "POST /match HTTP/1.1\r\nContent-Length: 4\r\n\r\nbody");
  HttpRequest request;
  ASSERT_EQ(parser.Pop(&request), HttpParser::Next::kRequest);
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_TRUE(request.keep_alive);
  EXPECT_TRUE(request.body.empty());
  ASSERT_EQ(parser.Pop(&request), HttpParser::Next::kRequest);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/match");
  EXPECT_EQ(request.body, "body");
  EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kNeedMore);
}

TEST(NetProtocolTest, HttpParserIncrementalBodyDelivery) {
  HttpParser parser;
  HttpRequest request;
  parser.Feed("POST /insert HTTP/1.1\r\nContent-Le");
  EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kNeedMore);
  parser.Feed("ngth: 10\r\nConnection: close\r\n\r\n12345");
  EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kNeedMore);
  parser.Feed("67890");
  ASSERT_EQ(parser.Pop(&request), HttpParser::Next::kRequest);
  EXPECT_EQ(request.body, "1234567890");
  EXPECT_FALSE(request.keep_alive);
}

TEST(NetProtocolTest, HttpParserRejectsBadInput) {
  // Malformed request line.
  {
    HttpParser parser;
    parser.Feed("NONSENSE\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
  // Chunked transfer encoding is unsupported.
  {
    HttpParser parser;
    parser.Feed("POST /match HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
  // Non-numeric and oversized Content-Length.
  {
    HttpParser parser;
    parser.Feed("POST /match HTTP/1.1\r\nContent-Length: nan\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
  {
    HttpParser parser;
    parser.Feed("POST /match HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
  // Empty Content-Length value is rejected, not parsed as 0.
  {
    HttpParser parser;
    parser.Feed("POST /match HTTP/1.1\r\nContent-Length:\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
  {
    HttpParser parser;
    parser.Feed("POST /match HTTP/1.1\r\nContent-Length: \r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
  // A header that never terminates trips the size cap instead of
  // buffering forever.
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.1\r\n");
    parser.Feed("X-Junk: " + std::string(20u << 10, 'a'));
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
  // ...and so does an oversized header whose terminator arrives in the
  // same Feed.
  {
    HttpParser parser;
    parser.Feed("GET / HTTP/1.1\r\nX-Junk: " + std::string(20u << 10, 'a') +
                "\r\n\r\n");
    HttpRequest request;
    EXPECT_EQ(parser.Pop(&request), HttpParser::Next::kBad);
  }
}

TEST(NetProtocolTest, HttpResponseRendering) {
  const std::string ok = HttpResponse(200, "text/plain", "ok\n", true);
  EXPECT_NE(ok.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(ok.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(ok.find("Retry-After"), std::string::npos);
  EXPECT_EQ(ok.substr(ok.size() - 3), "ok\n");

  const std::string shed = HttpResponse(429, "application/json", "{}", false);
  EXPECT_NE(shed.find("HTTP/1.1 429 Too Many Requests\r\n"), std::string::npos);
  EXPECT_NE(shed.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(shed.find("Connection: close\r\n"), std::string::npos);
}

TEST(NetProtocolTest, ParseJsonRecordAcceptsTheRequestShape) {
  Record record;
  ASSERT_TRUE(ParseJsonRecord(
                  R"({"id": 42, "fields": ["JOHN", "SMITH"]})", &record)
                  .ok());
  EXPECT_EQ(record.id, 42u);
  ASSERT_EQ(record.fields.size(), 2u);
  EXPECT_EQ(record.fields[0], "JOHN");
  EXPECT_EQ(record.fields[1], "SMITH");

  // Keys in any order; id optional; empty fields; escapes.
  ASSERT_TRUE(ParseJsonRecord(
                  R"({"fields": ["A\"B", "A"], "id": 1})", &record)
                  .ok());
  EXPECT_EQ(record.fields[0], "A\"B");
  EXPECT_EQ(record.fields[1], "A");
  ASSERT_TRUE(ParseJsonRecord(R"({"fields": []})", &record).ok());
  EXPECT_EQ(record.id, 0u);
  EXPECT_TRUE(record.fields.empty());
}

TEST(NetProtocolTest, ParseJsonRecordIsStrict) {
  Record record;
  EXPECT_FALSE(ParseJsonRecord("", &record).ok());
  EXPECT_FALSE(ParseJsonRecord("[]", &record).ok());
  EXPECT_FALSE(ParseJsonRecord(R"({"id": -1})", &record).ok());
  EXPECT_FALSE(ParseJsonRecord(R"({"unknown": 1})", &record).ok());
  EXPECT_FALSE(ParseJsonRecord(R"({"fields": [1, 2]})", &record).ok());
  EXPECT_FALSE(ParseJsonRecord(R"({"fields": ["a"} )", &record).ok());
  EXPECT_FALSE(ParseJsonRecord(R"({"id": 1} trailing)", &record).ok());
}

TEST(NetProtocolTest, PairsAndStatusJson) {
  EXPECT_EQ(PairsToJson({}), "{\"pairs\":[]}");
  EXPECT_EQ(PairsToJson({{1, 2}, {3, 4}}), "{\"pairs\":[[1,2],[3,4]]}");

  const std::string json = StatusToJson(Status::InvalidArgument("bad \"x\""));
  EXPECT_NE(json.find("\"code\":\"InvalidArgument\""), std::string::npos);
  EXPECT_NE(json.find("bad \\\"x\\\""), std::string::npos);
}

TEST(NetProtocolTest, HttpCodeMapping) {
  EXPECT_EQ(HttpCodeFor(Status::OK()), 200);
  EXPECT_EQ(HttpCodeFor(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpCodeFor(Status::FailedPrecondition("x")), 403);
  EXPECT_EQ(HttpCodeFor(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpCodeFor(Status::ResourceExhausted("x")), 429);
  EXPECT_EQ(HttpCodeFor(Status::Internal("x")), 500);
  EXPECT_EQ(HttpCodeFor(Status::IOError("x")), 500);
}

TEST(NetProtocolTest, ParseHostPort) {
  std::string host;
  uint16_t port = 0;
  ASSERT_TRUE(ParseHostPort("10.1.2.3:8080", &host, &port).ok());
  EXPECT_EQ(host, "10.1.2.3");
  EXPECT_EQ(port, 8080);
  ASSERT_TRUE(ParseHostPort(":9000", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 9000);
  ASSERT_TRUE(ParseHostPort("7000", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7000);
  // Port 0 is accepted (ephemeral bind); Connect rejects it instead.
  ASSERT_TRUE(ParseHostPort("127.0.0.1:0", &host, &port).ok());
  EXPECT_EQ(port, 0);

  EXPECT_FALSE(ParseHostPort("host:", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:abc", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("host:70000", &host, &port).ok());
  EXPECT_FALSE(ParseHostPort("", &host, &port).ok());
}

TEST(NetProtocolTest, TraceContextPayloadRoundTrip) {
  std::string payload;
  EncodeTraceContextPayload(0x1122334455667788ULL, 42, &payload);
  uint64_t trace_id = 0;
  uint64_t parent = 0;
  ASSERT_TRUE(DecodeTraceContextPayload(payload, &trace_id, &parent).ok());
  EXPECT_EQ(trace_id, 0x1122334455667788ULL);
  EXPECT_EQ(parent, 42u);

  // Zero trace id means "untraced" everywhere: rejected on decode.
  EncodeTraceContextPayload(0, 0, &payload);
  EXPECT_FALSE(DecodeTraceContextPayload(payload, &trace_id, &parent).ok());
  // Truncated payloads are rejected, not misread.
  EncodeTraceContextPayload(7, 8, &payload);
  payload.resize(payload.size() - 1);
  EXPECT_FALSE(DecodeTraceContextPayload(payload, &trace_id, &parent).ok());
  EXPECT_FALSE(DecodeTraceContextPayload("", &trace_id, &parent).ok());
}

TEST(NetProtocolTest, ServerTimingPayloadRoundTrip) {
  std::vector<StageTiming> stages = {
      {TimingStage::kQueue, 12},    {TimingStage::kEncode, 3},
      {TimingStage::kCandidates, 4500}, {TimingStage::kCompare, 90},
      {TimingStage::kInsert, 700},  {TimingStage::kJournal, 55},
      {TimingStage::kTotal, 5360},
  };
  std::string payload;
  EncodeServerTimingPayload(0xfeedULL, stages, &payload);
  uint64_t trace_id = 0;
  std::vector<StageTiming> decoded;
  ASSERT_TRUE(DecodeServerTimingPayload(payload, &trace_id, &decoded).ok());
  EXPECT_EQ(trace_id, 0xfeedULL);
  ASSERT_EQ(decoded.size(), stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    EXPECT_EQ(decoded[i].stage, stages[i].stage);
    EXPECT_EQ(decoded[i].dur_us, stages[i].dur_us);
  }

  payload.resize(payload.size() - 2);  // truncated entry list
  EXPECT_FALSE(DecodeServerTimingPayload(payload, &trace_id, &decoded).ok());
}

TEST(NetProtocolTest, ServerTimingHeaderRoundTrip) {
  const std::vector<StageTiming> stages = {
      {TimingStage::kQueue, 123},     {TimingStage::kCandidates, 4500},
      {TimingStage::kInsert, 250},    {TimingStage::kTotal, 4873},
  };
  const std::string value = ServerTimingHeaderValue(stages);
  // Fractional milliseconds per the Server-Timing spec.
  EXPECT_NE(value.find("queue;dur=0.123"), std::string::npos) << value;
  EXPECT_NE(value.find("candidates;dur=4.500"), std::string::npos) << value;
  EXPECT_NE(value.find("insert;dur=0.250"), std::string::npos) << value;

  const std::vector<StageTiming> parsed = ParseServerTimingHeaderValue(value);
  ASSERT_EQ(parsed.size(), stages.size());
  for (size_t i = 0; i < stages.size(); ++i) {
    EXPECT_EQ(parsed[i].stage, stages[i].stage);
    EXPECT_EQ(parsed[i].dur_us, stages[i].dur_us);
  }
  // Unknown tokens are skipped, not errors.
  EXPECT_TRUE(ParseServerTimingHeaderValue("cache;dur=1.0, x").empty());
  EXPECT_TRUE(ParseServerTimingHeaderValue("").empty());
}

TEST(NetProtocolTest, TimingStageNamesAreStableTokens) {
  EXPECT_STREQ(TimingStageName(TimingStage::kQueue), "queue");
  EXPECT_STREQ(TimingStageName(TimingStage::kEncode), "encode");
  EXPECT_STREQ(TimingStageName(TimingStage::kCandidates), "candidates");
  EXPECT_STREQ(TimingStageName(TimingStage::kCompare), "compare");
  EXPECT_STREQ(TimingStageName(TimingStage::kInsert), "insert");
  EXPECT_STREQ(TimingStageName(TimingStage::kJournal), "journal");
  EXPECT_STREQ(TimingStageName(TimingStage::kTotal), "total");
}

TEST(NetProtocolTest, TraceIdHexRoundTrip) {
  EXPECT_EQ(TraceIdHex(0x0123456789abcdefULL), "0123456789abcdef");
  EXPECT_EQ(ParseTraceIdHex("0123456789abcdef"), 0x0123456789abcdefULL);
  EXPECT_EQ(ParseTraceIdHex("ABCDEF"), 0xabcdefULL);  // case-insensitive
  EXPECT_EQ(ParseTraceIdHex(""), 0u);
  EXPECT_EQ(ParseTraceIdHex("xyz"), 0u);
  EXPECT_EQ(ParseTraceIdHex("00112233445566778899"), 0u);  // too long
  for (uint64_t id : {1ULL, 0xdeadbeefULL, ~0ULL}) {
    EXPECT_EQ(ParseTraceIdHex(TraceIdHex(id)), id);
  }
}

TEST(NetProtocolTest, HttpParserExtractsTraceHeaders) {
  HttpParser parser;
  parser.Feed(
      "POST /match HTTP/1.1\r\nHost: t\r\n"
      "X-Trace-Id: 00000000000000ff\r\nX-Trace-Parent: 0a\r\n"
      "Content-Length: 2\r\n\r\n{}");
  HttpRequest request;
  ASSERT_EQ(parser.Pop(&request), HttpParser::Next::kRequest);
  EXPECT_EQ(request.trace_id, 0xffu);
  EXPECT_EQ(request.trace_parent, 0xau);

  // Trace state must reset between pipelined requests.
  parser.Feed("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  ASSERT_EQ(parser.Pop(&request), HttpParser::Next::kRequest);
  EXPECT_EQ(request.trace_id, 0u);
  EXPECT_EQ(request.trace_parent, 0u);

  // Malformed ids degrade to untraced, not to a parse error.
  parser.Feed("GET / HTTP/1.1\r\nHost: t\r\nX-Trace-Id: nope\r\n\r\n");
  ASSERT_EQ(parser.Pop(&request), HttpParser::Next::kRequest);
  EXPECT_EQ(request.trace_id, 0u);
}

TEST(NetProtocolTest, HttpResponseRendersTraceExtras) {
  HttpResponseExtras extras;
  extras.server_timing = "queue;dur=0.010, total;dur=1.500";
  extras.trace_id = "00000000000000ff";
  const std::string response =
      HttpResponse(200, "application/json", "{}", /*keep_alive=*/true,
                   /*retry_after_s=*/0, extras);
  EXPECT_NE(
      response.find("Server-Timing: queue;dur=0.010, total;dur=1.500\r\n"),
      std::string::npos)
      << response;
  EXPECT_NE(response.find("X-Trace-Id: 00000000000000ff\r\n"),
            std::string::npos)
      << response;

  // Empty extras add no headers (byte-identical to the plain overload).
  EXPECT_EQ(HttpResponse(200, "application/json", "{}", true, 0,
                         HttpResponseExtras{}),
            HttpResponse(200, "application/json", "{}", true));
}

}  // namespace
}  // namespace net
}  // namespace cbvlink
