#include "src/datagen/corpora.h"

#include <gtest/gtest.h>

#include <cctype>

namespace cbvlink {
namespace {

void ExpectUppercasePool(const std::vector<std::string>& pool,
                         bool allow_space = false) {
  EXPECT_GT(pool.size(), 10u);
  for (const std::string& word : pool) {
    EXPECT_FALSE(word.empty());
    for (char c : word) {
      const bool ok = (c >= 'A' && c <= 'Z') || (allow_space && c == ' ');
      EXPECT_TRUE(ok) << "word '" << word << "' char '" << c << "'";
    }
  }
}

TEST(CorporaTest, PoolsAreWellFormed) {
  ExpectUppercasePool(FirstNamePool());
  ExpectUppercasePool(LastNamePool());
  ExpectUppercasePool(StreetNamePool(), /*allow_space=*/true);
  ExpectUppercasePool(StreetTypePool());
  ExpectUppercasePool(TownPool(), /*allow_space=*/true);
  ExpectUppercasePool(TitleWordPool());
}

TEST(CorporaTest, PoolsHaveLengthDiversity) {
  // Calibration needs both short and long entries around the targets.
  const auto spread = [](const std::vector<std::string>& pool) {
    size_t min_len = 1000;
    size_t max_len = 0;
    for (const std::string& w : pool) {
      min_len = std::min(min_len, w.size());
      max_len = std::max(max_len, w.size());
    }
    return std::pair(min_len, max_len);
  };
  EXPECT_LT(spread(FirstNamePool()).first, 5u);
  EXPECT_GT(spread(FirstNamePool()).second, 8u);
  EXPECT_LT(spread(TownPool()).first, 7u);
  EXPECT_GT(spread(TownPool()).second, 10u);
}

TEST(CalibratedPoolTest, RejectsEmptyCorpus) {
  EXPECT_FALSE(CalibratedPool::Create(nullptr, 5.0).ok());
  const std::vector<std::string> empty;
  EXPECT_FALSE(CalibratedPool::Create(&empty, 5.0).ok());
}

TEST(CalibratedPoolTest, ExpectedLengthMatchesTarget) {
  for (const double target : {5.0, 6.1, 7.2, 8.2}) {
    Result<CalibratedPool> pool = CalibratedPool::Create(&TownPool(), target);
    ASSERT_TRUE(pool.ok());
    EXPECT_NEAR(pool.value().ExpectedLength(), target, 1e-9) << target;
  }
}

TEST(CalibratedPoolTest, EmpiricalMeanConvergesToTarget) {
  const double target = 6.1;
  Result<CalibratedPool> pool =
      CalibratedPool::Create(&FirstNamePool(), target);
  ASSERT_TRUE(pool.ok());
  Rng rng(42);
  double sum = 0.0;
  constexpr int kDraws = 60000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(pool.value().Sample(rng).size());
  }
  EXPECT_NEAR(sum / kDraws, target, 0.06);
}

TEST(CalibratedPoolTest, UnreachableTargetDegradesToUniform) {
  const std::vector<std::string> pool{"AA", "BB", "CC"};
  // Target above every word's length.
  Result<CalibratedPool> high = CalibratedPool::Create(&pool, 10.0);
  ASSERT_TRUE(high.ok());
  EXPECT_DOUBLE_EQ(high.value().ExpectedLength(), 2.0);
  // Target below every word's length.
  Result<CalibratedPool> low = CalibratedPool::Create(&pool, 1.0);
  ASSERT_TRUE(low.ok());
  EXPECT_DOUBLE_EQ(low.value().ExpectedLength(), 2.0);
  Rng rng(1);
  EXPECT_EQ(low.value().Sample(rng).size(), 2u);
}

TEST(CalibratedPoolTest, SamplesComeFromThePool) {
  Result<CalibratedPool> pool = CalibratedPool::Create(&LastNamePool(), 6.0);
  ASSERT_TRUE(pool.ok());
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const std::string& w = pool.value().Sample(rng);
    EXPECT_NE(std::find(LastNamePool().begin(), LastNamePool().end(), w),
              LastNamePool().end());
  }
}

}  // namespace
}  // namespace cbvlink
