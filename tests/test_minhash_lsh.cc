#include "src/lsh/minhash_lsh.h"

#include <gtest/gtest.h>

#include "src/metrics/jaccard.h"

namespace cbvlink {
namespace {

TEST(MinHashLshFamilyTest, CreateValidation) {
  Rng rng(1);
  EXPECT_FALSE(MinHashLshFamily::Create(0, 3, 676, rng).ok());
  EXPECT_FALSE(MinHashLshFamily::Create(5, 0, 676, rng).ok());
  EXPECT_FALSE(MinHashLshFamily::Create(5, 3, 0, rng).ok());
  Result<MinHashLshFamily> family = MinHashLshFamily::Create(5, 3, 676, rng);
  ASSERT_TRUE(family.ok());
  EXPECT_EQ(family.value().K(), 5u);
  EXPECT_EQ(family.value().L(), 3u);
}

TEST(MinHashLshFamilyTest, EqualSetsEqualKeys) {
  Rng rng(2);
  const MinHashLshFamily family =
      MinHashLshFamily::Create(5, 4, 676, rng).value();
  const std::vector<uint64_t> set{3, 99, 204, 671};
  for (size_t l = 0; l < 4; ++l) {
    EXPECT_EQ(family.Key(set, l), family.Key(set, l));
  }
  EXPECT_EQ(family.Keys(set), family.Keys(set));
}

TEST(MinHashLshFamilyTest, KeysDifferAcrossGroups) {
  Rng rng(3);
  const MinHashLshFamily family =
      MinHashLshFamily::Create(5, 8, 676, rng).value();
  const std::vector<uint64_t> set{3, 99, 204};
  const std::vector<uint64_t> keys = family.Keys(set);
  // Different groups use independent permutations; at least some keys
  // must differ.
  bool any_diff = false;
  for (size_t l = 1; l < keys.size(); ++l) {
    if (keys[l] != keys[0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MinHashLshFamilyTest, EmptySetsBlockTogether) {
  Rng rng(4);
  const MinHashLshFamily family =
      MinHashLshFamily::Create(5, 2, 676, rng).value();
  EXPECT_EQ(family.Key({}, 0), family.Key({}, 0));
  EXPECT_NE(family.Key({}, 0), family.Key({}, 1));  // still per-group
  // Empty vs non-empty should (virtually) never collide.
  EXPECT_NE(family.Key({}, 0), family.Key({1, 2, 3}, 0));
}

TEST(MinHashLshFamilyTest, CollisionRateTracksJaccardSimilarity) {
  // Pr[base functions agree] = Jaccard similarity; with K = 1 the key
  // collision rate over many independent families estimates it.
  Rng rng(5);
  const std::vector<uint64_t> a{1, 2, 3, 4, 5, 6};
  const std::vector<uint64_t> b{4, 5, 6, 7, 8, 9};  // similarity 3/9
  const double sim = JaccardSimilarity(a, b);
  ASSERT_NEAR(sim, 1.0 / 3.0, 1e-12);

  constexpr size_t kTrials = 6000;
  size_t collisions = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const MinHashLshFamily family =
        MinHashLshFamily::Create(1, 1, 676, rng).value();
    if (family.Key(a, 0) == family.Key(b, 0)) ++collisions;
  }
  // Linear permutations are pairwise independent, not min-wise
  // independent, so a small systematic bias on tiny sets is expected —
  // allow a wider band than pure sampling noise.
  EXPECT_NEAR(static_cast<double>(collisions) / kTrials, sim, 0.07);
}

TEST(MinHashLshFamilyTest, CompositeKeysAreMoreSelective) {
  Rng rng(6);
  const std::vector<uint64_t> a{1, 2, 3, 4, 5, 6};
  const std::vector<uint64_t> b{4, 5, 6, 7, 8, 9};
  constexpr size_t kTrials = 2000;
  size_t collide_k1 = 0;
  size_t collide_k5 = 0;
  for (size_t t = 0; t < kTrials; ++t) {
    const MinHashLshFamily f1 = MinHashLshFamily::Create(1, 1, 676, rng).value();
    const MinHashLshFamily f5 = MinHashLshFamily::Create(5, 1, 676, rng).value();
    if (f1.Key(a, 0) == f1.Key(b, 0)) ++collide_k1;
    if (f5.Key(a, 0) == f5.Key(b, 0)) ++collide_k5;
  }
  EXPECT_GT(collide_k1, collide_k5 * 2);
}

TEST(MinHashLshFamilyTest, IdenticalSetsAlwaysCollide) {
  Rng rng(7);
  const MinHashLshFamily family =
      MinHashLshFamily::Create(5, 10, 676, rng).value();
  const std::vector<uint64_t> set{10, 20, 30};
  std::vector<uint64_t> copy = set;
  for (size_t l = 0; l < 10; ++l) {
    EXPECT_EQ(family.Key(set, l), family.Key(copy, l));
  }
}

}  // namespace
}  // namespace cbvlink
