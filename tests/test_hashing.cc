#include "src/common/hashing.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cbvlink {
namespace {

TEST(PairwiseHashTest, StaysInRange) {
  Rng rng(1);
  const PairwiseHash g = PairwiseHash::Random(rng, 15);
  for (uint64_t x = 0; x < 5000; ++x) {
    EXPECT_LT(g(x), 15u);
  }
}

TEST(PairwiseHashTest, Deterministic) {
  const PairwiseHash g(17, 23, 100);
  EXPECT_EQ(g(42), g(42));
  EXPECT_EQ(g(42), ((17 * 42 + 23) % kHashPrime) % 100);
}

TEST(PairwiseHashTest, RandomMembersDiffer) {
  Rng rng(2);
  const PairwiseHash g1 = PairwiseHash::Random(rng, 1000);
  const PairwiseHash g2 = PairwiseHash::Random(rng, 1000);
  int diffs = 0;
  for (uint64_t x = 0; x < 100; ++x) {
    if (g1(x) != g2(x)) ++diffs;
  }
  EXPECT_GT(diffs, 90);
}

TEST(PairwiseHashTest, CoefficientsInOpenInterval) {
  Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const PairwiseHash g = PairwiseHash::Random(rng, 64);
    EXPECT_GT(g.a(), 0u);
    EXPECT_LT(g.a(), kHashPrime);
    EXPECT_GT(g.b(), 0u);
    EXPECT_LT(g.b(), kHashPrime);
  }
}

TEST(PairwiseHashTest, ApproximatelyUniformOverRange) {
  Rng rng(4);
  const PairwiseHash g = PairwiseHash::Random(rng, 16);
  std::vector<int> counts(16, 0);
  // Sequential inputs stress the linear structure of the hash.
  for (uint64_t x = 0; x < 16000; ++x) ++counts[g(x)];
  for (int c : counts) EXPECT_NEAR(c, 1000, 350);
}

TEST(PairwiseHashTest, CollisionRateNearBirthdayBound) {
  // Hashing b = 20 distinct values into m = 68 slots (the Address row of
  // Table 3) should produce close to the Lemma 1 expectation of ~2.7
  // collisions on average.
  Rng rng(5);
  double total_collisions = 0.0;
  constexpr int kTrials = 400;
  for (int t = 0; t < kTrials; ++t) {
    const PairwiseHash g = PairwiseHash::Random(rng, 68);
    std::set<uint64_t> slots;
    for (uint64_t x = 0; x < 20; ++x) slots.insert(g(x * 977 + t));
    total_collisions += 20.0 - static_cast<double>(slots.size());
  }
  const double mean = total_collisions / kTrials;
  EXPECT_GT(mean, 1.2);
  EXPECT_LT(mean, 4.5);
}

TEST(Mix64Test, InjectiveOnSmallSample) {
  std::set<uint64_t> outputs;
  for (uint64_t x = 0; x < 10000; ++x) outputs.insert(Mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);
}

TEST(HashCombineTest, OrderSensitive) {
  const uint64_t ab = HashCombine(HashCombine(0, 1), 2);
  const uint64_t ba = HashCombine(HashCombine(0, 2), 1);
  EXPECT_NE(ab, ba);
}

TEST(BloomHashFamilyTest, ProducesKPositionsInRange) {
  const BloomHashFamily family(15, 500, 99);
  std::vector<size_t> positions;
  family.Positions(1234, &positions);
  EXPECT_EQ(positions.size(), 15u);
  for (size_t p : positions) EXPECT_LT(p, 500u);
}

TEST(BloomHashFamilyTest, DeterministicPerElement) {
  const BloomHashFamily family(15, 500, 99);
  std::vector<size_t> p1, p2;
  family.Positions(42, &p1);
  family.Positions(42, &p2);
  EXPECT_EQ(p1, p2);
}

TEST(BloomHashFamilyTest, DifferentSeedsGiveDifferentPositions) {
  const BloomHashFamily f1(15, 500, 1);
  const BloomHashFamily f2(15, 500, 2);
  std::vector<size_t> p1, p2;
  f1.Positions(42, &p1);
  f2.Positions(42, &p2);
  EXPECT_NE(p1, p2);
}

TEST(BloomHashFamilyTest, AppendsWithoutClearing) {
  const BloomHashFamily family(3, 100, 7);
  std::vector<size_t> positions;
  family.Positions(1, &positions);
  family.Positions(2, &positions);
  EXPECT_EQ(positions.size(), 6u);
}

TEST(HashBytesTest, DeterministicAndSeedSensitive) {
  const char data[] = "JONES";
  EXPECT_EQ(HashBytes(data, 5), HashBytes(data, 5));
  EXPECT_NE(HashBytes(data, 5, 1), HashBytes(data, 5, 2));
  const char other[] = "JONAS";
  EXPECT_NE(HashBytes(data, 5), HashBytes(other, 5));
}

}  // namespace
}  // namespace cbvlink
