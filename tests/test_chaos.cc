// Chaos harness: server <-> client and leader <-> replica traffic routed
// through the in-process fault-injection proxy (src/net/faultproxy.h)
// under each fault scenario, asserting the resilience invariants:
//
//   * no acked insert is ever lost, whatever the connection fate;
//   * no client gets stuck — deadlines bound every failure mode;
//   * match results are byte-identical to a fault-free run (CRC framing
//     turns corruption into retries, never into wrong answers);
//   * a replica converges after a partition heals, and its circuit
//     breaker walks closed -> open -> half_open -> closed.
//
// Also unit-level coverage for the Deadline/Backoff primitives and the
// FaultSpec grammar the proxy CLI shares.

#include "src/net/faultproxy.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/backoff.h"
#include "src/common/deadline.h"
#include "src/datagen/generators.h"
#include "src/io/journal.h"
#include "src/net/client.h"
#include "src/net/replication.h"
#include "src/net/server.h"
#include "src/service/linkage_service.h"

namespace cbvlink {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

int64_t MsSince(Clock::time_point begin) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               begin)
      .count();
}

// --- primitives -----------------------------------------------------------

TEST(DeadlineTest, InfiniteNeverExpiresAndDefaultIsInfinite) {
  Deadline d;
  EXPECT_TRUE(d.IsInfinite());
  EXPECT_FALSE(d.Expired());
  EXPECT_GE(d.RemainingMs(), Deadline::kInfiniteMs);
  EXPECT_TRUE(Deadline::Infinite().IsInfinite());
}

TEST(DeadlineTest, AfterMsExpiresAndClampsRemaining) {
  Deadline d = Deadline::AfterMs(30);
  EXPECT_FALSE(d.IsInfinite());
  EXPECT_GT(d.RemainingMs(), 0);
  EXPECT_LE(d.RemainingMs(), 30);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  EXPECT_TRUE(d.Expired());
  EXPECT_EQ(d.RemainingMs(), 0);  // clamped, never negative
}

TEST(DeadlineTest, MinPicksTheEarlierAndHandlesInfinite) {
  const Deadline a = Deadline::AfterMs(10);
  const Deadline b = Deadline::AfterMs(5000);
  EXPECT_EQ(Deadline::Min(a, b).when(), a.when());
  EXPECT_EQ(Deadline::Min(a, Deadline::Infinite()).when(), a.when());
  EXPECT_TRUE(Deadline::Min(Deadline::Infinite(), Deadline::Infinite())
                  .IsInfinite());
}

TEST(BackoffTest, FirstDelayIsBaseThenDecorrelatedJitterUpToCap) {
  BackoffOptions options;
  options.base_ms = 20;
  options.max_ms = 200;
  options.seed = 7;
  Backoff backoff(options);
  EXPECT_EQ(backoff.NextDelayMs(), 20);
  for (int i = 0; i < 100; ++i) {
    const int64_t delay = backoff.NextDelayMs();
    EXPECT_GE(delay, 20);
    EXPECT_LE(delay, 200);
  }
  EXPECT_EQ(backoff.failures(), 101);
  backoff.Reset();
  EXPECT_EQ(backoff.failures(), 0);
  EXPECT_EQ(backoff.NextDelayMs(), 20);  // reset restarts the ladder
}

TEST(BackoffTest, DeterministicForAFixedSeed) {
  BackoffOptions options;
  options.seed = 99;
  Backoff a(options), b(options);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextDelayMs(), b.NextDelayMs());
}

TEST(FaultSpecTest, ParsesTheSharedGrammar) {
  FaultSpec spec;
  ASSERT_TRUE(spec.Parse("latency=5;jitter=2;bandwidth=65536;slice=1;"
                         "corrupt=1000;reset_after=4096;blackhole=1;seed=42")
                  .ok());
  EXPECT_EQ(spec.latency_ms.load(), 5);
  EXPECT_EQ(spec.jitter_ms.load(), 2);
  EXPECT_EQ(spec.bandwidth_bps.load(), 65536);
  EXPECT_EQ(spec.slice_bytes.load(), 1);
  EXPECT_EQ(spec.corrupt_ppm.load(), 1000);
  EXPECT_EQ(spec.reset_after_bytes.load(), 4096);
  EXPECT_TRUE(spec.blackhole.load());
  EXPECT_EQ(spec.seed.load(), 42u);

  EXPECT_FALSE(spec.Parse("latency").ok());       // no '='
  EXPECT_FALSE(spec.Parse("latency=abc").ok());   // not a number
  EXPECT_FALSE(spec.Parse("frobnicate=1").ok());  // unknown knob
  EXPECT_TRUE(spec.Parse("").ok());               // empty = no-op
}

// --- serving fixture ------------------------------------------------------

CbvHbConfig BaseConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  config.seed = 5;
  return config;
}

std::vector<Record> GenerateRecords(const NcvrGenerator& gen, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) records.push_back(gen.Generate(i, rng));
  return records;
}

std::vector<IdPair> Sorted(std::vector<IdPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 10000) {
  const auto deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// A serving stack with the fault proxy in front: clients talk to
/// proxy->port(), the proxy forwards to the real server.
struct ChaosFixture {
  std::unique_ptr<NcvrGenerator> gen;
  std::unique_ptr<LinkageService> service;
  std::unique_ptr<NetServer> server;
  std::unique_ptr<FaultProxy> proxy;
  std::vector<Record> records;

  static ChaosFixture Start(size_t n, NetServerOptions options = {}) {
    ChaosFixture f;
    Result<NcvrGenerator> gen = NcvrGenerator::Create();
    EXPECT_TRUE(gen.ok());
    f.gen = std::make_unique<NcvrGenerator>(std::move(gen.value()));
    Result<std::unique_ptr<LinkageService>> service =
        LinkageService::Create(BaseConfig(f.gen->schema()));
    EXPECT_TRUE(service.ok());
    f.service = std::move(service.value());
    f.records = GenerateRecords(*f.gen, n, 21);
    for (const Record& r : f.records) {
      EXPECT_TRUE(f.service->Insert(r).ok());
    }
    Result<std::unique_ptr<NetServer>> server =
        NetServer::Start(f.service.get(), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    f.server = std::move(server.value());
    Result<std::unique_ptr<FaultProxy>> proxy =
        FaultProxy::Start("127.0.0.1", f.server->port());
    EXPECT_TRUE(proxy.ok()) << proxy.status().ToString();
    f.proxy = std::move(proxy.value());
    return f;
  }

  /// Ground-truth match results computed in-process (fault-free).
  std::vector<std::vector<IdPair>> Expected(const std::vector<Record>& queries) {
    std::vector<std::vector<IdPair>> expected(queries.size());
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_TRUE(service->Match(queries[i], &expected[i]).ok());
    }
    return expected;
  }

  std::vector<Record> Queries(size_t n, uint64_t first_id) {
    std::vector<Record> queries(records.begin(),
                                records.begin() +
                                    static_cast<ptrdiff_t>(
                                        std::min(n, records.size())));
    for (size_t i = 0; i < queries.size(); ++i) queries[i].id = first_id + i;
    return queries;
  }
};

// --- scenarios ------------------------------------------------------------

// Baseline sanity: a clean proxy is transparent.
TEST(ChaosTest, PassthroughProxyIsTransparent) {
  ChaosFixture f = ChaosFixture::Start(12);
  const std::vector<Record> queries = f.Queries(12, 2000);
  const std::vector<std::vector<IdPair>> expected = f.Expected(queries);

  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.proxy->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<IdPair> got;
    ASSERT_TRUE(client.value()->Match(queries[i], &got).ok());
    EXPECT_EQ(Sorted(got), Sorted(expected[i])) << "query " << i;
  }
  EXPECT_GT(f.proxy->forwarded_bytes(), 0u);
}

// Latency + jitter + the 1-byte slicer + a bandwidth cap: slow and
// fragmented, but every answer byte-identical to the fault-free run.
TEST(ChaosTest, SlowSlicedThrottledLinkGivesIdenticalResults) {
  ChaosFixture f = ChaosFixture::Start(10);
  const std::vector<Record> queries = f.Queries(6, 2100);
  const std::vector<std::vector<IdPair>> expected = f.Expected(queries);

  ASSERT_TRUE(
      f.proxy->faults().Parse("latency=2;jitter=2;slice=64;bandwidth=262144")
          .ok());
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.proxy->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<IdPair> got;
    ASSERT_TRUE(client.value()->Match(queries[i], &got).ok()) << i;
    EXPECT_EQ(Sorted(got), Sorted(expected[i])) << "query " << i;
  }
}

// Byte corruption: the CRC framing must turn flipped bits into retried
// transport errors — never into a wrong (but well-formed) answer.
TEST(ChaosTest, CorruptionIsRetriedNeverReturnsWrongAnswers) {
  ChaosFixture f = ChaosFixture::Start(10);
  const std::vector<Record> queries = f.Queries(8, 2200);
  const std::vector<std::vector<IdPair>> expected = f.Expected(queries);

  ASSERT_TRUE(f.proxy->faults().Parse("corrupt=400;seed=11").ok());
  RetryPolicy policy;
  policy.max_attempts = 12;
  policy.per_attempt_timeout_ms = 2000;
  policy.backoff.base_ms = 5;
  policy.backoff.max_ms = 50;
  RetryingClient client("127.0.0.1", f.proxy->port(), policy);
  for (size_t i = 0; i < queries.size(); ++i) {
    std::vector<IdPair> got;
    const Status st = client.Match(queries[i], &got);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // The invariant: success implies the exact fault-free answer.
    EXPECT_EQ(Sorted(got), Sorted(expected[i])) << "query " << i;
  }
}

// Connection resets mid-stream: retries reconnect and finish, and every
// acked insert is actually in the index (and survives journal replay).
TEST(ChaosTest, AckedInsertsSurviveConnectionResets) {
  const std::string journal_path = TempPath("chaos_resets.cbvj");
  ChaosFixture f = ChaosFixture::Start(10);
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    f.service->AttachJournal(std::move(journal.value()));
  }
  // Low enough that a connection survives only a few inserts before the
  // proxy RSTs it: the run must weather several resets.
  ASSERT_TRUE(f.proxy->faults().Parse("reset_after=400").ok());

  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.per_attempt_timeout_ms = 2000;
  policy.backoff.base_ms = 5;
  policy.backoff.max_ms = 50;
  RetryingClient client("127.0.0.1", f.proxy->port(), policy);

  std::vector<uint64_t> acked;
  for (size_t i = 0; i < 30; ++i) {
    Record record = f.records[i % f.records.size()];
    record.id = 3000 + i;
    if (client.Insert(record).ok()) acked.push_back(record.id);
  }
  // The scenario must both actually reset connections and still land
  // most inserts.
  EXPECT_GT(client.counters().reconnects, 0u);
  EXPECT_GT(acked.size(), 0u);

  // Invariant: an acked insert is never lost.
  for (const uint64_t id : acked) {
    EXPECT_TRUE(f.service->Contains(id)) << "acked insert " << id << " lost";
  }

  // And each survives crash recovery exactly once: replaying the journal
  // into a fresh service applies every acked id.
  f.server->Shutdown();
  Result<std::unique_ptr<LinkageService>> restarted =
      LinkageService::Create(BaseConfig(f.gen->schema()));
  ASSERT_TRUE(restarted.ok());
  for (const Record& r : f.records) {
    ASSERT_TRUE(restarted.value()->Insert(r).ok());
  }
  Result<JournalReplayStats> stats =
      restarted.value()->ReplayJournalFile(journal_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  for (const uint64_t id : acked) {
    EXPECT_TRUE(restarted.value()->Contains(id))
        << "acked insert " << id << " lost across restart";
  }
}

// Retry safety of insert: a duplicate send (exactly what a retry after a
// lost ack produces) is absorbed by journal-replay id-dedupe, so insert
// and match_and_insert are idempotent and safe to retry.
TEST(ChaosTest, DuplicateInsertIsDedupedByJournalReplay) {
  const std::string journal_path = TempPath("chaos_dedupe.cbvj");
  ChaosFixture f = ChaosFixture::Start(4);
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    f.service->AttachJournal(std::move(journal.value()));
  }
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.proxy->port());
  ASSERT_TRUE(client.ok());
  Record record = f.records[0];
  record.id = 4000;
  ASSERT_TRUE(client.value()->Insert(record).ok());
  ASSERT_TRUE(client.value()->Insert(record).ok());  // the "retry"

  f.server->Shutdown();
  Result<std::unique_ptr<LinkageService>> restarted =
      LinkageService::Create(BaseConfig(f.gen->schema()));
  ASSERT_TRUE(restarted.ok());
  Result<JournalReplayStats> stats =
      restarted.value()->ReplayJournalFile(journal_path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  // Both sends hit the journal; replay applies the id exactly once.
  EXPECT_EQ(stats.value().applied, 1u);
  EXPECT_TRUE(restarted.value()->Contains(4000));
}

// Blackhole: a partitioned client with a total deadline fails within a
// bounded time instead of hanging forever.
TEST(ChaosTest, BlackholedClientFailsWithinItsDeadline) {
  ChaosFixture f = ChaosFixture::Start(4);
  f.proxy->faults().blackhole.store(true);

  RetryPolicy policy;
  policy.max_attempts = 100;  // the total deadline is the only bound
  policy.per_attempt_timeout_ms = 400;
  policy.total_timeout_ms = 1500;
  policy.backoff.base_ms = 10;
  policy.backoff.max_ms = 50;
  RetryingClient client("127.0.0.1", f.proxy->port(), policy);

  Record q = f.records[0];
  q.id = 5000;
  std::vector<IdPair> pairs;
  const auto begin = Clock::now();
  const Status st = client.Match(q, &pairs);
  const int64_t elapsed = MsSince(begin);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_LT(elapsed, 5000) << "client stuck for " << elapsed << "ms";
}

// Leader <-> replica through the proxy: a partition opens the circuit
// breaker; healing converges the replica (no acked insert lost) and
// closes the circuit again.
TEST(ChaosTest, ReplicaConvergesAfterPartitionHeals) {
  const std::string journal_path = TempPath("chaos_replica.cbvj");
  ChaosFixture f = ChaosFixture::Start(10);
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    f.service->AttachJournal(std::move(journal.value()));
  }

  ReplicaOptions options;
  options.primary_port = f.proxy->port();  // follow THROUGH the proxy
  options.poll_interval_ms = 20;
  options.connect_timeout_ms = 300;
  options.io_timeout_ms = 300;
  options.failure_backoff.base_ms = 20;
  options.failure_backoff.max_ms = 100;
  Result<std::unique_ptr<Replica>> replica = Replica::Start(options);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  EXPECT_EQ(replica.value()->service()->size(), 10u);
  EXPECT_EQ(replica.value()->progress().circuit, CircuitState::kClosed);

  // Live replication works through the clean proxy.
  Record before = f.records[0];
  before.id = 6000;
  ASSERT_TRUE(f.service->Insert(before).ok());
  ASSERT_TRUE(WaitUntil(
      [&] { return replica.value()->service()->Contains(6000); }))
      << "last error: " << replica.value()->progress().last_error;

  // Partition.  Fetches time out; enough consecutive failures must open
  // the circuit breaker.
  f.proxy->faults().blackhole.store(true);
  ASSERT_TRUE(WaitUntil([&] {
    return replica.value()->progress().circuit == CircuitState::kOpen;
  })) << "circuit never opened; last error: "
      << replica.value()->progress().last_error;

  // Writes that land during the partition...
  std::vector<uint64_t> partition_ids;
  for (size_t i = 0; i < 5; ++i) {
    Record record = f.records[i % f.records.size()];
    record.id = 6100 + i;
    ASSERT_TRUE(f.service->Insert(record).ok());
    partition_ids.push_back(record.id);
  }

  // Heal.  The follower must converge and close the circuit.
  f.proxy->faults().blackhole.store(false);
  for (const uint64_t id : partition_ids) {
    ASSERT_TRUE(WaitUntil(
        [&] { return replica.value()->service()->Contains(id); }, 20000))
        << "id " << id << " never replicated; last error: "
        << replica.value()->progress().last_error;
  }
  ASSERT_TRUE(WaitUntil([&] {
    const ReplicaProgress p = replica.value()->progress();
    return p.circuit == CircuitState::kClosed && p.lag_bytes == 0;
  })) << "circuit: " << static_cast<int>(replica.value()->progress().circuit)
      << " lag: " << replica.value()->progress().lag_bytes;
  EXPECT_TRUE(replica.value()->progress().last_error.empty());
  replica.value()->Stop();
}

// The harsher partition: the proxy DIES, so the replica's reconnects
// are refused outright instead of hanging.  The re-sync then fails
// before a connection exists — the follow loop must survive that
// (regression: it used to dereference the dropped client) and converge
// once a proxy returns on the same port.
TEST(ChaosTest, ReplicaSurvivesConnectionRefusedPartition) {
  ChaosFixture f = ChaosFixture::Start(10);
  const uint16_t proxy_port = f.proxy->port();

  ReplicaOptions options;
  options.primary_port = proxy_port;
  options.poll_interval_ms = 20;
  options.connect_timeout_ms = 300;
  options.io_timeout_ms = 300;
  options.failure_backoff.base_ms = 20;
  options.failure_backoff.max_ms = 100;
  Result<std::unique_ptr<Replica>> replica = Replica::Start(options);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  EXPECT_EQ(replica.value()->service()->size(), 10u);

  // Kill the link completely: live connections reset, reconnects refused.
  f.proxy->Shutdown();
  ASSERT_TRUE(WaitUntil([&] {
    return replica.value()->progress().circuit == CircuitState::kOpen;
  })) << "circuit never opened; last error: "
      << replica.value()->progress().last_error;

  // Keep it down across several refused re-sync attempts; the follow
  // loop must still be reporting failures, not dead.
  const uint64_t failures_at_open =
      replica.value()->progress().consecutive_failures;
  ASSERT_TRUE(WaitUntil([&] {
    return replica.value()->progress().consecutive_failures >
           failures_at_open + 2;
  })) << "follow loop stopped making attempts";

  Record during = f.records[0];
  during.id = 6500;
  ASSERT_TRUE(f.service->Insert(during).ok());

  // Heal: a fresh proxy on the SAME port.
  Result<std::unique_ptr<FaultProxy>> healed =
      FaultProxy::Start("127.0.0.1", f.server->port(), proxy_port);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  f.proxy = std::move(healed.value());

  ASSERT_TRUE(WaitUntil(
      [&] { return replica.value()->service()->Contains(6500); }, 20000))
      << "never converged after heal; last error: "
      << replica.value()->progress().last_error;
  ASSERT_TRUE(WaitUntil([&] {
    return replica.value()->progress().circuit == CircuitState::kClosed;
  }));
  replica.value()->Stop();
}

}  // namespace
}  // namespace net
}  // namespace cbvlink
