#include "src/io/serialization.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/common/random.h"

namespace cbvlink {
namespace {

EncodedRecord MakeRecord(RecordId id, size_t bits, uint64_t seed) {
  EncodedRecord r;
  r.id = id;
  r.bits = BitVector(bits);
  Rng rng(seed);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.3)) r.bits.Set(i);
  }
  return r;
}

TEST(SerializationTest, RoundTripEmpty) {
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords({}, stream).ok());
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(SerializationTest, RoundTrip120BitRecords) {
  std::vector<EncodedRecord> records;
  for (RecordId id = 0; id < 50; ++id) {
    records.push_back(MakeRecord(id, 120, id * 7 + 1));
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords(records, stream).ok());
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded.value()[i].id, records[i].id);
    EXPECT_EQ(loaded.value()[i].bits, records[i].bits);
  }
}

TEST(SerializationTest, RoundTripOddWidths) {
  for (const size_t bits : {1u, 63u, 64u, 65u, 127u, 128u, 267u}) {
    std::vector<EncodedRecord> records{MakeRecord(9, bits, 3)};
    std::stringstream stream;
    ASSERT_TRUE(WriteEncodedRecords(records, stream).ok()) << bits;
    Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
    ASSERT_TRUE(loaded.ok()) << bits;
    EXPECT_EQ(loaded.value()[0].bits, records[0].bits) << bits;
  }
}

TEST(SerializationTest, WidthMismatchRejected) {
  std::vector<EncodedRecord> records{MakeRecord(1, 120, 1),
                                     MakeRecord(2, 64, 2)};
  std::stringstream stream;
  EXPECT_FALSE(WriteEncodedRecords(records, stream).ok());
}

TEST(SerializationTest, ForeignMagicRejected) {
  std::stringstream stream;
  stream << "this is not a cbvlink file at all";
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, TruncationDetected) {
  std::vector<EncodedRecord> records;
  for (RecordId id = 0; id < 10; ++id) {
    records.push_back(MakeRecord(id, 120, id + 1));
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords(records, stream).ok());
  const std::string full = stream.str();
  // Cut the payload in the middle of a record.
  std::stringstream cut(full.substr(0, full.size() / 2));
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(cut);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, TruncatedHeaderDetected) {
  std::stringstream cut("CB");
  EXPECT_EQ(ReadEncodedRecords(cut).status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/records.cbv";
  std::vector<EncodedRecord> records{MakeRecord(5, 120, 11),
                                     MakeRecord(6, 120, 12)};
  ASSERT_TRUE(WriteEncodedRecordsToFile(records, path).ok());
  Result<std::vector<EncodedRecord>> loaded =
      ReadEncodedRecordsFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[1].bits, records[1].bits);
}

TEST(SerializationTest, FileErrorsSurfaceAsIOError) {
  EXPECT_EQ(WriteEncodedRecordsToFile({}, "/nonexistent_dir/x.cbv").code(),
            StatusCode::kIOError);
  EXPECT_EQ(ReadEncodedRecordsFromFile("/nonexistent_dir/x.cbv")
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(SerializationTest, WireCostMatchesPaperClaim) {
  // A 120-bit NCVR record costs 8 (id) + 16 (two words) bytes on the
  // wire, versus tens of bytes of raw strings — the compactness claim.
  std::vector<EncodedRecord> records{MakeRecord(1, 120, 1)};
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords(records, stream).ok());
  const size_t header = 4 + 4 + 8 + 8;
  EXPECT_EQ(stream.str().size(), header + 8 + 16);
}

}  // namespace
}  // namespace cbvlink
