#include "src/io/serialization.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "src/common/crc32.h"
#include "src/common/random.h"

namespace cbvlink {
namespace {

EncodedRecord MakeRecord(RecordId id, size_t bits, uint64_t seed) {
  EncodedRecord r;
  r.id = id;
  r.bits = BitVector(bits);
  Rng rng(seed);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.3)) r.bits.Set(i);
  }
  return r;
}

TEST(SerializationTest, RoundTripEmpty) {
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords({}, stream).ok());
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

TEST(SerializationTest, RoundTrip120BitRecords) {
  std::vector<EncodedRecord> records;
  for (RecordId id = 0; id < 50; ++id) {
    records.push_back(MakeRecord(id, 120, id * 7 + 1));
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords(records, stream).ok());
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(loaded.value()[i].id, records[i].id);
    EXPECT_EQ(loaded.value()[i].bits, records[i].bits);
  }
}

TEST(SerializationTest, RoundTripOddWidths) {
  for (const size_t bits : {1u, 63u, 64u, 65u, 127u, 128u, 267u}) {
    std::vector<EncodedRecord> records{MakeRecord(9, bits, 3)};
    std::stringstream stream;
    ASSERT_TRUE(WriteEncodedRecords(records, stream).ok()) << bits;
    Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
    ASSERT_TRUE(loaded.ok()) << bits;
    EXPECT_EQ(loaded.value()[0].bits, records[0].bits) << bits;
  }
}

TEST(SerializationTest, WidthMismatchRejected) {
  std::vector<EncodedRecord> records{MakeRecord(1, 120, 1),
                                     MakeRecord(2, 64, 2)};
  std::stringstream stream;
  EXPECT_FALSE(WriteEncodedRecords(records, stream).ok());
}

TEST(SerializationTest, ForeignMagicRejected) {
  std::stringstream stream;
  stream << "this is not a cbvlink file at all";
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(stream);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, TruncationDetected) {
  std::vector<EncodedRecord> records;
  for (RecordId id = 0; id < 10; ++id) {
    records.push_back(MakeRecord(id, 120, id + 1));
  }
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords(records, stream).ok());
  const std::string full = stream.str();
  // Cut the payload in the middle of a record.
  std::stringstream cut(full.substr(0, full.size() / 2));
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(cut);
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, TruncatedHeaderDetected) {
  std::stringstream cut("CB");
  EXPECT_EQ(ReadEncodedRecords(cut).status().code(), StatusCode::kIOError);
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path = testing::TempDir() + "/records.cbv";
  std::vector<EncodedRecord> records{MakeRecord(5, 120, 11),
                                     MakeRecord(6, 120, 12)};
  ASSERT_TRUE(WriteEncodedRecordsToFile(records, path).ok());
  Result<std::vector<EncodedRecord>> loaded =
      ReadEncodedRecordsFromFile(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded.value().size(), 2u);
  EXPECT_EQ(loaded.value()[1].bits, records[1].bits);
}

TEST(SerializationTest, FileErrorsSurfaceAsIOError) {
  EXPECT_EQ(WriteEncodedRecordsToFile({}, "/nonexistent_dir/x.cbv").code(),
            StatusCode::kIOError);
  EXPECT_EQ(ReadEncodedRecordsFromFile("/nonexistent_dir/x.cbv")
                .status()
                .code(),
            StatusCode::kIOError);
}

TEST(SerializationTest, ServiceSnapshotRoundTrip) {
  ServiceSnapshot snapshot;
  snapshot.attributes = {
      {"LastName", "ABCDEFGHIJKLMNOPQRSTUVWXYZ_", 2, false},
      {"FirstName", "ABCDEFGHIJKLMNOPQRSTUVWXYZ_", 3, true},
  };
  snapshot.expected_qgrams = {5.1, 7.25};
  snapshot.rule_text = "((f1 <= 4) AND (f2 <= 8))";
  snapshot.record_K = 25;
  snapshot.record_theta = 3;
  snapshot.delta = 0.05;
  snapshot.sizing_max_collisions = 2.0;
  snapshot.sizing_confidence_ratio = 0.25;
  snapshot.seed = 99;
  snapshot.num_shards = 8;
  snapshot.max_bucket_size = 128;
  snapshot.overflow_policy = 1;
  for (RecordId id = 0; id < 10; ++id) {
    snapshot.records.push_back(MakeRecord(id, 40, id + 1));
  }
  snapshot.buckets = {
      {0, 0x1234, false, {1, 2, 3}},
      {2, 0xffff, true, {7}},
  };

  std::stringstream stream;
  ASSERT_TRUE(WriteServiceSnapshot(snapshot, stream).ok());
  Result<ServiceSnapshot> loaded = ReadServiceSnapshot(stream);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const ServiceSnapshot& got = loaded.value();
  ASSERT_EQ(got.attributes.size(), 2u);
  EXPECT_EQ(got.attributes[0].name, "LastName");
  EXPECT_EQ(got.attributes[1].alphabet_symbols,
            "ABCDEFGHIJKLMNOPQRSTUVWXYZ_");
  EXPECT_EQ(got.attributes[1].qgram_q, 3u);
  EXPECT_TRUE(got.attributes[1].qgram_pad);
  EXPECT_FALSE(got.attributes[0].qgram_pad);
  EXPECT_EQ(got.expected_qgrams, snapshot.expected_qgrams);
  EXPECT_EQ(got.rule_text, snapshot.rule_text);
  EXPECT_EQ(got.record_K, 25u);
  EXPECT_EQ(got.record_theta, 3u);
  EXPECT_DOUBLE_EQ(got.delta, 0.05);
  EXPECT_DOUBLE_EQ(got.sizing_max_collisions, 2.0);
  EXPECT_DOUBLE_EQ(got.sizing_confidence_ratio, 0.25);
  EXPECT_EQ(got.seed, 99u);
  EXPECT_EQ(got.num_shards, 8u);
  EXPECT_EQ(got.max_bucket_size, 128u);
  EXPECT_EQ(got.overflow_policy, 1u);
  ASSERT_EQ(got.records.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(got.records[i].bits, snapshot.records[i].bits);
  }
  ASSERT_EQ(got.buckets.size(), 2u);
  EXPECT_EQ(got.buckets[1].group, 2u);
  EXPECT_EQ(got.buckets[1].key, 0xffffu);
  EXPECT_TRUE(got.buckets[1].overflowed);
  EXPECT_EQ(got.buckets[1].ids, (std::vector<RecordId>{7}));
}

TEST(SerializationTest, ServiceSnapshotForeignMagicRejected) {
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords({}, stream).ok());
  Result<ServiceSnapshot> loaded = ReadServiceSnapshot(stream);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SerializationTest, ServiceSnapshotTruncationDetected) {
  ServiceSnapshot snapshot;
  snapshot.attributes = {{"f1", "ABC_", 2, true}};
  snapshot.expected_qgrams = {4.0};
  snapshot.rule_text = "f1 <= 4";
  snapshot.records.push_back(MakeRecord(1, 16, 5));
  std::stringstream stream;
  ASSERT_TRUE(WriteServiceSnapshot(snapshot, stream).ok());
  const std::string full = stream.str();
  for (const size_t cut : {size_t{4}, size_t{40}, full.size() - 3}) {
    std::stringstream truncated(full.substr(0, cut));
    EXPECT_FALSE(ReadServiceSnapshot(truncated).ok()) << "cut=" << cut;
  }
}

TEST(SerializationTest, WireCostMatchesPaperClaim) {
  // A 120-bit NCVR record costs 8 (id) + 16 (two words) bytes on the
  // wire, versus tens of bytes of raw strings — the compactness claim.
  // The v2 container adds a fixed 4-byte CRC32C trailer per file.
  std::vector<EncodedRecord> records{MakeRecord(1, 120, 1)};
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords(records, stream).ok());
  const size_t header = 4 + 4 + 8 + 8;
  const size_t trailer = 4;
  EXPECT_EQ(stream.str().size(), header + 8 + 16 + trailer);
}

TEST(SerializationTest, OnDiskByteLayoutIsPinned) {
  // Regression for the reader/writer word-layout contract: bit i of a
  // record lives at bit (i % 64) of little-endian word (i / 64), exactly
  // as BitVector::words() stores it. A layout change would silently
  // corrupt every snapshot in the field, so the bytes are pinned here.
  EncodedRecord record;
  record.id = 9;
  record.bits = BitVector(67);
  record.bits.Set(0);
  record.bits.Set(2);
  record.bits.Set(64);  // second word, bit 0
  record.bits.Set(66);  // second word, bit 2
  std::stringstream stream;
  ASSERT_TRUE(WriteEncodedRecords({record}, stream).ok());
  const std::string bytes = stream.str();

  const auto le32 = [](uint32_t v) {
    std::string s(4, '\0');
    for (int i = 0; i < 4; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  const auto le64 = [](uint64_t v) {
    std::string s(8, '\0');
    for (int i = 0; i < 8; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  std::string expected;
  expected += "CBVL";                  // magic
  expected += le32(2);                 // format version
  expected += le64(1);                 // record count
  expected += le64(67);                // bits per record
  expected += le64(9);                 // record id
  expected += le64(0b101);             // word 0: bits 0 and 2
  expected += le64(0b101);             // word 1: bits 64 and 66
  expected += le32(Crc32c(expected.data(), expected.size()));
  EXPECT_EQ(bytes, expected);

  // And the reader reconstructs the identical BitVector from it.
  std::stringstream in(bytes);
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value()[0].bits, record.bits);
  ASSERT_EQ(record.bits.words().size(), 2u);
  EXPECT_EQ(record.bits.words()[0], 0b101u);
  EXPECT_EQ(record.bits.words()[1], 0b101u);
}

TEST(SerializationTest, AtomicFileWriteLeavesNoTemp) {
  const std::string path = testing::TempDir() + "/atomic_records.cbv";
  std::vector<EncodedRecord> records{MakeRecord(5, 120, 11)};
  ASSERT_TRUE(WriteEncodedRecordsToFile(records, path).ok());
  std::ifstream tmp(AtomicTempPath(path), std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "temp file survived a successful commit";
  ASSERT_TRUE(ReadEncodedRecordsFromFile(path).ok());
}

}  // namespace
}  // namespace cbvlink
