// End-to-end tests for the network serving tier (src/net/server.h):
// loopback clients against a real epoll server — result equivalence with
// in-process calls, pipelined overload shedding, HTTP endpoints,
// read-only mode, journal-backed crash recovery, warm-standby
// replication and promotion, and idle-connection sweeping.

#include "src/net/server.h"

#include <gtest/gtest.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "src/common/failpoint.h"
#include "src/datagen/generators.h"
#include "src/io/journal.h"
#include "src/io/serialization.h"
#include "src/net/client.h"
#include "src/net/protocol.h"
#include "src/net/replication.h"
#include "src/service/linkage_service.h"

namespace cbvlink {
namespace net {
namespace {

CbvHbConfig BaseConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  config.seed = 5;
  return config;
}

std::vector<Record> GenerateRecords(const NcvrGenerator& gen, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(gen.Generate(i, rng));
  }
  return records;
}

std::vector<IdPair> Sorted(std::vector<IdPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Polls `pred` (10ms cadence) until true or `timeout_ms` elapses.
bool WaitUntil(const std::function<bool()>& pred, int timeout_ms = 5000) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return pred();
}

/// One raw HTTP/1.1 exchange: connect, send `request` (which must carry
/// "Connection: close"), read until the server closes.
std::string HttpExchange(uint16_t port, const std::string& request) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo("127.0.0.1", std::to_string(port).c_str(), &hints, &res) !=
      0) {
    return "";
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return "";
  }
  timeval tv{};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& target) {
  return HttpExchange(port, "GET " + target +
                                " HTTP/1.1\r\nHost: t\r\nConnection: close"
                                "\r\n\r\n");
}

std::string HttpPost(uint16_t port, const std::string& target,
                     const std::string& body) {
  return HttpExchange(
      port, "POST " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close"
                               "\r\nContent-Length: " +
                std::to_string(body.size()) + "\r\n\r\n" + body);
}

/// A service pre-loaded with `n` generated records plus the generator's
/// record set, and a running server.
struct ServingFixture {
  std::unique_ptr<NcvrGenerator> gen;
  std::unique_ptr<LinkageService> service;
  std::unique_ptr<NetServer> server;
  std::vector<Record> records;

  static ServingFixture Start(size_t n, NetServerOptions options = {}) {
    ServingFixture f;
    Result<NcvrGenerator> gen = NcvrGenerator::Create();
    EXPECT_TRUE(gen.ok());
    f.gen = std::make_unique<NcvrGenerator>(std::move(gen.value()));
    Result<std::unique_ptr<LinkageService>> service =
        LinkageService::Create(BaseConfig(f.gen->schema()));
    EXPECT_TRUE(service.ok());
    f.service = std::move(service.value());
    f.records = GenerateRecords(*f.gen, n, 21);
    for (const Record& r : f.records) {
      EXPECT_TRUE(f.service->Insert(r).ok());
    }
    Result<std::unique_ptr<NetServer>> server =
        NetServer::Start(f.service.get(), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    f.server = std::move(server.value());
    return f;
  }
};

TEST(NetServerTest, StartsOnEphemeralPortAndShutsDownIdempotently) {
  ServingFixture f = ServingFixture::Start(2);
  EXPECT_GT(f.server->port(), 0);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_TRUE(client.value()->Ping().ok());
  f.server->Shutdown();
  f.server->Shutdown();  // idempotent
  EXPECT_FALSE(client.value()->Ping().ok());  // connections are closed
}

// Concurrent network clients must see byte-identical match results to
// in-process calls against the same service.
TEST(NetServerTest, ConcurrentClientsMatchInProcessResults) {
  ServingFixture f = ServingFixture::Start(40);

  // In-process ground truth: every record queried back with a fresh id.
  std::vector<std::vector<IdPair>> expected(f.records.size());
  std::vector<Record> queries = f.records;
  for (size_t i = 0; i < queries.size(); ++i) {
    queries[i].id = 1000 + i;
    ASSERT_TRUE(f.service->Match(queries[i], &expected[i]).ok());
  }

  constexpr size_t kThreads = 4;
  std::atomic<size_t> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      Result<std::unique_ptr<NetClient>> client =
          NetClient::Connect("127.0.0.1", f.server->port());
      if (!client.ok()) {
        ++failures;
        return;
      }
      for (size_t i = t; i < queries.size(); i += kThreads) {
        std::vector<IdPair> got;
        if (!client.value()->Match(queries[i], &got).ok() ||
            Sorted(got) != Sorted(expected[i])) {
          ++failures;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0u);
}

TEST(NetServerTest, MatchAndInsertOverTheWire) {
  ServingFixture f = ServingFixture::Start(10);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());

  // A duplicate of record 0 arriving with a new id links to it...
  Record dup = f.records[0];
  dup.id = 500;
  std::vector<IdPair> pairs;
  ASSERT_TRUE(client.value()->MatchAndInsert(dup, &pairs).ok());
  bool found = false;
  for (const IdPair& p : pairs) {
    found = found || (p.a_id == f.records[0].id && p.b_id == 500u);
  }
  EXPECT_TRUE(found);
  // ...and is itself indexed afterwards.
  EXPECT_TRUE(WaitUntil([&]() { return f.service->Contains(500); }, 1000));

  Record next = f.records[0];
  next.id = 501;
  pairs.clear();
  ASSERT_TRUE(client.value()->Match(next, &pairs).ok());
  bool linked_to_500 = false;
  for (const IdPair& p : pairs) {
    linked_to_500 = linked_to_500 || p.a_id == 500u;
  }
  EXPECT_TRUE(linked_to_500);
}

TEST(NetServerTest, MalformedBinaryPayloadAnswersErrorAndCountsSkippedRow) {
  ServingFixture f = ServingFixture::Start(2);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());

  Frame reply;
  ASSERT_TRUE(client.value()->Call(MsgType::kInsert, "not a record", &reply).ok());
  ASSERT_EQ(reply.type, MsgType::kError);
  Status carried = Status::OK();
  ASSERT_TRUE(DecodeErrorPayload(reply.payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(f.service->metrics().skipped_rows, 1u);

  // The connection survives a rejected payload.
  EXPECT_TRUE(client.value()->Ping().ok());
}

// Overload shedding: pipeline far more requests than the admission queue
// holds while one slow worker is pinned; the excess must come back as
// ResourceExhausted errors — quickly, not after queueing behind the
// slow request — and every request must get exactly one reply.
TEST(NetServerTest, PipelinedBurstShedsBeyondTheAdmissionQueue) {
  NetServerOptions options;
  options.num_workers = 1;
  options.max_queue = 2;
  ServingFixture f = ServingFixture::Start(10, options);

  // Pin the worker inside the first admitted match.
  Failpoints::Activate("index.collect", FailpointAction::kDelay, 100);

  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());

  constexpr size_t kBurst = 32;
  Record base = f.records[0];
  base.id = 2000;
  size_t ok = 0;
  size_t shed = 0;
  size_t other = 0;
  const Status burst = client.value()->PipelinedBurst(
      MsgType::kMatch, base, kBurst,
      [&](size_t, const Frame& frame) {
        if (frame.type == MsgType::kMatchResult) {
          ++ok;
          return;
        }
        Status carried = Status::OK();
        if (frame.type == MsgType::kError &&
            DecodeErrorPayload(frame.payload, &carried).ok() &&
            carried.code() == StatusCode::kResourceExhausted) {
          ++shed;
        } else {
          ++other;
        }
      });
  Failpoints::DeactivateAll();

  ASSERT_TRUE(burst.ok()) << burst.ToString();
  EXPECT_EQ(ok + shed + other, kBurst);
  EXPECT_EQ(other, 0u);
  EXPECT_GE(ok, 1u);
  EXPECT_GE(shed, 1u);

  // The connection is still healthy after shedding.
  EXPECT_TRUE(client.value()->Ping().ok());
}

TEST(NetServerTest, ReadOnlyModeRejectsMutations) {
  NetServerOptions options;
  options.read_only = true;
  ServingFixture f = ServingFixture::Start(5, options);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());

  Record record = f.records[0];
  record.id = 700;
  EXPECT_EQ(client.value()->Insert(record).code(),
            StatusCode::kFailedPrecondition);
  std::vector<IdPair> pairs;
  EXPECT_EQ(client.value()->MatchAndInsert(record, &pairs).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(f.service->Contains(700));

  // Reads still work.
  EXPECT_TRUE(client.value()->Match(record, &pairs).ok());

  // The HTTP mapping answers 403 for the same operations.
  const std::string resp =
      HttpPost(f.server->port(), "/insert",
               R"({"id": 701, "fields": ["A", "B", "C", "D"]})");
  EXPECT_NE(resp.find("403 Forbidden"), std::string::npos);
}

TEST(NetServerTest, HttpEndpoints) {
  ServingFixture f = ServingFixture::Start(10);
  const uint16_t port = f.server->port();

  const std::string health = HttpGet(port, "/healthz");
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok"), std::string::npos);

  // A duplicate of record 0 posted as JSON matches it.
  const Record& r0 = f.records[0];
  std::string body = R"({"id": 900, "fields": [)";
  for (size_t i = 0; i < r0.fields.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + r0.fields[i] + "\"";
  }
  body += "]}";
  const std::string match = HttpPost(port, "/match", body);
  EXPECT_NE(match.find("200 OK"), std::string::npos);
  EXPECT_NE(match.find("\"pairs\":["), std::string::npos);
  EXPECT_NE(match.find("[" + std::to_string(r0.id) + ",900]"),
            std::string::npos);

  // Insert over HTTP, then verify in process.
  std::string insert_body = body;
  const size_t id_pos = insert_body.find("900");
  insert_body.replace(id_pos, 3, "901");
  const std::string inserted = HttpPost(port, "/insert", insert_body);
  EXPECT_NE(inserted.find("200 OK"), std::string::npos);
  EXPECT_TRUE(WaitUntil([&]() { return f.service->Contains(901); }, 1000));

  // Malformed JSON answers 400 and counts a skipped row.
  const uint64_t skipped_before = f.service->metrics().skipped_rows;
  const std::string bad = HttpPost(port, "/match", "{nonsense");
  EXPECT_NE(bad.find("400 Bad Request"), std::string::npos);
  EXPECT_EQ(f.service->metrics().skipped_rows, skipped_before + 1);

  // Unknown target answers 404.
  EXPECT_NE(HttpGet(port, "/nope").find("404 Not Found"), std::string::npos);

  // Telemetry endpoints expose the net metrics.
  const std::string metrics = HttpGet(port, "/metrics");
  EXPECT_NE(metrics.find("net_requests_total"), std::string::npos);
  EXPECT_NE(metrics.find("net_connections_accepted_total"), std::string::npos);
  const std::string stats = HttpGet(port, "/stats");
  EXPECT_NE(stats.find("net_requests_total"), std::string::npos);
}

TEST(NetServerTest, BinaryStatsCallReturnsTelemetryJson) {
  ServingFixture f = ServingFixture::Start(3);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());
  std::string json;
  ASSERT_TRUE(client.value()->Stats(&json).ok());
  EXPECT_NE(json.find("net_requests_total"), std::string::npos);
  EXPECT_NE(json.find("service_records"), std::string::npos);
}

// An insert acknowledged over the wire must survive a crash: replaying
// the journal into a fresh service restores it.
TEST(NetServerTest, AcknowledgedNetworkInsertSurvivesRestartViaJournal) {
  const std::string journal_path = TempPath("net_server_recovery.cbvj");
  ServingFixture f = ServingFixture::Start(8);
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    f.service->AttachJournal(std::move(journal.value()));
  }

  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());
  Record record = f.records[0];
  record.id = 600;
  ASSERT_TRUE(client.value()->Insert(record).ok());

  // "Crash": tear down the serving process state without any snapshot.
  f.server->Shutdown();
  f.service.reset();

  Result<std::unique_ptr<LinkageService>> restarted =
      LinkageService::Create(BaseConfig(f.gen->schema()));
  ASSERT_TRUE(restarted.ok());
  for (const Record& r : f.records) {
    ASSERT_TRUE(restarted.value()->Insert(r).ok());
  }
  Result<JournalReplayStats> stats =
      restarted.value()->ReplayJournalFile(journal_path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().applied, 1u);
  EXPECT_TRUE(restarted.value()->Contains(600));
}

TEST(NetServerTest, ReplicaFollowsPrimaryAndPromotes) {
  const std::string journal_path = TempPath("net_replica.cbvj");
  const std::string snapshot_path = TempPath("net_replica.cbvs");
  ServingFixture f = ServingFixture::Start(20);
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    f.service->AttachJournal(std::move(journal.value()));
  }

  ReplicaOptions options;
  options.primary_port = f.server->port();
  options.poll_interval_ms = 20;
  Result<std::unique_ptr<Replica>> replica = Replica::Start(options);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  // The initial sync is synchronous: the snapshot's records are there.
  EXPECT_EQ(replica.value()->service()->size(), 20u);

  // Live inserts flow through the journal to the follower.
  const std::vector<Record> extra = GenerateRecords(*f.gen, 25, 21);
  for (size_t i = 20; i < 25; ++i) {
    ASSERT_TRUE(f.service->Insert(extra[i]).ok());
  }
  ASSERT_TRUE(WaitUntil([&]() {
    return replica.value()->service()->Contains(extra[24].id);
  })) << "last error: " << replica.value()->progress().last_error;
  const ReplicaProgress progress = replica.value()->progress();
  EXPECT_GE(progress.applied_records, 5u);
  EXPECT_GE(progress.syncs, 1u);

  // A snapshot save rotates the journal (epoch bump) under the
  // follower's cursor; it must re-sync and keep following.
  ASSERT_TRUE(f.service->SaveSnapshotToFile(snapshot_path).ok());
  Record after_rotate = f.records[0];
  after_rotate.id = 800;
  ASSERT_TRUE(f.service->Insert(after_rotate).ok());
  ASSERT_TRUE(WaitUntil([&]() {
    return replica.value()->service()->Contains(800);
  })) << "last error: " << replica.value()->progress().last_error;
  EXPECT_GE(replica.value()->progress().syncs, 2u);

  // Post-rotation the follower must tail via kFetchJournal reads of the
  // rotated fd — a fetch error would degrade it to snapshot re-syncs
  // and leave last_error set (regression: DropCommitted once installed
  // a write-only fd, so every post-rotation ReadSegment failed).
  Record tail_record = f.records[1];
  tail_record.id = 802;
  ASSERT_TRUE(f.service->Insert(tail_record).ok());
  ASSERT_TRUE(WaitUntil([&]() {
    return replica.value()->service()->Contains(802);
  })) << "last error: " << replica.value()->progress().last_error;
  EXPECT_TRUE(replica.value()->progress().last_error.empty())
      << replica.value()->progress().last_error;

  // Promotion: the primary dies, the standby takes over writable.
  f.server->Shutdown();
  std::unique_ptr<LinkageService> promoted = replica.value()->Promote();
  ASSERT_NE(promoted, nullptr);
  EXPECT_EQ(replica.value()->service(), nullptr);
  EXPECT_EQ(promoted->size(), 27u);
  Record post_promotion = f.records[1];
  post_promotion.id = 801;
  EXPECT_TRUE(promoted->Insert(post_promotion).ok());
  EXPECT_TRUE(promoted->Contains(801));
}

/// Connects a raw TCP socket to 127.0.0.1:`port`; returns the fd or -1.
int RawConnect(uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo("127.0.0.1", std::to_string(port).c_str(), &hints, &res) !=
      0) {
    return -1;
  }
  int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd >= 0 && ::connect(fd, res->ai_addr, res->ai_addrlen) != 0) {
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd >= 0) {
    timeval tv{};
    tv.tv_sec = 10;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  return fd;
}

bool RawSendAll(int fd, std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads one reply frame off a raw socket (blocking, bounded by the
/// socket's recv timeout).  Returns false on close/timeout.
bool RawReadFrame(int fd, Frame* out) {
  FrameDecoder decoder;
  char buf[4096];
  while (true) {
    switch (decoder.Pop(out)) {
      case FrameDecoder::Next::kFrame:
        return true;
      case FrameDecoder::Next::kCorrupt:
        return false;
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) return false;
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)));
  }
}

// Satellite (c): a slow-loris connection — bytes of a request trickling
// in but never completing — must be reaped by the per-request progress
// deadline even while it keeps "active" by sending a byte now and then.
TEST(NetServerTest, SlowLorisPartialRequestIsReapedByProgressDeadline) {
  NetServerOptions options;
  options.request_progress_timeout_ms = 150;
  ServingFixture f = ServingFixture::Start(2, options);

  const int fd = RawConnect(f.server->port());
  ASSERT_GE(fd, 0);
  // A frame header promising a payload that never arrives, topped up
  // with one stray byte to defeat any idle-only sweep.
  std::string frame(kBinaryPreamble, sizeof(kBinaryPreamble));
  EncodeFrame(MsgType::kPing, std::string(100, 'x'), &frame);
  ASSERT_TRUE(RawSendAll(fd, frame.substr(0, 10)));
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  ASSERT_TRUE(RawSendAll(fd, frame.substr(10, 1)));

  // The server must close the connection once the request has been
  // partial for longer than the progress deadline.
  char buf[64];
  const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
  EXPECT_LE(n, 0);
  ::close(fd);

  // And the server itself is unharmed.
  Result<std::unique_ptr<NetClient>> fresh =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh.value()->Ping().ok());
}

// Deadline propagation, admission side: an HTTP request whose deadline
// has already expired is shed with 504, never queued.
TEST(NetServerTest, ExpiredHttpDeadlineIsShedWith504) {
  ServingFixture f = ServingFixture::Start(2);
  const std::string response = HttpExchange(
      f.server->port(),
      "POST /match HTTP/1.1\r\nHost: t\r\nConnection: close\r\n"
      "X-Deadline-Ms: 0\r\nContent-Length: 2\r\n\r\n{}");
  EXPECT_NE(response.find("504"), std::string::npos) << response;
  EXPECT_NE(response.find("eadline"), std::string::npos) << response;
}

// Deadline propagation, dequeue side: a request that waited out its
// budget in the admission queue is answered DEADLINE_EXCEEDED by the
// worker instead of being executed.
TEST(NetServerTest, QueuedRequestPastItsDeadlineIsShedAtDequeue) {
  NetServerOptions options;
  options.num_workers = 1;
  ServingFixture f = ServingFixture::Start(4, options);

  // Pin the single worker for ~400ms.
  Failpoints::Activate("index.collect", FailpointAction::kDelay, 400);
  std::thread pinner([&] {
    Result<std::unique_ptr<NetClient>> client =
        NetClient::Connect("127.0.0.1", f.server->port());
    ASSERT_TRUE(client.ok());
    std::vector<IdPair> pairs;
    Record q = f.records[0];
    q.id = 900;
    EXPECT_TRUE(client.value()->Match(q, &pairs).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // A second request with a 50ms budget queues behind the pinned batch
  // and expires there.  Raw frames so OUR read has no local deadline.
  const int fd = RawConnect(f.server->port());
  ASSERT_GE(fd, 0);
  std::string wire(kBinaryPreamble, sizeof(kBinaryPreamble));
  std::string payload;
  EncodeDeadlinePayload(50, &payload);
  EncodeFrame(MsgType::kDeadline, payload, &wire);
  Record q = f.records[1];
  q.id = 901;
  payload.clear();
  WireEncodeRecord(q, &payload);
  EncodeFrame(MsgType::kMatch, payload, &wire);
  ASSERT_TRUE(RawSendAll(fd, wire));

  Frame reply;
  ASSERT_TRUE(RawReadFrame(fd, &reply));
  EXPECT_EQ(reply.type, MsgType::kError);
  Status carried = Status::OK();
  ASSERT_TRUE(DecodeErrorPayload(reply.payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kDeadlineExceeded)
      << carried.ToString();
  ::close(fd);
  pinner.join();
  Failpoints::DeactivateAll();
}

// Graceful drain: /readyz flips to 503, new work requests are shed with
// 429, admitted work finishes, and Drain() then reports success.
TEST(NetServerTest, DrainFailsReadinessShedsNewWorkAndFinishesAdmitted) {
  NetServerOptions options;
  options.num_workers = 1;
  ServingFixture f = ServingFixture::Start(4, options);

  EXPECT_NE(HttpGet(f.server->port(), "/readyz").find("200"),
            std::string::npos);

  // Pre-open connections, and exchange one request on each BEFORE the
  // drain: connect() returning only proves the kernel backlog took the
  // handshake, and a draining server stops accepting — a never-accepted
  // fd would hang unanswered.  (Done before the failpoint pins the
  // single worker, so these exchanges return immediately.)
  const int probe_fd = RawConnect(f.server->port());
  const int work_fd = RawConnect(f.server->port());
  ASSERT_GE(probe_fd, 0);
  ASSERT_GE(work_fd, 0);
  {
    std::string preamble_ping(kBinaryPreamble, sizeof(kBinaryPreamble));
    EncodeFrame(MsgType::kPing, {}, &preamble_ping);
    ASSERT_TRUE(RawSendAll(work_fd, preamble_ping));
    Frame pong;
    ASSERT_TRUE(RawReadFrame(work_fd, &pong));
    ASSERT_EQ(pong.type, MsgType::kPong);
  }
  ASSERT_TRUE(RawSendAll(probe_fd,
                         "GET /readyz HTTP/1.1\r\nHost: t\r\n\r\n"));
  {
    // One keep-alive response; readiness still 200 before the drain.
    std::string ready;
    char buf[4096];
    while (ready.find("\r\n\r\nok\n") == std::string::npos) {
      const ssize_t n = ::recv(probe_fd, buf, sizeof(buf), 0);
      ASSERT_GT(n, 0);
      ready.append(buf, static_cast<size_t>(n));
    }
    EXPECT_NE(ready.find("200"), std::string::npos) << ready;
  }

  Failpoints::Activate("index.collect", FailpointAction::kDelay, 400);
  std::atomic<bool> match_ok{false};
  std::thread pinner([&] {
    Result<std::unique_ptr<NetClient>> client =
        NetClient::Connect("127.0.0.1", f.server->port());
    ASSERT_TRUE(client.ok());
    std::vector<IdPair> pairs;
    Record q = f.records[0];
    q.id = 910;
    match_ok.store(client.value()->Match(q, &pairs).ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  std::atomic<bool> drained{false};
  std::thread drainer([&] { drained.store(f.server->Drain(5000)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_TRUE(f.server->draining());

  // Probes still answer — with failed readiness.
  ASSERT_TRUE(RawSendAll(probe_fd,
                         "GET /readyz HTTP/1.1\r\nHost: t\r\n"
                         "Connection: close\r\n\r\n"));
  std::string probe_response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(probe_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    probe_response.append(buf, static_cast<size_t>(n));
  }
  ::close(probe_fd);
  EXPECT_NE(probe_response.find("503"), std::string::npos) << probe_response;

  // New work is refused while draining (the connection already sent its
  // preamble with the pre-drain ping).
  std::string wire;
  std::string payload;
  Record q = f.records[1];
  q.id = 911;
  WireEncodeRecord(q, &payload);
  EncodeFrame(MsgType::kMatch, payload, &wire);
  ASSERT_TRUE(RawSendAll(work_fd, wire));
  Frame reply;
  ASSERT_TRUE(RawReadFrame(work_fd, &reply));
  EXPECT_EQ(reply.type, MsgType::kError);
  Status carried = Status::OK();
  ASSERT_TRUE(DecodeErrorPayload(reply.payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kResourceExhausted)
      << carried.ToString();
  ::close(work_fd);

  drainer.join();
  pinner.join();
  EXPECT_TRUE(drained.load());   // admitted work finished in time
  EXPECT_TRUE(match_ok.load());  // and was answered, not dropped
  Failpoints::DeactivateAll();
}

// Satellite (a): Replica::Stop() must return promptly even when the
// follow thread is deep in a long poll wait (regression: it used to
// sleep the full poll_interval_ms in one blind sleep).
TEST(NetServerTest, ReplicaStopReturnsPromptlyDuringLongPollWait) {
  ServingFixture f = ServingFixture::Start(6);
  const std::string journal_path = TempPath("net_replica_stop.cbvj");
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    f.service->AttachJournal(std::move(journal.value()));
  }
  ReplicaOptions options;
  options.primary_port = f.server->port();
  options.poll_interval_ms = 60 * 1000;  // would stall Stop for a minute
  Result<std::unique_ptr<Replica>> replica = Replica::Start(options);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();
  // Let the follow thread reach its caught-up wait.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));

  const auto begin = std::chrono::steady_clock::now();
  replica.value()->Stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  EXPECT_LT(elapsed, 1000) << "Stop took " << elapsed << "ms";
}

// ...and equally promptly while backing off from a dead primary.
TEST(NetServerTest, ReplicaStopReturnsPromptlyWhileBackingOff) {
  ServingFixture f = ServingFixture::Start(6);
  const std::string journal_path = TempPath("net_replica_stop2.cbvj");
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    f.service->AttachJournal(std::move(journal.value()));
  }
  ReplicaOptions options;
  options.primary_port = f.server->port();
  options.poll_interval_ms = 20;
  options.connect_timeout_ms = 200;
  options.io_timeout_ms = 200;
  options.failure_backoff.base_ms = 10 * 1000;  // long failure waits
  Result<std::unique_ptr<Replica>> replica = Replica::Start(options);
  ASSERT_TRUE(replica.ok()) << replica.status().ToString();

  f.server->Shutdown();  // primary dies; the follower starts failing
  ASSERT_TRUE(WaitUntil([&] {
    return replica.value()->progress().consecutive_failures > 0;
  }));

  const auto begin = std::chrono::steady_clock::now();
  replica.value()->Stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - begin)
                           .count();
  EXPECT_LT(elapsed, 2000) << "Stop took " << elapsed << "ms";
}

TEST(NetServerTest, IdleConnectionsAreSweptAfterTheTimeout) {
  NetServerOptions options;
  options.idle_timeout_ms = 100;
  ServingFixture f = ServingFixture::Start(2, options);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE(client.value()->Ping().ok());

  // The sweep runs every second; well past it the connection is gone.
  std::this_thread::sleep_for(std::chrono::milliseconds(1600));
  EXPECT_FALSE(client.value()->Ping().ok());

  // New connections are of course still welcome.
  Result<std::unique_ptr<NetClient>> fresh =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(fresh.ok());
  EXPECT_TRUE(fresh.value()->Ping().ok());
}

}  // namespace
}  // namespace net
}  // namespace cbvlink
