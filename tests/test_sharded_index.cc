#include "src/service/sharded_index.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <thread>
#include <vector>

#include "src/blocking/record_blocker.h"
#include "src/common/random.h"
#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

BitVector RandomVector(size_t bits, Rng& rng) {
  BitVector bv(bits);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.5)) bv.Set(i);
  }
  return bv;
}

std::vector<EncodedRecord> RandomRecords(size_t n, size_t bits, uint64_t seed) {
  Rng rng(seed);
  std::vector<EncodedRecord> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(EncodedRecord{i, RandomVector(bits, rng)});
  }
  return records;
}

std::vector<RecordId> SortedCandidates(const CandidateSource& source,
                                       const BitVector& probe) {
  std::vector<RecordId> out;
  source.ForEachCandidate(probe, [&](RecordId id) { out.push_back(id); });
  std::sort(out.begin(), out.end());
  return out;
}

ShardedHammingIndex MakeIndex(size_t K, size_t L, size_t bits,
                              const ShardedIndexOptions& options = {},
                              uint64_t seed = 42) {
  Rng rng(seed);
  Result<HammingLshFamily> family =
      HammingLshFamily::CreateFull(K, L, bits, rng);
  EXPECT_TRUE(family.ok());
  Result<ShardedHammingIndex> index =
      ShardedHammingIndex::Create(std::move(family).value(), options);
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

TEST(ShardedIndexTest, ShardCountRoundsUpToPowerOfTwo) {
  ShardedIndexOptions options;
  options.num_shards = 5;
  ShardedHammingIndex index = MakeIndex(4, 6, 64, options);
  EXPECT_EQ(index.num_shards(), 8u);
  options.num_shards = 0;
  EXPECT_EQ(MakeIndex(4, 6, 64, options).num_shards(), 1u);
}

TEST(ShardedIndexTest, MatchesRecordLevelBlockerCandidates) {
  // Built from the same seed, the sharded index and the single-threaded
  // blocker hold identical families and must serve identical candidates.
  const size_t kBits = 64;
  ShardedHammingIndex index = MakeIndex(5, 10, kBits, {}, 42);
  Rng rng(42);
  Result<RecordLevelBlocker> blocker =
      RecordLevelBlocker::CreateWithL(kBits, 5, 10, rng);
  ASSERT_TRUE(blocker.ok());

  const std::vector<EncodedRecord> records = RandomRecords(200, kBits, 7);
  for (const EncodedRecord& r : records) {
    index.Insert(r);
    blocker.value().Insert(r);
  }
  EXPECT_EQ(index.NumEntries(), 200u * 10u);

  Rng probe_rng(99);
  for (int i = 0; i < 20; ++i) {
    const BitVector probe = RandomVector(kBits, probe_rng);
    EXPECT_EQ(SortedCandidates(index, probe),
              SortedCandidates(blocker.value(), probe));
  }
}

TEST(ShardedIndexTest, BucketCapDropsAndFlagsOverflow) {
  ShardedIndexOptions options;
  options.max_bucket_size = 2;
  ShardedHammingIndex index = MakeIndex(4, 3, 32, options);

  // Identical vectors share every bucket; the third insert overflows all
  // three groups' buckets.
  BitVector bits(32);
  bits.Set(1);
  bits.Set(7);
  for (RecordId id = 0; id < 3; ++id) {
    index.Insert(EncodedRecord{id, bits});
  }
  EXPECT_EQ(index.dropped_entries(), 3u);  // one drop per group
  EXPECT_EQ(index.MaxBucketSize(), 2u);

  std::vector<RecordId> candidates;
  bool overflow = false;
  index.Collect(bits, &candidates, &overflow);
  EXPECT_TRUE(overflow);
  EXPECT_EQ(candidates.size(), 6u);  // 2 ids x 3 groups
  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), 2u) ==
              candidates.end());
}

TEST(ShardedIndexTest, CollectHealthPerTableAndOccupancy) {
  ShardedIndexOptions options;
  options.max_bucket_size = 2;
  ShardedHammingIndex index = MakeIndex(4, 3, 32, options);

  BitVector bits(32);
  bits.Set(1);
  bits.Set(7);
  for (RecordId id = 0; id < 3; ++id) {
    index.Insert(EncodedRecord{id, bits});
  }

  const IndexHealth health = index.CollectHealth();
  ASSERT_EQ(health.tables.size(), index.L());
  for (const TableHealth& table : health.tables) {
    // Identical vectors share one bucket per group, capped at 2 entries.
    EXPECT_EQ(table.buckets, 1u);
    EXPECT_EQ(table.entries, 2u);
    EXPECT_EQ(table.max_bucket, 2u);
    EXPECT_EQ(table.overflowed, 1u);
    EXPECT_DOUBLE_EQ(table.mean_bucket, 2.0);
  }
  EXPECT_EQ(health.overflowed_buckets, 3u);
  EXPECT_EQ(health.dropped_entries, 3u);
  // All three buckets have size 2 -> log2 slot 1.
  EXPECT_EQ(health.occupancy[1], 3u);
  EXPECT_EQ(health.occupancy[0], 0u);
}

TEST(ShardedIndexTest, CollectHealthTotalsMatchAggregates) {
  ShardedHammingIndex index = MakeIndex(5, 10, 64, {}, 42);
  const std::vector<EncodedRecord> records = RandomRecords(100, 64, 11);
  for (const EncodedRecord& r : records) index.Insert(r);

  const IndexHealth health = index.CollectHealth();
  size_t buckets = 0, entries = 0, max_bucket = 0;
  for (const TableHealth& table : health.tables) {
    buckets += table.buckets;
    entries += table.entries;
    max_bucket = std::max(max_bucket, table.max_bucket);
  }
  EXPECT_EQ(buckets, index.NumBuckets());
  EXPECT_EQ(entries, records.size() * index.L());
  EXPECT_EQ(max_bucket, index.MaxBucketSize());
  uint64_t occupied = 0;
  for (const uint64_t slot : health.occupancy) occupied += slot;
  EXPECT_EQ(occupied, buckets);  // every bucket lands in exactly one slot
  EXPECT_EQ(health.dropped_entries, 0u);
  EXPECT_EQ(health.overflowed_buckets, 0u);
}

TEST(ShardedIndexTest, ExportRestoreRoundTrip) {
  ShardedIndexOptions options;
  options.max_bucket_size = 4;
  ShardedHammingIndex index = MakeIndex(5, 8, 64, options, 11);
  for (const EncodedRecord& r : RandomRecords(100, 64, 3)) {
    index.Insert(r);
  }
  const std::vector<IndexBucketSnapshot> buckets = index.ExportBuckets();
  EXPECT_GT(buckets.size(), 0u);

  ShardedHammingIndex restored = MakeIndex(5, 8, 64, options, 11);
  for (const IndexBucketSnapshot& bucket : buckets) {
    ASSERT_TRUE(restored.RestoreBucket(bucket).ok());
  }
  EXPECT_EQ(restored.NumBuckets(), index.NumBuckets());
  EXPECT_EQ(restored.NumEntries(), index.NumEntries());
  const std::vector<IndexBucketSnapshot> round = restored.ExportBuckets();
  ASSERT_EQ(round.size(), buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    EXPECT_EQ(round[i].group, buckets[i].group);
    EXPECT_EQ(round[i].key, buckets[i].key);
    EXPECT_EQ(round[i].overflowed, buckets[i].overflowed);
    EXPECT_EQ(round[i].ids, buckets[i].ids);
  }
}

TEST(ShardedIndexTest, RestoreRejectsForeignGroup) {
  ShardedHammingIndex index = MakeIndex(4, 3, 32);
  IndexBucketSnapshot bucket;
  bucket.group = 3;  // L == 3, so valid groups are 0..2
  EXPECT_FALSE(index.RestoreBucket(bucket).ok());
}

TEST(ShardedIndexTest, ConcurrentInsertAndQuery) {
  // Writers insert disjoint id ranges while readers continuously probe;
  // afterwards every inserted record must be findable via its own bits.
  const size_t kBits = 64;
  ShardedHammingIndex index = MakeIndex(5, 10, kBits);
  const std::vector<EncodedRecord> records = RandomRecords(400, kBits, 17);

  constexpr size_t kWriters = 4;
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      for (size_t i = w; i < records.size(); i += kWriters) {
        index.Insert(records[i]);
      }
    });
  }
  std::atomic<uint64_t> observed{0};
  for (size_t r = 0; r < 2; ++r) {
    threads.emplace_back([&] {
      std::vector<RecordId> scratch;
      for (int probe = 0; probe < 50; ++probe) {
        scratch.clear();
        index.Collect(records[probe % records.size()].bits, &scratch, nullptr);
        observed.fetch_add(scratch.size());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(index.NumEntries(), records.size() * index.L());
  for (const EncodedRecord& r : records) {
    std::vector<RecordId> candidates;
    index.Collect(r.bits, &candidates, nullptr);
    EXPECT_TRUE(std::find(candidates.begin(), candidates.end(), r.id) !=
                candidates.end());
  }
}

// --- BulkInsert / BulkRestore determinism.

void ExpectSameSnapshots(const ShardedHammingIndex& actual,
                         const ShardedHammingIndex& expected, size_t threads) {
  EXPECT_EQ(actual.NumBuckets(), expected.NumBuckets());
  EXPECT_EQ(actual.NumEntries(), expected.NumEntries());
  const std::vector<IndexBucketSnapshot> a = actual.ExportBuckets();
  const std::vector<IndexBucketSnapshot> e = expected.ExportBuckets();
  ASSERT_EQ(a.size(), e.size()) << threads << " threads";
  for (size_t i = 0; i < e.size(); ++i) {
    ASSERT_EQ(a[i].group, e[i].group) << "bucket " << i;
    ASSERT_EQ(a[i].key, e[i].key) << "bucket " << i;
    ASSERT_EQ(a[i].overflowed, e[i].overflowed)
        << "bucket " << i << " at " << threads << " threads";
    ASSERT_EQ(a[i].ids, e[i].ids)
        << "bucket " << i << " at " << threads << " threads";
  }
}

TEST(ShardedIndexTest, BulkInsertIdenticalToSerialAtAnyThreadCount) {
  ShardedIndexOptions options;
  options.num_shards = 8;
  const std::vector<EncodedRecord> records = RandomRecords(300, 64, 29);

  ShardedHammingIndex serial = MakeIndex(5, 10, 64, options, 13);
  for (const EncodedRecord& r : records) serial.Insert(r);

  ShardedHammingIndex no_pool = MakeIndex(5, 10, 64, options, 13);
  no_pool.BulkInsert(records);
  ExpectSameSnapshots(no_pool, serial, 0);

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ShardedHammingIndex parallel = MakeIndex(5, 10, 64, options, 13);
    parallel.BulkInsert(records, &pool);
    ExpectSameSnapshots(parallel, serial, threads);
  }
}

TEST(ShardedIndexTest, BulkInsertPreservesBucketCapSemantics) {
  // Overflow flags and drop counters depend on arrival order; the
  // (chunk, record, group) merge must reproduce the serial order even
  // with a tight cap that many records exceed.
  ShardedIndexOptions options;
  options.num_shards = 4;
  options.max_bucket_size = 3;
  BitVector bits(32);
  bits.Set(1);
  std::vector<EncodedRecord> records;
  for (RecordId id = 0; id < 40; ++id) {
    records.push_back(EncodedRecord{id, bits});  // all collide everywhere
  }

  ShardedHammingIndex serial = MakeIndex(4, 6, 32, options, 19);
  for (const EncodedRecord& r : records) serial.Insert(r);
  EXPECT_GT(serial.dropped_entries(), 0u);

  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    ShardedHammingIndex parallel = MakeIndex(4, 6, 32, options, 19);
    parallel.BulkInsert(records, &pool);
    EXPECT_EQ(parallel.dropped_entries(), serial.dropped_entries());
    ExpectSameSnapshots(parallel, serial, threads);
  }
}

TEST(ShardedIndexTest, BulkInsertEmptyAndSingleRecord) {
  ThreadPool pool(4);
  ShardedHammingIndex empty = MakeIndex(4, 6, 32);
  empty.BulkInsert(std::span<const EncodedRecord>{}, &pool);
  EXPECT_EQ(empty.NumEntries(), 0u);

  const std::vector<EncodedRecord> one = RandomRecords(1, 32, 23);
  ShardedHammingIndex serial = MakeIndex(4, 6, 32);
  serial.Insert(one[0]);
  ShardedHammingIndex bulk = MakeIndex(4, 6, 32);
  bulk.BulkInsert(one, &pool);
  ExpectSameSnapshots(bulk, serial, 1);
}

TEST(ShardedIndexTest, BulkRestoreIdenticalToSequentialRestore) {
  ShardedIndexOptions options;
  options.num_shards = 8;
  options.max_bucket_size = 4;
  ShardedHammingIndex index = MakeIndex(5, 8, 64, options, 11);
  for (const EncodedRecord& r : RandomRecords(200, 64, 31)) index.Insert(r);
  const std::vector<IndexBucketSnapshot> buckets = index.ExportBuckets();
  ASSERT_GT(buckets.size(), 0u);

  ShardedHammingIndex sequential = MakeIndex(5, 8, 64, options, 11);
  for (const IndexBucketSnapshot& bucket : buckets) {
    ASSERT_TRUE(sequential.RestoreBucket(bucket).ok());
  }

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    ShardedHammingIndex parallel = MakeIndex(5, 8, 64, options, 11);
    ASSERT_TRUE(parallel.BulkRestore(buckets, &pool).ok());
    ExpectSameSnapshots(parallel, sequential, threads);
  }

  // Null pool: serial fallback, same result.
  ShardedHammingIndex no_pool = MakeIndex(5, 8, 64, options, 11);
  ASSERT_TRUE(no_pool.BulkRestore(buckets, nullptr).ok());
  ExpectSameSnapshots(no_pool, sequential, 0);
}

TEST(ShardedIndexTest, BulkRestoreValidatesBeforeMutating) {
  ShardedHammingIndex index = MakeIndex(4, 3, 32);
  std::vector<IndexBucketSnapshot> buckets(2);
  buckets[0].group = 0;
  buckets[0].key = 7;
  buckets[0].ids = {1, 2};
  buckets[1].group = 9;  // invalid: L == 3
  ThreadPool pool(2);
  EXPECT_FALSE(index.BulkRestore(buckets, &pool).ok());
  // The valid bucket must not have been applied.
  EXPECT_EQ(index.NumEntries(), 0u);
}

}  // namespace
}  // namespace cbvlink
