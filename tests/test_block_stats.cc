#include "src/eval/block_stats.h"

#include <gtest/gtest.h>

namespace cbvlink {
namespace {

TEST(GiniCoefficientTest, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(GiniCoefficient({5}), 0.0);
}

TEST(GiniCoefficientTest, UniformIsZero) {
  EXPECT_DOUBLE_EQ(GiniCoefficient({3, 3, 3, 3}), 0.0);
}

TEST(GiniCoefficientTest, FullConcentrationApproachesOne) {
  // One bucket holds everything among n buckets: G = (n-1)/n.
  EXPECT_NEAR(GiniCoefficient({0, 0, 0, 100}), 0.75, 1e-12);
  std::vector<size_t> sizes(100, 0);
  sizes[0] = 1000;
  EXPECT_NEAR(GiniCoefficient(sizes), 0.99, 1e-12);
}

TEST(GiniCoefficientTest, KnownValue) {
  // Sizes 1,2,3,4: G = (2*(1*1+2*2+3*3+4*4) - 5*10) / (4*10) = 1/4.
  EXPECT_NEAR(GiniCoefficient({1, 2, 3, 4}), 0.25, 1e-12);
  // Order must not matter.
  EXPECT_NEAR(GiniCoefficient({4, 1, 3, 2}), 0.25, 1e-12);
}

TEST(ComputeBucketStatsTest, EmptyTable) {
  BlockingTable table;
  const BucketStats stats = ComputeBucketStats(table);
  EXPECT_EQ(stats.num_buckets, 0u);
  EXPECT_EQ(stats.num_entries, 0u);
  EXPECT_EQ(stats.max_bucket, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_bucket, 0.0);
  EXPECT_DOUBLE_EQ(stats.expected_probe_candidates, 0.0);
}

TEST(ComputeBucketStatsTest, SingleTable) {
  BlockingTable table;
  table.Insert(1, 10);
  table.Insert(1, 11);
  table.Insert(1, 12);
  table.Insert(2, 20);
  const BucketStats stats = ComputeBucketStats(table);
  EXPECT_EQ(stats.num_buckets, 2u);
  EXPECT_EQ(stats.num_entries, 4u);
  EXPECT_EQ(stats.max_bucket, 3u);
  EXPECT_DOUBLE_EQ(stats.mean_bucket, 2.0);
  EXPECT_DOUBLE_EQ(stats.expected_probe_candidates, 9.0 + 1.0);
  EXPECT_GT(stats.gini, 0.0);
}

TEST(ComputeBucketStatsTest, AggregatesAcrossTables) {
  std::vector<BlockingTable> tables(2);
  tables[0].Insert(1, 10);
  tables[0].Insert(1, 11);
  tables[1].Insert(9, 10);
  const BucketStats stats = ComputeBucketStats(tables);
  EXPECT_EQ(stats.num_buckets, 2u);
  EXPECT_EQ(stats.num_entries, 3u);
  EXPECT_EQ(stats.max_bucket, 2u);
  EXPECT_DOUBLE_EQ(stats.expected_probe_candidates, 4.0 + 1.0);
}

TEST(ComputeBucketStatsTest, SkewIsVisibleInGini) {
  // A balanced table vs one giant bucket.
  BlockingTable balanced;
  for (uint64_t k = 0; k < 10; ++k) {
    balanced.Insert(k, k);
    balanced.Insert(k, k + 100);
  }
  BlockingTable skewed;
  for (RecordId id = 0; id < 19; ++id) skewed.Insert(7, id);
  skewed.Insert(8, 99);
  EXPECT_LT(ComputeBucketStats(balanced).gini, 0.05);
  EXPECT_GT(ComputeBucketStats(skewed).gini, 0.4);
}

}  // namespace
}  // namespace cbvlink
