#include "src/rules/probability.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/lsh/params.h"

namespace cbvlink {
namespace {

/// Table 3 NCVR parameters: m_opt = 15/15/68/22, K = 5/5/10 (f4 unused).
std::vector<AttributeLshParams> NcvrParams() {
  return {{15, 5}, {15, 5}, {68, 10}, {22, 5}};
}

/// Table 3 DBLP parameters: m_opt = 14/19/226/8, K = 5/5/12.
std::vector<AttributeLshParams> DblpParams() {
  return {{14, 5}, {19, 5}, {226, 12}, {8, 5}};
}

double PredP(size_t theta, size_t m, size_t K) {
  return std::pow(1.0 - static_cast<double>(theta) / static_cast<double>(m),
                  static_cast<double>(K));
}

TEST(RuleCollisionProbabilityTest, SinglePredicate) {
  const Rule r = Rule::Pred(0, 4);
  Result<double> p = RuleCollisionProbability(r, NcvrParams());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), PredP(4, 15, 5), 1e-12);
}

TEST(RuleCollisionProbabilityTest, AndIsProduct) {
  // Equation 10.
  const Rule r =
      Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  Result<double> p = RuleCollisionProbability(r, NcvrParams());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(),
              PredP(4, 15, 5) * PredP(4, 15, 5) * PredP(8, 68, 10), 1e-12);
}

TEST(RuleCollisionProbabilityTest, OrIsInclusionExclusion) {
  // Equation 11 for n_c = 2.
  const Rule r = Rule::Or({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  const double p1 = PredP(4, 15, 5);
  const double p2 = PredP(4, 15, 5);
  Result<double> p = RuleCollisionProbability(r, NcvrParams());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), p1 + p2 - p1 * p2, 1e-12);
}

TEST(RuleCollisionProbabilityTest, OrGeneralizesByInclusionExclusion) {
  const Rule r =
      Rule::Or({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  const double p1 = PredP(4, 15, 5);
  const double p2 = PredP(4, 15, 5);
  const double p3 = PredP(8, 68, 10);
  Result<double> p = RuleCollisionProbability(r, NcvrParams());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 1.0 - (1.0 - p1) * (1.0 - p2) * (1.0 - p3), 1e-12);
}

TEST(RuleCollisionProbabilityTest, NotContributesCertainty) {
  // A pair satisfying NOT(f2) has no collision obligation in f2's tables.
  const Rule r = Rule::And({Rule::Pred(0, 4), Rule::Not(Rule::Pred(1, 4))});
  Result<double> p = RuleCollisionProbability(r, NcvrParams());
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), PredP(4, 15, 5), 1e-12);
}

TEST(RuleCollisionProbabilityTest, ErrorsPropagate) {
  EXPECT_FALSE(
      RuleCollisionProbability(Rule::Pred(9, 4), NcvrParams()).ok());
  // Threshold above the vector size.
  EXPECT_FALSE(
      RuleCollisionProbability(Rule::Pred(0, 16), NcvrParams()).ok());
  // K == 0.
  std::vector<AttributeLshParams> bad = NcvrParams();
  bad[0].num_base_hashes = 0;
  EXPECT_FALSE(RuleCollisionProbability(Rule::Pred(0, 4), bad).ok());
}

TEST(RuleOptimalGroupsTest, PaperPHNcvrL178) {
  // Section 6.2, scheme PH with rule C1 on NCVR yields L = 178 blocking
  // groups (modulo the final rounding; Eq. 2 gives 178.2 -> 179, and the
  // paper reports 178).
  const Rule c1 =
      Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  Result<size_t> L = RuleOptimalGroups(c1, NcvrParams(), 0.1);
  ASSERT_TRUE(L.ok()) << L.status().ToString();
  EXPECT_NEAR(static_cast<double>(L.value()), 178.0, 1.0);
}

TEST(RuleOptimalGroupsTest, PaperPHDblpL62) {
  // Same configuration on DBLP yields L = 62 (Eq. 2 gives 61.0).
  const Rule c1 =
      Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  Result<size_t> L = RuleOptimalGroups(c1, DblpParams(), 0.1);
  ASSERT_TRUE(L.ok());
  EXPECT_NEAR(static_cast<double>(L.value()), 62.0, 1.0);
}

TEST(RuleOptimalGroupsTest, OrNeedsFewerGroupsThanAnd) {
  // Section 5.4: "The new value of L is larger using an AND rule, and
  // smaller using an OR rule".
  const Rule and_rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  const Rule or_rule = Rule::Or({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  const Rule single = Rule::Pred(0, 4);
  const size_t l_and = RuleOptimalGroups(and_rule, NcvrParams(), 0.1).value();
  const size_t l_or = RuleOptimalGroups(or_rule, NcvrParams(), 0.1).value();
  const size_t l_single = RuleOptimalGroups(single, NcvrParams(), 0.1).value();
  EXPECT_GT(l_and, l_single);
  EXPECT_LE(l_or, l_single);
}

TEST(RuleOptimalGroupsTest, GuaranteeSurvivesComposition) {
  const Rule rule =
      Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  const double p = RuleCollisionProbability(rule, NcvrParams()).value();
  const size_t L = RuleOptimalGroups(rule, NcvrParams(), 0.1).value();
  EXPECT_LE(MissProbability(p, L), 0.1 + 1e-12);
}

}  // namespace
}  // namespace cbvlink
