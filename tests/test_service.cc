#include "src/service/linkage_service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "src/common/failpoint.h"
#include "src/datagen/generators.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {
namespace {

CbvHbConfig BaseConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  config.seed = 5;
  return config;
}

std::vector<Record> GenerateRecords(const NcvrGenerator& gen, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(gen.Generate(i, rng));
  }
  return records;
}

std::vector<IdPair> Sorted(std::vector<IdPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

TEST(ServiceTest, RejectsAttributeLevelBlocking) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.attribute_level_blocking = true;
  config.attribute_K = {5, 5, 10, 5};
  EXPECT_FALSE(LinkageService::Create(std::move(config)).ok());
}

TEST(ServiceTest, NeedsCalibrationOrExplicitB) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = BaseConfig(gen.value().schema());
  config.expected_qgrams.clear();
  EXPECT_FALSE(LinkageService::Create(config).ok());
  const std::vector<Record> sample = GenerateRecords(gen.value(), 50, 1);
  EXPECT_TRUE(LinkageService::Create(config, {}, sample).ok());
}

TEST(ServiceTest, InsertThenMatchFindsDuplicates) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(service.ok());

  const std::vector<Record> records = GenerateRecords(gen.value(), 2, 1);
  for (const Record& r : records) {
    ASSERT_TRUE(service.value()->Insert(r).ok());
  }
  EXPECT_EQ(service.value()->size(), 2u);

  Record query = records[0];
  query.id = 100;
  std::vector<IdPair> out;
  ASSERT_TRUE(service.value()->Match(query, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a_id, records[0].id);
  EXPECT_EQ(out[0].b_id, 100u);

  const ServiceMetrics metrics = service.value()->metrics();
  EXPECT_EQ(metrics.inserts, 2u);
  EXPECT_EQ(metrics.queries, 1u);
  EXPECT_EQ(metrics.matches, 1u);
  EXPECT_GT(metrics.comparisons, 0u);
  EXPECT_GT(metrics.query_seconds, 0.0);
  EXPECT_GT(metrics.QueriesPerSecond(), 0.0);
}

TEST(ServiceTest, WallClockQpsUsesWallSpanNotCpuSeconds) {
  // With T batch workers, summed per-thread busy time is ~T times the
  // wall span; QueriesPerSecond() must divide by the latter.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkageServiceOptions options;
  options.execution = ExecutionOptions::WithThreads(4);
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()), options);
  ASSERT_TRUE(service.ok());

  const std::vector<Record> registry = GenerateRecords(gen.value(), 200, 12);
  ASSERT_TRUE(service.value()->InsertBatch(registry).ok());
  std::vector<IdPair> out;
  ASSERT_TRUE(service.value()->MatchBatch(registry, &out).ok());

  const ServiceMetrics metrics = service.value()->metrics();
  EXPECT_GT(metrics.query_wall_seconds, 0.0);
  EXPECT_GT(metrics.insert_wall_seconds, 0.0);
  EXPECT_GT(metrics.query_seconds, 0.0);
  // The two rates divide by different denominators: QueriesPerSecond()
  // by the wall span, PerThreadQueriesPerSecond() by summed busy time.
  // (The absolute values are timing-dependent; the definitions are not.)
  EXPECT_DOUBLE_EQ(
      metrics.QueriesPerSecond(),
      static_cast<double>(metrics.queries) / metrics.query_wall_seconds);
  EXPECT_DOUBLE_EQ(
      metrics.PerThreadQueriesPerSecond(),
      static_cast<double>(metrics.queries) / metrics.query_seconds);
}

TEST(ServiceTest, SkippedRowsCountedInMetrics) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(service.ok());
  service.value()->RecordSkippedRows(2);
  service.value()->RecordSkippedRows(1);
  EXPECT_EQ(service.value()->metrics().skipped_rows, 3u);
}

TEST(ServiceTest, FillTelemetryExportsGaugesAndFunnelCounters) {
  telemetry::Registry registry;  // private registry: gauge isolation
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(service.ok());

  const std::vector<Record> records = GenerateRecords(gen.value(), 20, 13);
  ASSERT_TRUE(service.value()->InsertBatch(records).ok());
  std::vector<IdPair> out;
  ASSERT_TRUE(service.value()->Match(records[0], &out).ok());

  service.value()->FillTelemetry(&registry);
  EXPECT_EQ(registry.GetGauge("service_records")->Value(), 20.0);
  EXPECT_GT(registry.GetGauge("service_shards")->Value(), 0.0);
  EXPECT_GT(registry.GetGauge("lsh_tables")->Value(), 0.0);
  // Per-table gauges exist for table 0 and the occupancy histogram
  // covers every bucket exactly once.
  EXPECT_GT(registry
                .GetGauge(telemetry::LabeledName("lsh_table_buckets",
                                                 "table", "0"))
                ->Value(),
            0.0);
  double occupied = 0;
  double buckets = 0;
  for (size_t i = 0; i < 16; ++i) {
    occupied += registry
                    .GetGauge(telemetry::LabeledName(
                        "lsh_bucket_occupancy", "size_log2",
                        std::to_string(i)))
                    ->Value();
  }
  const double tables = registry.GetGauge("lsh_tables")->Value();
  for (size_t t = 0; t < static_cast<size_t>(tables); ++t) {
    buckets += registry
                   .GetGauge(telemetry::LabeledName("lsh_table_buckets",
                                                    "table",
                                                    std::to_string(t)))
                   ->Value();
  }
  EXPECT_EQ(occupied, buckets);

  // The match funnel lives in the global registry (resolved at Init).
  const ServiceMetrics metrics = service.value()->metrics();
  EXPECT_GT(metrics.candidate_occurrences, 0u);
  EXPECT_GT(metrics.comparisons, 0u);
  EXPECT_GE(metrics.candidate_occurrences, metrics.matches);
}

TEST(ServiceTest, BatchMatchEqualsSerialMatch) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkageServiceOptions options;
  options.execution = ExecutionOptions::WithThreads(4);
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()), options);
  ASSERT_TRUE(service.ok());

  const std::vector<Record> registry = GenerateRecords(gen.value(), 200, 2);
  ASSERT_TRUE(service.value()->InsertBatch(registry).ok());
  EXPECT_EQ(service.value()->size(), registry.size());

  std::vector<Record> queries;
  for (size_t i = 0; i < 50; ++i) {
    Record q = registry[i];
    q.id = 1000 + i;
    queries.push_back(std::move(q));
  }
  std::vector<IdPair> serial;
  for (const Record& q : queries) {
    ASSERT_TRUE(service.value()->Match(q, &serial).ok());
  }
  std::vector<IdPair> batch;
  ASSERT_TRUE(service.value()->MatchBatch(queries, &batch).ok());
  EXPECT_EQ(Sorted(std::move(batch)), Sorted(std::move(serial)));
}

TEST(ServiceTest, ConcurrentMatchBatchCallsShareThePool) {
  // Batch calls used to serialize on a service-level mutex because
  // ParallelFor could not take concurrent callers; with the per-call
  // completion latch they run the pool together.  Each caller must still
  // get exactly its own results.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkageServiceOptions options;
  options.execution = ExecutionOptions::WithThreads(4);
  Result<std::unique_ptr<LinkageService>> created =
      LinkageService::Create(BaseConfig(gen.value().schema()), options);
  ASSERT_TRUE(created.ok());
  LinkageService& service = *created.value();

  const std::vector<Record> registry = GenerateRecords(gen.value(), 120, 7);
  ASSERT_TRUE(service.InsertBatch(registry).ok());

  constexpr size_t kCallers = 4;
  const size_t per_caller = registry.size() / kCallers;
  std::vector<std::vector<IdPair>> results(kCallers);
  // vector<bool> packs bits; distinct int elements keep the per-thread
  // writes race-free.
  std::vector<int> ok(kCallers, 0);
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      std::vector<Record> queries;
      for (size_t i = c * per_caller; i < (c + 1) * per_caller; ++i) {
        Record q = registry[i];
        q.id = 5000 + i;
        queries.push_back(std::move(q));
      }
      ok[c] = service.MatchBatch(queries, &results[c]).ok() ? 1 : 0;
    });
  }
  for (std::thread& t : callers) t.join();

  for (size_t c = 0; c < kCallers; ++c) {
    EXPECT_TRUE(ok[c]);
    for (size_t i = c * per_caller; i < (c + 1) * per_caller; ++i) {
      const IdPair expected{registry[i].id, 5000 + i};
      EXPECT_TRUE(std::find(results[c].begin(), results[c].end(), expected) !=
                  results[c].end())
          << "caller " << c << " missed its query " << i;
    }
  }
}

TEST(ServiceTest, ConcurrentMatchAndInsertInterleaving) {
  // Eight threads stream duplicate arrivals of disjoint base entities
  // concurrently; every arrival must link back to its pre-inserted base.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<std::unique_ptr<LinkageService>> created =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(created.ok());
  LinkageService& service = *created.value();

  const std::vector<Record> base = GenerateRecords(gen.value(), 80, 3);
  for (const Record& r : base) {
    ASSERT_TRUE(service.Insert(r).ok());
  }

  constexpr size_t kThreads = 8;
  const size_t per_thread = base.size() / kThreads;
  std::vector<std::vector<IdPair>> found(kThreads);
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
        Record arrival = base[i];
        arrival.id = 10000 + i;
        if (!service.MatchAndInsert(arrival, &found[t]).ok()) ++failures[t];
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(service.size(), base.size() * 2);
  for (size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0);
    for (size_t i = t * per_thread; i < (t + 1) * per_thread; ++i) {
      const IdPair expected{base[i].id, 10000 + i};
      EXPECT_TRUE(std::find(found[t].begin(), found[t].end(), expected) !=
                  found[t].end())
          << "arrival " << i << " did not link to its base record";
    }
  }
  const ServiceMetrics metrics = service.metrics();
  EXPECT_EQ(metrics.queries, base.size());
  EXPECT_EQ(metrics.inserts, base.size() * 2);
}

TEST(ServiceTest, SnapshotRestoreRoundTripIdenticalMatches) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<std::unique_ptr<LinkageService>> created =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(created.ok());
  LinkageService& service = *created.value();

  const std::vector<Record> registry = GenerateRecords(gen.value(), 150, 4);
  ASSERT_TRUE(service.InsertBatch(registry).ok());

  std::vector<Record> queries;
  for (size_t i = 0; i < 40; ++i) {
    Record q = registry[i * 3];
    q.id = 5000 + i;
    queries.push_back(std::move(q));
  }
  std::vector<IdPair> before;
  for (const Record& q : queries) {
    ASSERT_TRUE(service.Match(q, &before).ok());
  }

  std::stringstream buffer;
  ASSERT_TRUE(service.SaveSnapshot(buffer).ok());
  Result<ServiceSnapshot> snapshot = ReadServiceSnapshot(buffer);
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().records.size(), registry.size());
  Result<std::unique_ptr<LinkageService>> restored =
      LinkageService::Restore(snapshot.value());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value()->size(), registry.size());
  EXPECT_EQ(restored.value()->blocking_groups(), service.blocking_groups());

  std::vector<IdPair> after;
  for (const Record& q : queries) {
    ASSERT_TRUE(restored.value()->Match(q, &after).ok());
  }
  EXPECT_EQ(Sorted(std::move(after)), Sorted(std::move(before)));

  // The restored service keeps ingesting: a brand-new arrival links to
  // its duplicate inserted after the restore.
  Rng rng(77);
  Record fresh = gen.value().Generate(90000, rng);
  ASSERT_TRUE(restored.value()->Insert(fresh).ok());
  Record again = fresh;
  again.id = 90001;
  std::vector<IdPair> out;
  ASSERT_TRUE(restored.value()->Match(again, &out).ok());
  EXPECT_TRUE(std::find(out.begin(), out.end(),
                        IdPair{90000u, 90001u}) != out.end());
}

// A decoded-but-inconsistent snapshot must be rejected by Restore's
// semantic validation, not acted on.
class RestoreValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<NcvrGenerator> gen = NcvrGenerator::Create();
    ASSERT_TRUE(gen.ok());
    Result<std::unique_ptr<LinkageService>> service =
        LinkageService::Create(BaseConfig(gen.value().schema()));
    ASSERT_TRUE(service.ok());
    for (const Record& r : GenerateRecords(gen.value(), 10, 6)) {
      ASSERT_TRUE(service.value()->Insert(r).ok());
    }
    snapshot_ = service.value()->ExportSnapshot();
    ASSERT_TRUE(LinkageService::Restore(snapshot_).ok())
        << "baseline snapshot must restore before mutation";
  }

  void ExpectRejected(const char* what) {
    const Status st = LinkageService::Restore(snapshot_).status();
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument) << what;
  }

  ServiceSnapshot snapshot_;
};

TEST_F(RestoreValidationTest, DanglingBucketIdRejected) {
  ASSERT_FALSE(snapshot_.buckets.empty());
  snapshot_.buckets[0].ids.push_back(999999);
  ExpectRejected("bucket id not in stored records");
}

TEST_F(RestoreValidationTest, DuplicateRecordIdsRejected) {
  ASSERT_GE(snapshot_.records.size(), 2u);
  snapshot_.records[1].id = snapshot_.records[0].id;
  ExpectRejected("duplicate record ids");
}

TEST_F(RestoreValidationTest, ZeroShardsRejected) {
  snapshot_.num_shards = 0;
  ExpectRejected("num_shards == 0");
}

TEST_F(RestoreValidationTest, NonPowerOfTwoShardsRejected) {
  snapshot_.num_shards = 6;
  ExpectRejected("num_shards not a power of two");
}

TEST_F(RestoreValidationTest, NonFiniteDeltaRejected) {
  snapshot_.delta = std::numeric_limits<double>::quiet_NaN();
  ExpectRejected("NaN delta");
  snapshot_.delta = std::numeric_limits<double>::infinity();
  ExpectRejected("infinite delta");
  snapshot_.delta = 1.5;
  ExpectRejected("delta outside (0, 1)");
}

TEST_F(RestoreValidationTest, BadExpectedQgramsRejected) {
  snapshot_.expected_qgrams.pop_back();
  ExpectRejected("qgram/attribute count mismatch");
  snapshot_.expected_qgrams.push_back(-3.0);
  ExpectRejected("negative expected qgrams");
}

TEST_F(RestoreValidationTest, UnknownOverflowPolicyRejected) {
  snapshot_.overflow_policy = 7;
  ExpectRejected("unknown overflow policy");
}

TEST_F(RestoreValidationTest, RecordWidthMismatchRejected) {
  // Records narrower than what the restored encoder produces cannot be
  // compared against fresh encodings; must fail, not silently mismatch.
  for (EncodedRecord& r : snapshot_.records) {
    r.bits = BitVector(8);
  }
  ExpectRejected("record width != encoder width");
}

TEST(ServiceFailpointTest, InjectedFaultsSurfaceAsStatus) {
  Failpoints::DeactivateAll();
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(service.ok());
  const std::vector<Record> records = GenerateRecords(gen.value(), 2, 9);
  ASSERT_TRUE(service.value()->Insert(records[0]).ok());

  Failpoints::Activate("service.insert", FailpointAction::kError);
  EXPECT_EQ(service.value()->Insert(records[1]).code(),
            StatusCode::kIOError);
  Failpoints::Deactivate("service.insert");
  // The failed insert must not have touched the store.
  EXPECT_EQ(service.value()->size(), 1u);

  std::vector<IdPair> out;
  Failpoints::Activate("service.match", FailpointAction::kError);
  EXPECT_EQ(service.value()->Match(records[0], &out).code(),
            StatusCode::kIOError);
  Failpoints::DeactivateAll();
  EXPECT_TRUE(service.value()->Match(records[0], &out).ok());
}

TEST(ServiceTest, ScanFallbackPreservesRecallUnderBucketCap) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkageServiceOptions options;
  options.max_bucket_size = 1;
  options.overflow_policy = OverflowPolicy::kScanFallback;
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()), options);
  ASSERT_TRUE(service.ok());

  // Three identical records share every bucket; the cap keeps only the
  // first, so the other two are reachable only through the fallback scan.
  Rng rng(8);
  const Record entity = gen.value().Generate(0, rng);
  for (RecordId id = 1; id <= 3; ++id) {
    Record copy = entity;
    copy.id = id;
    ASSERT_TRUE(service.value()->Insert(copy).ok());
  }
  Record query = entity;
  query.id = 42;
  std::vector<IdPair> out;
  ASSERT_TRUE(service.value()->Match(query, &out).ok());
  EXPECT_EQ(Sorted(std::move(out)),
            (std::vector<IdPair>{{1, 42}, {2, 42}, {3, 42}}));
  const ServiceMetrics metrics = service.value()->metrics();
  EXPECT_GT(metrics.scan_fallbacks, 0u);
  EXPECT_GT(metrics.dropped_entries, 0u);
}

TEST(ServiceTest, TruncatePolicyBoundsWorkUnderBucketCap) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkageServiceOptions options;
  options.max_bucket_size = 1;
  options.overflow_policy = OverflowPolicy::kTruncate;
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.value().schema()), options);
  ASSERT_TRUE(service.ok());

  Rng rng(8);
  const Record entity = gen.value().Generate(0, rng);
  for (RecordId id = 1; id <= 3; ++id) {
    Record copy = entity;
    copy.id = id;
    ASSERT_TRUE(service.value()->Insert(copy).ok());
  }
  Record query = entity;
  query.id = 42;
  std::vector<IdPair> out;
  ASSERT_TRUE(service.value()->Match(query, &out).ok());
  EXPECT_EQ(out, (std::vector<IdPair>{{1, 42}}));
  EXPECT_EQ(service.value()->metrics().scan_fallbacks, 0u);
}

}  // namespace
}  // namespace cbvlink
