#include "src/common/str.h"

#include <gtest/gtest.h>

namespace cbvlink {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(StrFormat("plain"), "plain");
  EXPECT_EQ(StrFormat("%s", ""), "");
}

TEST(StrFormatTest, LongOutput) {
  const std::string long_arg(5000, 'z');
  const std::string out = StrFormat("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(StrJoinTest, JoinsWithSeparator) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({"only"}, ","), "only");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"", ""}, "-"), "-");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(StrSplit("noseparator", ','),
            (std::vector<std::string>{"noseparator"}));
}

TEST(ToUpperAsciiTest, UppercasesOnlyAsciiLetters) {
  EXPECT_EQ(ToUpperAscii("Jones"), "JONES");
  EXPECT_EQ(ToUpperAscii("a1b2-c"), "A1B2-C");
  EXPECT_EQ(ToUpperAscii(""), "");
  EXPECT_EQ(ToUpperAscii("ALREADY"), "ALREADY");
}

TEST(StripAsciiWhitespaceTest, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  x  "), "x");
  EXPECT_EQ(StripAsciiWhitespace("\t\na b\r\n"), "a b");
  EXPECT_EQ(StripAsciiWhitespace("none"), "none");
  EXPECT_EQ(StripAsciiWhitespace("   "), "");
  EXPECT_EQ(StripAsciiWhitespace(""), "");
}

}  // namespace
}  // namespace cbvlink
