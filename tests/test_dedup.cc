#include "src/linkage/dedup.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/datagen/generators.h"
#include "src/datagen/perturbator.h"

namespace cbvlink {
namespace {

CbvHbConfig DedupConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 3;
  return config;
}

TEST(DedupTest, CleanDataSetHasOnlySingletons) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(1);
  std::vector<Record> records;
  // Force distinct records by regenerating on (unlikely) collisions.
  for (size_t i = 0; i < 100; ++i) {
    Record r = gen.value().Generate(i, rng);
    records.push_back(std::move(r));
  }
  Result<DedupResult> result =
      FindDuplicates(records, DedupConfig(gen.value().schema()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Generated records can occasionally collide on all four attributes;
  // allow a couple of genuine duplicates but no mass merging.
  EXPECT_GE(result.value().clusters.size(), 95u);
}

TEST(DedupTest, PlantedDuplicatesAreClustered) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(2);
  std::vector<Record> records;
  for (size_t i = 0; i < 200; ++i) {
    records.push_back(gen.value().Generate(i, rng));
  }
  // Plant a triple: ids 500, 501, 502 are typo-variants of record 0.
  const PerturbationScheme scheme = PerturbationScheme::Light();
  for (RecordId id = 500; id < 503; ++id) {
    Result<Record> dup = Perturbator::Apply(records[0], scheme, rng, nullptr);
    ASSERT_TRUE(dup.ok());
    Record r = std::move(dup).value();
    r.id = id;
    records.push_back(std::move(r));
  }

  Result<DedupResult> result =
      FindDuplicates(records, DedupConfig(gen.value().schema()));
  ASSERT_TRUE(result.ok());

  // The cluster containing record 0 should include all three variants
  // (each variant is 1 edit from the original; variants are <= 2 edits
  // apart, still within theta = 4 bits per attribute most of the time —
  // require at least the originals' links).
  const std::vector<RecordId>* cluster0 = nullptr;
  for (const auto& cluster : result.value().clusters) {
    if (std::find(cluster.begin(), cluster.end(), 0u) != cluster.end()) {
      cluster0 = &cluster;
    }
  }
  ASSERT_NE(cluster0, nullptr);
  EXPECT_GE(cluster0->size(), 3u);
  for (RecordId id : {500u, 501u}) {
    const bool in_cluster0 =
        std::find(cluster0->begin(), cluster0->end(), id) != cluster0->end();
    EXPECT_TRUE(in_cluster0) << "variant " << id;
  }
}

TEST(DedupTest, PairsAreUnorderedAndUnique) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(3);
  std::vector<Record> records;
  for (size_t i = 0; i < 50; ++i) {
    records.push_back(gen.value().Generate(i % 10, rng));  // heavy dups
    records.back().id = i;
  }
  Result<DedupResult> result =
      FindDuplicates(records, DedupConfig(gen.value().schema()));
  ASSERT_TRUE(result.ok());
  std::set<std::pair<RecordId, RecordId>> seen;
  for (const IdPair& pair : result.value().duplicate_pairs) {
    EXPECT_NE(pair.a_id, pair.b_id);
    const auto key = std::minmax(pair.a_id, pair.b_id);
    EXPECT_TRUE(seen.insert(key).second)
        << pair.a_id << "," << pair.b_id << " reported twice";
  }
}

TEST(DedupTest, ClustersPartitionTheIds) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(4);
  std::vector<Record> records;
  for (size_t i = 0; i < 120; ++i) {
    records.push_back(gen.value().Generate(i % 40, rng));
    records.back().id = i;
  }
  Result<DedupResult> result =
      FindDuplicates(records, DedupConfig(gen.value().schema()));
  ASSERT_TRUE(result.ok());
  std::set<RecordId> covered;
  for (const auto& cluster : result.value().clusters) {
    for (RecordId id : cluster) {
      EXPECT_TRUE(covered.insert(id).second) << id << " in two clusters";
    }
  }
  EXPECT_EQ(covered.size(), records.size());
}

TEST(DedupTest, PropagatesConfigErrors) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  CbvHbConfig config = DedupConfig(gen.value().schema());
  config.rule = Rule::Pred(9, 4);
  Rng rng(5);
  std::vector<Record> records{gen.value().Generate(0, rng)};
  EXPECT_FALSE(FindDuplicates(records, config).ok());
}

}  // namespace
}  // namespace cbvlink
