#include "src/text/alphabet.h"

#include <gtest/gtest.h>

#include "src/text/normalize.h"

namespace cbvlink {
namespace {

TEST(AlphabetTest, UppercaseHas26Symbols) {
  const Alphabet& s = Alphabet::Uppercase();
  EXPECT_EQ(s.size(), 26u);
  EXPECT_EQ(s.Order('A'), 0);
  EXPECT_EQ(s.Order('Z'), 25);
  EXPECT_EQ(s.Order('J'), 9);
  EXPECT_EQ(s.Order('O'), 14);
  EXPECT_FALSE(s.Contains('_'));
  EXPECT_FALSE(s.Contains('a'));
  EXPECT_FALSE(s.Contains('0'));
}

TEST(AlphabetTest, UppercasePaddedHas27Symbols) {
  const Alphabet& s = Alphabet::UppercasePadded();
  EXPECT_EQ(s.size(), 27u);
  EXPECT_TRUE(s.Contains(kPadChar));
  EXPECT_EQ(s.Order(kPadChar), 26);
}

TEST(AlphabetTest, AlphanumericCoversDigitsAndSpace) {
  const Alphabet& s = Alphabet::Alphanumeric();
  EXPECT_EQ(s.size(), 38u);  // 26 letters + 10 digits + space + pad
  EXPECT_TRUE(s.Contains('0'));
  EXPECT_TRUE(s.Contains('9'));
  EXPECT_TRUE(s.Contains(' '));
  EXPECT_TRUE(s.Contains(kPadChar));
}

TEST(AlphabetTest, CustomAlphabetKeepsFirstOccurrence) {
  const Alphabet s("ABA");
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.Order('A'), 0);
  EXPECT_EQ(s.Order('B'), 1);
}

TEST(AlphabetTest, OrderOfMissingSymbolIsNegative) {
  const Alphabet s("XY");
  EXPECT_EQ(s.Order('Z'), -1);
  EXPECT_EQ(s.Order('\0'), -1);
}

TEST(AlphabetTest, NumQGramsMatchesPaperSizes) {
  // The paper's bigram vector size m = 26^2 = 676 (Figure 3 uses m = 676).
  EXPECT_EQ(Alphabet::Uppercase().NumQGrams(2), 676u);
  EXPECT_EQ(Alphabet::Uppercase().NumQGrams(3), 17576u);
  EXPECT_EQ(Alphabet::UppercasePadded().NumQGrams(2), 729u);
  EXPECT_EQ(Alphabet::Uppercase().NumQGrams(0), 1u);
}

TEST(NormalizeTest, UppercasesAndFilters) {
  EXPECT_EQ(Normalize("Jones", Alphabet::Uppercase()), "JONES");
  EXPECT_EQ(Normalize("o'neil-smith", Alphabet::Uppercase()), "ONEILSMITH");
  EXPECT_EQ(Normalize("123 Main St", Alphabet::Uppercase()), "MAINST");
  EXPECT_EQ(Normalize("123 Main St", Alphabet::Alphanumeric()),
            "123 MAIN ST");
}

TEST(NormalizeTest, PaddingCharIsNeverEmitted) {
  EXPECT_EQ(Normalize("A_B", Alphabet::UppercasePadded()), "AB");
}

TEST(NormalizeTest, EmptyAndAllFiltered) {
  EXPECT_EQ(Normalize("", Alphabet::Uppercase()), "");
  EXPECT_EQ(Normalize("!!!", Alphabet::Uppercase()), "");
}

}  // namespace
}  // namespace cbvlink
