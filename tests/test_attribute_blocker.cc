#include "src/blocking/attribute_blocker.h"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <vector>

#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

/// NCVR-shaped layout: 15 + 15 + 68 + 22 = 120 bits.
RecordLayout NcvrLayout() {
  RecordLayout layout;
  layout.Add(15);
  layout.Add(15);
  layout.Add(68);
  layout.Add(22);
  return layout;
}

AttributeBlockerOptions DefaultOptions() {
  AttributeBlockerOptions options;
  options.attribute_K = {5, 5, 10, 5};
  options.delta = 0.1;
  return options;
}

EncodedRecord MakeRecord(RecordId id, const BitVector& bits) {
  return EncodedRecord{id, bits};
}

/// A dense deterministic base vector.
BitVector BaseVector() {
  BitVector bv(120);
  for (size_t i = 0; i < 120; i += 3) bv.Set(i);
  return bv;
}

/// Flips `n` bits of `bv` inside [offset, offset+size).
BitVector FlipInSegment(BitVector bv, size_t offset, size_t size, size_t n,
                        Rng& rng) {
  for (size_t i = 0; i < n; ++i) {
    const size_t pos = offset + rng.Below(size);
    if (bv.Test(pos)) {
      bv.Clear(pos);
    } else {
      bv.Set(pos);
    }
  }
  return bv;
}

std::set<RecordId> Candidates(const AttributeLevelBlocker& blocker,
                              const BitVector& probe) {
  std::set<RecordId> out;
  blocker.ForEachCandidate(probe, [&](RecordId id) { out.insert(id); });
  return out;
}

TEST(AttributeLevelBlockerTest, CreateValidatesInputs) {
  Rng rng(1);
  const RecordLayout layout = NcvrLayout();
  AttributeBlockerOptions options = DefaultOptions();
  // Rule referencing attribute 9 of 4.
  EXPECT_FALSE(
      AttributeLevelBlocker::Create(Rule::Pred(9, 4), layout, options, rng)
          .ok());
  // K vector of wrong length.
  options.attribute_K = {5, 5};
  EXPECT_FALSE(
      AttributeLevelBlocker::Create(Rule::Pred(0, 4), layout, options, rng)
          .ok());
  // Bare NOT has no positive component.
  options = DefaultOptions();
  EXPECT_FALSE(AttributeLevelBlocker::Create(Rule::Not(Rule::Pred(0, 4)),
                                             layout, options, rng)
                   .ok());
}

TEST(AttributeLevelBlockerTest, PurelyNegativeOrBranchRejected) {
  // f1 OR NOT f2 is non-blockable: pairs satisfying only the NOT branch
  // can never be generated.
  Rng rng(20);
  const Rule rule = Rule::Or({Rule::Pred(0, 4), Rule::Not(Rule::Pred(1, 4))});
  Result<AttributeLevelBlocker> blocker = AttributeLevelBlocker::Create(
      rule, NcvrLayout(), DefaultOptions(), rng);
  EXPECT_FALSE(blocker.ok());
  EXPECT_EQ(blocker.status().code(), StatusCode::kInvalidArgument);

  // Nested inside an AND, the same OR must still be rejected.
  const Rule nested = Rule::And(
      {Rule::Pred(2, 8),
       Rule::Or({Rule::Pred(0, 4), Rule::Not(Rule::Pred(1, 4))})});
  EXPECT_FALSE(AttributeLevelBlocker::Create(nested, NcvrLayout(),
                                             DefaultOptions(), rng)
                   .ok());

  // An OR branch that is an AND containing a NOT plus a positive
  // predicate IS blockable (the positive conjunct generates).
  const Rule fine = Rule::Or(
      {Rule::Pred(2, 8),
       Rule::And({Rule::Pred(0, 4), Rule::Not(Rule::Pred(1, 4))})});
  EXPECT_TRUE(AttributeLevelBlocker::Create(fine, NcvrLayout(),
                                            DefaultOptions(), rng)
                  .ok());
}

TEST(AttributeLevelBlockerTest, AndRuleBuildsOneStructure) {
  Rng rng(2);
  const Rule c1 =
      Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  Result<AttributeLevelBlocker> blocker =
      AttributeLevelBlocker::Create(c1, NcvrLayout(), DefaultOptions(), rng);
  ASSERT_TRUE(blocker.ok()) << blocker.status().ToString();
  EXPECT_EQ(blocker.value().num_structures(), 1u);
  // Paper PH on NCVR: L ~ 178.
  EXPECT_NEAR(static_cast<double>(blocker.value().structure_L(0)), 178.0, 1.0);
  EXPECT_EQ(blocker.value().TotalTables(), blocker.value().structure_L(0));
}

TEST(AttributeLevelBlockerTest, OrOfPredicatesBuildsOneOrStructure) {
  Rng rng(3);
  const Rule rule = Rule::Or({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  Result<AttributeLevelBlocker> blocker = AttributeLevelBlocker::Create(
      rule, NcvrLayout(), DefaultOptions(), rng);
  ASSERT_TRUE(blocker.ok());
  EXPECT_EQ(blocker.value().num_structures(), 1u);
  // OR structure: n_c tables per group (Definition 5 space accounting).
  EXPECT_EQ(blocker.value().TotalTables(),
            2 * blocker.value().structure_L(0));
}

TEST(AttributeLevelBlockerTest, CompoundRuleBuildsMultipleStructures) {
  Rng rng(4);
  // C2 of Section 6.2: (f1 AND f2) OR f3.
  const Rule c2 = Rule::Or(
      {Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)}), Rule::Pred(2, 8)});
  Result<AttributeLevelBlocker> blocker = AttributeLevelBlocker::Create(
      c2, NcvrLayout(), DefaultOptions(), rng);
  ASSERT_TRUE(blocker.ok());
  EXPECT_EQ(blocker.value().num_structures(), 2u);
}

TEST(AttributeLevelBlockerTest, IdenticalVectorsAlwaysFormulated) {
  Rng rng(5);
  const Rule c1 = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  AttributeLevelBlocker blocker =
      AttributeLevelBlocker::Create(c1, NcvrLayout(), DefaultOptions(), rng)
          .value();
  const BitVector base = BaseVector();
  blocker.Insert(MakeRecord(7, base));
  EXPECT_TRUE(Candidates(blocker, base).contains(7));
  EXPECT_TRUE(blocker.FormulatedByRule(base, base));
}

TEST(AttributeLevelBlockerTest, WithinThresholdPairsFoundReliably) {
  // A pair within every attribute threshold must be formulated with
  // frequency >= 1 - delta (Eq. 2 with the Eq. 10 composite).
  Rng data_rng(6);
  size_t found = 0;
  constexpr size_t kRounds = 120;
  for (size_t round = 0; round < kRounds; ++round) {
    Rng rng(100 + round);
    const Rule c1 = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)});
    AttributeLevelBlocker blocker =
        AttributeLevelBlocker::Create(c1, NcvrLayout(), DefaultOptions(), rng)
            .value();
    const BitVector a = BaseVector();
    BitVector b = FlipInSegment(a, 0, 15, 2, data_rng);     // u^(f1) = 2
    b = FlipInSegment(std::move(b), 15, 15, 2, data_rng);   // u^(f2) = 2
    blocker.Insert(MakeRecord(1, a));
    if (Candidates(blocker, b).contains(1)) ++found;
  }
  EXPECT_GE(static_cast<double>(found) / kRounds, 0.88);
}

TEST(AttributeLevelBlockerTest, NotRulePrunesMatchingSecondAttribute) {
  // C3 = f1 AND NOT f2: a pair whose f2 segments are identical collides
  // in f2's structure in every group, so it must never be emitted.
  Rng rng(7);
  const Rule c3 = Rule::And({Rule::Pred(0, 4), Rule::Not(Rule::Pred(1, 4))});
  AttributeLevelBlocker blocker =
      AttributeLevelBlocker::Create(c3, NcvrLayout(), DefaultOptions(), rng)
          .value();
  const BitVector a = BaseVector();
  blocker.Insert(MakeRecord(1, a));
  // Probe identical in f2 (and f1): excluded by the NOT.
  EXPECT_FALSE(Candidates(blocker, a).contains(1));
  EXPECT_FALSE(blocker.FormulatedByRule(a, a));

  // Probe with f2 far away but f1 identical: should be emitted.
  Rng flip(8);
  const BitVector probe = FlipInSegment(a, 15, 15, 14, flip);
  EXPECT_TRUE(Candidates(blocker, probe).contains(1));
}

TEST(AttributeLevelBlockerTest, OrRuleFindsPairsMatchingEitherSide) {
  Rng rng(9);
  const Rule rule = Rule::Or({Rule::Pred(0, 2), Rule::Pred(2, 4)});
  AttributeLevelBlocker blocker =
      AttributeLevelBlocker::Create(rule, NcvrLayout(), DefaultOptions(), rng)
          .value();
  const BitVector a = BaseVector();
  blocker.Insert(MakeRecord(1, a));

  // Destroy f1 entirely but keep f3 identical: the OR should still fire.
  Rng flip(10);
  const BitVector probe = FlipInSegment(a, 0, 15, 15, flip);
  EXPECT_TRUE(Candidates(blocker, probe).contains(1));
}

TEST(AttributeLevelBlockerTest, CompoundAndOfStructuresRequiresBoth) {
  Rng rng(11);
  // (f1 OR f2) AND (f3 OR f4) — the paper's Section 5.4 C2 shape.
  const Rule rule = Rule::And(
      {Rule::Or({Rule::Pred(0, 2), Rule::Pred(1, 2)}),
       Rule::Or({Rule::Pred(2, 4), Rule::Pred(3, 2)})});
  AttributeLevelBlocker blocker =
      AttributeLevelBlocker::Create(rule, NcvrLayout(), DefaultOptions(), rng)
          .value();
  EXPECT_EQ(blocker.num_structures(), 2u);
  const BitVector a = BaseVector();
  blocker.Insert(MakeRecord(1, a));

  // Identical probe satisfies both OR structures.
  EXPECT_TRUE(blocker.FormulatedByRule(a, a));
  EXPECT_TRUE(Candidates(blocker, a).contains(1));

  // Destroy f3 AND f4: second structure cannot collide reliably; pair
  // should mostly disappear.  (f1, f2 intact.)
  Rng flip(12);
  BitVector probe = FlipInSegment(a, 30, 68, 60, flip);
  probe = FlipInSegment(std::move(probe), 98, 22, 20, flip);
  EXPECT_FALSE(blocker.FormulatedByRule(a, probe));
  EXPECT_FALSE(Candidates(blocker, probe).contains(1));
}

TEST(AttributeLevelBlockerTest, IndexRetainsVectorsForMembership) {
  Rng rng(13);
  const Rule rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  AttributeLevelBlocker blocker =
      AttributeLevelBlocker::Create(rule, NcvrLayout(), DefaultOptions(), rng)
          .value();
  std::vector<EncodedRecord> records;
  records.push_back(MakeRecord(1, BaseVector()));
  records.push_back(MakeRecord(2, BaseVector()));
  blocker.Index(records);
  EXPECT_TRUE(Candidates(blocker, BaseVector()).contains(1));
  EXPECT_TRUE(Candidates(blocker, BaseVector()).contains(2));
}

// --- BulkInsert determinism: tables and retained vectors identical to
// Index() at any thread count.  The structures' tables are private, so
// equivalence is asserted through the full candidate-emission sequence
// (which exposes bucket contents *and* per-bucket id order) plus
// FormulatedByRule (which exposes the retained vector map).

TEST(AttributeLevelBlockerBulkInsertTest, IdenticalToIndexAtAnyThreadCount) {
  // C2 shape: one AND structure and one plain predicate structure, so
  // both compound-key and single-attribute phase-1 paths run.
  const Rule rule = Rule::Or(
      {Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)}), Rule::Pred(2, 8)});
  const auto make_blocker = [&] {
    Rng rng(41);
    return AttributeLevelBlocker::Create(rule, NcvrLayout(), DefaultOptions(),
                                         rng)
        .value();
  };

  // Clustered records: perturbations of a few base vectors, so buckets
  // hold several ids and id order inside a bucket matters.
  Rng data_rng(42);
  std::vector<EncodedRecord> records;
  for (RecordId id = 0; id < 120; ++id) {
    BitVector bv = BaseVector();
    bv = FlipInSegment(std::move(bv), 0, 15, id % 3, data_rng);
    bv = FlipInSegment(std::move(bv), 30, 68, id % 5, data_rng);
    records.push_back(MakeRecord(id, bv));
  }
  std::vector<BitVector> probes;
  for (size_t i = 0; i < 40; ++i) {
    probes.push_back(FlipInSegment(BaseVector(), 0, 120, i % 4, data_rng));
  }

  AttributeLevelBlocker serial = make_blocker();
  serial.Index(records);
  const auto emission = [&](const AttributeLevelBlocker& blocker) {
    std::vector<RecordId> out;
    for (const BitVector& probe : probes) {
      blocker.ForEachCandidate(probe, [&](RecordId id) { out.push_back(id); });
    }
    return out;
  };
  const std::vector<RecordId> serial_emission = emission(serial);
  EXPECT_FALSE(serial_emission.empty());

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    AttributeLevelBlocker parallel = make_blocker();
    parallel.BulkInsert(records, &pool);
    EXPECT_EQ(emission(parallel), serial_emission)
        << "candidate stream diverges at " << threads << " threads";
    for (const EncodedRecord& r : records) {
      ASSERT_EQ(parallel.FormulatedByRule(records[0].bits, r.bits),
                serial.FormulatedByRule(records[0].bits, r.bits));
    }
  }
}

TEST(AttributeLevelBlockerBulkInsertTest, EmptyAndAppendInputs) {
  const Rule rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  const auto make_blocker = [&] {
    Rng rng(43);
    return AttributeLevelBlocker::Create(rule, NcvrLayout(), DefaultOptions(),
                                         rng)
        .value();
  };
  ThreadPool pool(4);

  AttributeLevelBlocker empty = make_blocker();
  empty.BulkInsert(std::span<const EncodedRecord>{}, &pool);
  EXPECT_TRUE(Candidates(empty, BaseVector()).empty());

  // Two bulk batches behave like one Index over the concatenation.
  std::vector<EncodedRecord> all;
  Rng data_rng(44);
  for (RecordId id = 0; id < 60; ++id) {
    all.push_back(
        MakeRecord(id, FlipInSegment(BaseVector(), 0, 120, id % 3, data_rng)));
  }
  AttributeLevelBlocker serial = make_blocker();
  serial.Index(all);

  AttributeLevelBlocker parallel = make_blocker();
  const std::span<const EncodedRecord> span(all);
  parallel.BulkInsert(span.subspan(0, 25), &pool);
  parallel.BulkInsert(span.subspan(25), &pool);
  for (const EncodedRecord& r : all) {
    ASSERT_EQ(Candidates(parallel, r.bits), Candidates(serial, r.bits));
  }
}

}  // namespace
}  // namespace cbvlink
