// Mutation-lifecycle tests (DESIGN.md §15): delete/update semantics,
// tombstone persistence through snapshot v3 and journal replay, the
// byte-identity of match output across compaction, and the concurrent
// match + delete + compaction drill the TSan job runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/mutation.h"
#include "src/datagen/generators.h"
#include "src/io/journal.h"
#include "src/io/serialization.h"
#include "src/service/linkage_service.h"

namespace cbvlink {
namespace {

CbvHbConfig BaseConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  config.seed = 5;
  return config;
}

std::vector<Record> GenerateRecords(const NcvrGenerator& gen, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(gen.Generate(i, rng));
  }
  return records;
}

std::vector<IdPair> Sorted(std::vector<IdPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

std::unique_ptr<LinkageService> MakeService(
    const NcvrGenerator& gen, LinkageServiceOptions options = {}) {
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(gen.schema()), options);
  EXPECT_TRUE(service.ok()) << service.status().ToString();
  return std::move(service).value();
}

/// Matches a copy of `record` under a fresh query id.
std::vector<IdPair> MatchOne(const LinkageService& service,
                             const Record& record, RecordId query_id = 9000) {
  Record query = record;
  query.id = query_id;
  std::vector<IdPair> out;
  EXPECT_TRUE(service.Match(query, &out).ok());
  return out;
}

TEST(MutationTest, DeleteHidesRecordImmediately) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<LinkageService> service = MakeService(gen.value());
  const std::vector<Record> records = GenerateRecords(gen.value(), 3, 1);
  for (const Record& r : records) ASSERT_TRUE(service->Insert(r).ok());

  ASSERT_EQ(MatchOne(*service, records[0]).size(), 1u);
  ASSERT_TRUE(service->Delete(records[0].id).ok());

  EXPECT_TRUE(MatchOne(*service, records[0]).empty());
  EXPECT_FALSE(service->Contains(records[0].id));
  EXPECT_EQ(service->size(), 2u);
  EXPECT_EQ(service->tombstone_count(), 1u);

  // A second delete of the same id — and of a never-seen id — is NotFound.
  EXPECT_EQ(service->Delete(records[0].id).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->Delete(424242).code(), StatusCode::kNotFound);

  const ServiceMetrics metrics = service->metrics();
  EXPECT_EQ(metrics.deletes, 1u);
  EXPECT_EQ(metrics.tombstones, 1u);
  EXPECT_EQ(metrics.live_records, 2u);
}

TEST(MutationTest, UpdateReplacesFieldsUnderTheSameId) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<LinkageService> service = MakeService(gen.value());
  const std::vector<Record> records = GenerateRecords(gen.value(), 2, 1);
  ASSERT_TRUE(service->Insert(records[0]).ok());

  // Rewrite record 0's fields to record 1's: queries for the new fields
  // must link to the original id, queries for the old fields must not.
  Record updated = records[1];
  updated.id = records[0].id;
  ASSERT_TRUE(service->Update(updated).ok());

  std::vector<IdPair> hits = MatchOne(*service, records[1]);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].a_id, records[0].id);
  EXPECT_TRUE(MatchOne(*service, records[0]).empty());

  // Updating an id that was never inserted is NotFound (the upsert
  // behavior is reserved for the replay path).
  Record unknown = records[1];
  unknown.id = 777;
  EXPECT_EQ(service->Update(unknown).code(), StatusCode::kNotFound);
  EXPECT_EQ(service->metrics().updates, 1u);
}

TEST(MutationTest, InsertResurrectsATombstonedId) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<LinkageService> service = MakeService(gen.value());
  const std::vector<Record> records = GenerateRecords(gen.value(), 2, 1);
  ASSERT_TRUE(service->Insert(records[0]).ok());
  ASSERT_TRUE(service->Delete(records[0].id).ok());
  ASSERT_EQ(service->tombstone_count(), 1u);

  ASSERT_TRUE(service->Insert(records[0]).ok());
  EXPECT_TRUE(service->Contains(records[0].id));
  EXPECT_EQ(service->tombstone_count(), 0u);
  EXPECT_EQ(MatchOne(*service, records[0]).size(), 1u);
}

TEST(MutationTest, SnapshotV3RoundTripsTombstonesAndSequence) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<LinkageService> service = MakeService(gen.value());
  const std::vector<Record> records = GenerateRecords(gen.value(), 10, 1);
  for (const Record& r : records) ASSERT_TRUE(service->Insert(r).ok());
  ASSERT_TRUE(service->Delete(records[2].id).ok());
  ASSERT_TRUE(service->Delete(records[5].id).ok());
  Record updated = records[1];
  updated.fields = records[9].fields;
  ASSERT_TRUE(service->Update(updated).ok());
  const uint64_t sequence = service->last_sequence();
  ASSERT_EQ(sequence, 3u);

  const ServiceSnapshot snapshot = service->ExportSnapshot();
  EXPECT_EQ(snapshot.tombstones.size(), 2u);
  EXPECT_EQ(snapshot.last_sequence, sequence);

  std::stringstream stream;
  ASSERT_TRUE(WriteServiceSnapshot(snapshot, stream).ok());
  Result<ServiceSnapshot> reread = ReadServiceSnapshot(stream);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  std::vector<RecordId> tombstones = reread.value().tombstones;
  std::sort(tombstones.begin(), tombstones.end());
  std::vector<RecordId> expected_dead = {records[2].id, records[5].id};
  std::sort(expected_dead.begin(), expected_dead.end());
  EXPECT_EQ(tombstones, expected_dead);
  EXPECT_EQ(reread.value().last_sequence, sequence);

  Result<std::unique_ptr<LinkageService>> restored =
      LinkageService::Restore(reread.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->size(), 8u);
  EXPECT_EQ(restored.value()->tombstone_count(), 2u);
  EXPECT_EQ(restored.value()->last_sequence(), sequence);
  EXPECT_FALSE(restored.value()->Contains(records[2].id));
  // Restored match output equals the live service's for every survivor.
  for (const Record& r : records) {
    EXPECT_EQ(MatchOne(*restored.value(), r), MatchOne(*service, r))
        << "record " << r.id;
  }
}

TEST(MutationTest, V2SnapshotFormatStillRoundTrips) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<LinkageService> service = MakeService(gen.value());
  const std::vector<Record> records = GenerateRecords(gen.value(), 4, 1);
  for (const Record& r : records) ASSERT_TRUE(service->Insert(r).ok());

  // A mutation-free snapshot still writes (and reads back) as version 2.
  ServiceSnapshot snapshot = service->ExportSnapshot();
  std::stringstream v2;
  ASSERT_TRUE(WriteServiceSnapshot(snapshot, v2, /*version=*/2).ok());
  Result<ServiceSnapshot> reread = ReadServiceSnapshot(v2);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_TRUE(reread.value().tombstones.empty());
  EXPECT_EQ(reread.value().last_sequence, 0u);
  EXPECT_TRUE(LinkageService::Restore(reread.value()).ok());

  // Mutation state cannot be smuggled into the old layout.
  snapshot.tombstones = {99};
  std::stringstream rejected;
  EXPECT_FALSE(WriteServiceSnapshot(snapshot, rejected, /*version=*/2).ok());
}

TEST(MutationTest, DeleteAndUpdateSurviveCrashAndReplay) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const std::vector<Record> records = GenerateRecords(gen.value(), 6, 1);
  const std::string snapshot_path = TempPath("mutation_crash.snap");
  const std::string journal_path = TempPath("mutation_crash.cbvj");
  Record updated = records[3];
  updated.fields = records[5].fields;

  {
    std::unique_ptr<LinkageService> service = MakeService(gen.value());
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    service->AttachJournal(std::move(journal).value());
    for (const Record& r : records) ASSERT_TRUE(service->Insert(r).ok());
    ASSERT_TRUE(service->SaveSnapshotToFile(snapshot_path).ok());
    // Acknowledged after the snapshot: only the journal carries these.
    ASSERT_TRUE(service->Delete(records[2].id).ok());
    ASSERT_TRUE(service->Update(updated).ok());
    // "Crash": drop the service without another snapshot.
  }

  Result<std::unique_ptr<LinkageService>> recovered =
      LinkageService::RestoreFromFile(snapshot_path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  Result<JournalReplayStats> replay =
      recovered.value()->ReplayJournalFile(journal_path);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay.value().applied, 2u);  // inserts dedupe, mutations apply

  EXPECT_FALSE(recovered.value()->Contains(records[2].id));
  EXPECT_TRUE(MatchOne(*recovered.value(), records[2]).empty());
  std::vector<IdPair> hits = MatchOne(*recovered.value(), records[5]);
  std::vector<RecordId> hit_ids;
  for (const IdPair& p : hits) hit_ids.push_back(p.a_id);
  std::sort(hit_ids.begin(), hit_ids.end());
  std::vector<RecordId> expected_hits = {records[3].id, records[5].id};
  std::sort(expected_hits.begin(), expected_hits.end());
  EXPECT_EQ(hit_ids, expected_hits);

  // Replaying the same journal again applies nothing: inserts dedupe by
  // id, delete/update frames sit at or below the sequence floor now.
  Result<JournalReplayStats> again =
      recovered.value()->ReplayJournalFile(journal_path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().applied, 0u);
  EXPECT_FALSE(recovered.value()->Contains(records[2].id));
}

TEST(MutationTest, UpdateThenCompactEqualsFreshBuild) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<LinkageService> mutated = MakeService(gen.value());
  std::vector<Record> final_state = GenerateRecords(gen.value(), 40, 1);
  const std::vector<Record> replacements = GenerateRecords(gen.value(), 10, 2);

  for (const Record& r : final_state) ASSERT_TRUE(mutated->Insert(r).ok());
  // Rewrite every 4th record and delete two — final_state tracks what a
  // fresh build would index.
  for (size_t i = 0; i < 10; ++i) {
    Record updated = replacements[i];
    updated.id = final_state[i * 4].id;
    ASSERT_TRUE(mutated->Update(updated).ok());
    final_state[i * 4] = updated;
  }
  ASSERT_TRUE(mutated->Delete(final_state[1].id).ok());
  ASSERT_TRUE(mutated->Delete(final_state[7].id).ok());
  final_state.erase(final_state.begin() + 7);
  final_state.erase(final_state.begin() + 1);

  ASSERT_TRUE(mutated->Compact().ok());
  EXPECT_EQ(mutated->tombstone_count(), 0u);
  EXPECT_EQ(mutated->metrics().compactions, 1u);
  EXPECT_GT(mutated->metrics().compaction_reclaimed, 0u);

  std::unique_ptr<LinkageService> fresh = MakeService(gen.value());
  for (const Record& r : final_state) ASSERT_TRUE(fresh->Insert(r).ok());

  const std::vector<Record> queries = GenerateRecords(gen.value(), 60, 1);
  for (const Record& q : queries) {
    EXPECT_EQ(MatchOne(*mutated, q), MatchOne(*fresh, q)) << "query " << q.id;
  }
}

TEST(MutationTest, CompactionKeepsMatchesByteIdenticalAtAnyThreadCount) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    LinkageServiceOptions options;
    options.execution = ExecutionOptions::WithThreads(threads);
    std::unique_ptr<LinkageService> service = MakeService(gen.value(), options);
    const std::vector<Record> records = GenerateRecords(gen.value(), 60, 1);
    ASSERT_TRUE(service->InsertBatch(records).ok());
    std::vector<RecordId> dead;
    for (size_t i = 0; i < records.size(); i += 3) dead.push_back(records[i].id);
    ASSERT_TRUE(service->DeleteBatch(dead).ok());

    // Per-query output is deterministic (candidates are sort+unique'd),
    // so compare raw bytes query by query; MatchBatch interleaves
    // queries across workers, so compare it sorted.
    std::vector<std::vector<IdPair>> before(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      before[i] = MatchOne(*service, records[i], 9000 + i);
    }
    std::vector<IdPair> batch_before;
    ASSERT_TRUE(service->MatchBatch(records, &batch_before).ok());

    ASSERT_TRUE(service->Compact().ok());

    for (size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(MatchOne(*service, records[i], 9000 + i), before[i])
          << "threads=" << threads << " query " << records[i].id;
    }
    std::vector<IdPair> batch_after;
    ASSERT_TRUE(service->MatchBatch(records, &batch_after).ok());
    EXPECT_EQ(Sorted(batch_after), Sorted(batch_before))
        << "threads=" << threads;
  }
}

// The TSan drill: concurrent Match, Delete/Update, and the background
// compactor publishing new epochs.  Correctness assertion at the end:
// the surviving state matches a fresh build.
TEST(MutationTest, ConcurrentMatchDeleteCompactIsSafe) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkageServiceOptions options;
  options.execution = ExecutionOptions::WithThreads(2);
  options.compaction_dead_ratio = 0.02;  // compact eagerly
  options.compaction_interval = std::chrono::milliseconds(1);
  std::unique_ptr<LinkageService> service = MakeService(gen.value(), options);
  const std::vector<Record> records = GenerateRecords(gen.value(), 120, 1);
  ASSERT_TRUE(service->InsertBatch(records).ok());
  service->StartBackgroundCompaction();

  std::atomic<bool> stop{false};
  std::vector<std::thread> matchers;
  for (int t = 0; t < 3; ++t) {
    matchers.emplace_back([&service, &records, &stop, t] {
      size_t i = static_cast<size_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        Record query = records[i % records.size()];
        query.id = 50000 + i;
        std::vector<IdPair> out;
        ASSERT_TRUE(service->Match(query, &out).ok());
        ++i;
      }
    });
  }
  // Delete the front half while the matchers run.
  for (size_t i = 0; i < records.size() / 2; ++i) {
    ASSERT_TRUE(service->Delete(records[i].id).ok());
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : matchers) t.join();
  service->StopBackgroundCompaction();
  ASSERT_TRUE(service->Compact().ok());  // drain any residual tombstones

  std::unique_ptr<LinkageService> fresh = MakeService(gen.value());
  for (size_t i = records.size() / 2; i < records.size(); ++i) {
    ASSERT_TRUE(fresh->Insert(records[i]).ok());
  }
  for (const Record& q : records) {
    EXPECT_EQ(MatchOne(*service, q), MatchOne(*fresh, q)) << "query " << q.id;
  }
  EXPECT_GE(service->metrics().compactions, 1u);
}

TEST(MutationTest, ApplyMutationHonorsSequenceFloorAndDedupes) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<LinkageService> service = MakeService(gen.value());
  const std::vector<Record> records = GenerateRecords(gen.value(), 3, 1);

  // Insert applies once, dedupes by id after that.
  Result<bool> applied = service->ApplyMutation(MutationOp::Insert(records[0]));
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied.value());
  applied = service->ApplyMutation(MutationOp::Insert(records[0]));
  ASSERT_TRUE(applied.ok());
  EXPECT_FALSE(applied.value());

  // A sequenced delete applies and raises the floor ...
  applied = service->ApplyMutation(MutationOp::Delete(records[0].id, 5));
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied.value());
  EXPECT_EQ(service->last_sequence(), 5u);
  // ... so replaying it (or anything older) is skipped.
  applied = service->ApplyMutation(MutationOp::Delete(records[0].id, 5));
  ASSERT_TRUE(applied.ok());
  EXPECT_FALSE(applied.value());
  applied = service->ApplyMutation(MutationOp::Update(records[1], 4));
  ASSERT_TRUE(applied.ok());
  EXPECT_FALSE(applied.value());

  // Deleting an unknown id replays as a no-op, not an error.
  applied = service->ApplyMutation(MutationOp::Delete(31337, 6));
  ASSERT_TRUE(applied.ok());
  EXPECT_FALSE(applied.value());

  // Update above the floor upserts even when the id was never inserted.
  applied = service->ApplyMutation(MutationOp::Update(records[2], 7));
  ASSERT_TRUE(applied.ok());
  EXPECT_TRUE(applied.value());
  EXPECT_TRUE(service->Contains(records[2].id));
  EXPECT_EQ(service->last_sequence(), 7u);
}

TEST(MutationTest, MergeSnapshotRecordsReconcilesDeletes) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const std::vector<Record> records = GenerateRecords(gen.value(), 5, 1);

  // Primary: records 0..3 live, record 1 tombstoned.
  std::unique_ptr<LinkageService> primary = MakeService(gen.value());
  for (size_t i = 0; i < 4; ++i) ASSERT_TRUE(primary->Insert(records[i]).ok());
  ASSERT_TRUE(primary->Delete(records[1].id).ok());
  const ServiceSnapshot snapshot = primary->ExportSnapshot();

  // Follower: has 0 and 1 live, plus record 4 the primary never saw
  // (e.g. the primary compacted its tombstone away before this sync).
  std::unique_ptr<LinkageService> follower = MakeService(gen.value());
  ASSERT_TRUE(follower->Insert(records[0]).ok());
  ASSERT_TRUE(follower->Insert(records[1]).ok());
  ASSERT_TRUE(follower->Insert(records[4]).ok());

  Result<uint64_t> merged = follower->MergeSnapshotRecords(snapshot);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_GT(merged.value(), 0u);

  EXPECT_TRUE(follower->Contains(records[0].id));
  EXPECT_FALSE(follower->Contains(records[1].id));  // snapshot tombstone
  EXPECT_TRUE(follower->Contains(records[2].id));   // absent -> inserted
  EXPECT_TRUE(follower->Contains(records[3].id));
  EXPECT_FALSE(follower->Contains(records[4].id));  // absent from snapshot
  EXPECT_EQ(follower->last_sequence(), snapshot.last_sequence);

  for (const Record& q : records) {
    EXPECT_EQ(MatchOne(*follower, q), MatchOne(*primary, q))
        << "query " << q.id;
  }
}

}  // namespace
}  // namespace cbvlink
