// Corruption sweep + crash-safety harness for the durable snapshot
// format (ISSUE 2 acceptance criteria): every truncation and every
// single-byte flip of a valid file must come back as a non-OK Status —
// never a crash, hang, or unbounded allocation — and a failpoint-killed
// save must never lose the previous good snapshot.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/failpoint.h"
#include "src/common/random.h"
#include "src/datagen/generators.h"
#include "src/io/serialization.h"
#include "src/service/linkage_service.h"

namespace cbvlink {
namespace {

EncodedRecord MakeRecord(RecordId id, size_t bits, uint64_t seed) {
  EncodedRecord r;
  r.id = id;
  r.bits = BitVector(bits);
  Rng rng(seed);
  for (size_t i = 0; i < bits; ++i) {
    if (rng.NextBool(0.3)) r.bits.Set(i);
  }
  return r;
}

// A small but fully populated snapshot (every block type non-empty) so
// the byte sweeps cover each section of the format.
ServiceSnapshot ReferenceSnapshot() {
  ServiceSnapshot snapshot;
  snapshot.attributes = {
      {"LastName", "ABCDEFGHIJKLMNOPQRSTUVWXYZ_", 2, false},
      {"FirstName", "ABCDEFGHIJKLMNOPQRSTUVWXYZ_", 3, true},
  };
  snapshot.expected_qgrams = {5.1, 7.25};
  snapshot.rule_text = "((f1 <= 4) AND (f2 <= 8))";
  snapshot.record_K = 25;
  snapshot.record_theta = 3;
  snapshot.delta = 0.05;
  snapshot.seed = 99;
  snapshot.num_shards = 8;
  snapshot.max_bucket_size = 128;
  snapshot.overflow_policy = 1;
  for (RecordId id = 0; id < 10; ++id) {
    snapshot.records.push_back(MakeRecord(id, 70, id + 1));
  }
  snapshot.buckets = {
      {0, 0x1234, false, {1, 2, 3}},
      {2, 0xffff, true, {7}},
  };
  return snapshot;
}

std::string SerializeSnapshot(const ServiceSnapshot& snapshot) {
  std::ostringstream out;
  EXPECT_TRUE(WriteServiceSnapshot(snapshot, out).ok());
  return out.str();
}

Status ReadSnapshotBytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return ReadServiceSnapshot(in).status();
}

Status ReadRecordBytes(const std::string& bytes) {
  std::istringstream in(bytes);
  return ReadEncodedRecords(in).status();
}

TEST(CorruptionSweepTest, SnapshotTruncatedAtEveryOffsetIsRejected) {
  const std::string full = SerializeSnapshot(ReferenceSnapshot());
  ASSERT_GT(full.size(), 100u);
  ASSERT_TRUE(ReadSnapshotBytes(full).ok());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    const Status st = ReadSnapshotBytes(full.substr(0, cut));
    EXPECT_FALSE(st.ok()) << "truncation at offset " << cut
                          << " was accepted";
  }
}

TEST(CorruptionSweepTest, SnapshotByteFlipAtEveryOffsetIsRejected) {
  const std::string full = SerializeSnapshot(ReferenceSnapshot());
  // CRC32C detects every single-byte error, so all of these — including
  // flips inside the trailer itself — must fail; the hard caps keep
  // flipped length fields from demanding huge allocations on the way.
  for (size_t i = 0; i < full.size(); ++i) {
    for (const unsigned char delta : {0x01, 0x80, 0xFF}) {
      std::string corrupt = full;
      corrupt[i] = static_cast<char>(corrupt[i] ^ delta);
      const Status st = ReadSnapshotBytes(corrupt);
      EXPECT_FALSE(st.ok())
          << "flip ^" << int{delta} << " at offset " << i << " was accepted";
    }
  }
}

TEST(CorruptionSweepTest, RecordFileSweep) {
  std::vector<EncodedRecord> records;
  for (RecordId id = 0; id < 12; ++id) {
    records.push_back(MakeRecord(id, 120, id * 3 + 1));
  }
  std::ostringstream out;
  ASSERT_TRUE(WriteEncodedRecords(records, out).ok());
  const std::string full = out.str();
  ASSERT_TRUE(ReadRecordBytes(full).ok());
  for (size_t cut = 0; cut < full.size(); ++cut) {
    EXPECT_FALSE(ReadRecordBytes(full.substr(0, cut)).ok()) << cut;
  }
  for (size_t i = 0; i < full.size(); ++i) {
    std::string corrupt = full;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xFF);
    EXPECT_FALSE(ReadRecordBytes(corrupt).ok()) << i;
  }
}

TEST(CorruptionSweepTest, AdversarialLengthFieldsAreCappedNotAllocated) {
  // Hand-craft headers whose length fields demand absurd allocations;
  // the reader must reject them (quickly) instead of resize()-ing.
  const auto le32 = [](uint32_t v) {
    std::string s(4, '\0');
    for (int i = 0; i < 4; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  const auto le64 = [](uint64_t v) {
    std::string s(8, '\0');
    for (int i = 0; i < 8; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  const std::string record_magic = le32(0x4c564243);
  const std::string snapshot_magic = le32(0x53564243);
  const std::string v2 = le32(2);

  // Record file claiming 2^62 records of 2^61 bits each.
  EXPECT_EQ(ReadRecordBytes(record_magic + v2 + le64(uint64_t{1} << 62) +
                            le64(uint64_t{1} << 61))
                .code(),
            StatusCode::kInvalidArgument);
  // Record file with a plausible width but an impossible count for the
  // stream's actual size: bounds-checked as truncation.
  EXPECT_FALSE(
      ReadRecordBytes(record_magic + v2 + le64(uint64_t{1} << 40) + le64(120))
          .ok());
  // Snapshot whose rule string claims 4 GiB.
  std::string snap = snapshot_magic + v2;
  for (int i = 0; i < 3; ++i) snap += le64(1);       // seed, K, theta
  for (int i = 0; i < 3; ++i) snap += le64(0x3FE0000000000000ull);  // doubles
  snap += le64(16) + le64(0) + le32(0);              // shards, cap, policy
  snap += le32(0xFFFFFFFFu);                         // rule length
  EXPECT_FALSE(ReadSnapshotBytes(snap).ok());
}

TEST(CorruptionSweepTest, LegacyV1FilesStillReadable) {
  // A version-1 encoded-record file (no CRC trailer), byte-for-byte as
  // the PR-1 writer produced it: one 3-bit record {id=9, bits=101}.
  const auto le32 = [](uint32_t v) {
    std::string s(4, '\0');
    for (int i = 0; i < 4; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  const auto le64 = [](uint64_t v) {
    std::string s(8, '\0');
    for (int i = 0; i < 8; ++i) s[i] = static_cast<char>(v >> (8 * i));
    return s;
  };
  const std::string v1_file = le32(0x4c564243) + le32(1) + le64(1) + le64(3) +
                              le64(9) + le64(0b101);
  std::istringstream in(v1_file);
  Result<std::vector<EncodedRecord>> loaded = ReadEncodedRecords(in);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded.value().size(), 1u);
  EXPECT_EQ(loaded.value()[0].id, 9u);
  EXPECT_TRUE(loaded.value()[0].bits.Test(0));
  EXPECT_FALSE(loaded.value()[0].bits.Test(1));
  EXPECT_TRUE(loaded.value()[0].bits.Test(2));

  // v1 had no checksum, but padding bits past the declared width are
  // still rejected — the only hard corruption signal v1 carries.
  const std::string bad_padding = le32(0x4c564243) + le32(1) + le64(1) +
                                  le64(3) + le64(9) + le64(0b1101);
  std::istringstream bad(bad_padding);
  EXPECT_EQ(ReadEncodedRecords(bad).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Crash safety of SaveSnapshotToFile -------------------------------

class KillDuringSaveTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::DeactivateAll();
    Result<NcvrGenerator> gen = NcvrGenerator::Create();
    ASSERT_TRUE(gen.ok());
    CbvHbConfig config;
    config.schema = gen.value().schema();
    config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                             Rule::Pred(2, 4), Rule::Pred(3, 4)});
    config.record_K = 30;
    config.record_theta = 4;
    config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
    config.seed = 5;
    Result<std::unique_ptr<LinkageService>> created =
        LinkageService::Create(config);
    ASSERT_TRUE(created.ok());
    service_ = std::move(created).value();
    Rng rng(1);
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(service_->Insert(gen.value().Generate(i, rng)).ok());
    }
    path_ = testing::TempDir() + "/kill_during_save.cbvs";
    std::remove(path_.c_str());
    std::remove(AtomicTempPath(path_).c_str());
    std::remove(SnapshotBackupPath(path_).c_str());
  }

  void TearDown() override { Failpoints::DeactivateAll(); }

  std::unique_ptr<LinkageService> service_;
  std::string path_;
};

TEST_F(KillDuringSaveTest, FailureAtEverySaveStepKeepsPreviousSnapshot) {
  ASSERT_TRUE(service_->SaveSnapshotToFile(path_).ok());
  const size_t good_size = service_->size();

  // Grow the service so a lost save would be observable.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(2);
  for (size_t i = 100; i < 110; ++i) {
    ASSERT_TRUE(service_->Insert(gen.value().Generate(i, rng)).ok());
  }

  const char* kSites[] = {"io.write_snapshot", "io.atomic.open",
                          "io.atomic.write", "io.atomic.fsync",
                          "io.atomic.rename"};
  for (const char* site : kSites) {
    Failpoints::Activate(site, FailpointAction::kError);
    EXPECT_FALSE(service_->SaveSnapshotToFile(path_).ok()) << site;
    Failpoints::Deactivate(site);

    Result<std::unique_ptr<LinkageService>> restored =
        LinkageService::RestoreFromFile(path_);
    ASSERT_TRUE(restored.ok())
        << site << ": " << restored.status().ToString();
    EXPECT_EQ(restored.value()->size(), good_size) << site;
    EXPECT_EQ(restored.value()->metrics().restore_fallbacks, 0u) << site;
  }

  // Torn writes of every prefix length class: 0 bytes, mid-header,
  // mid-payload, all-but-one.
  std::ostringstream full;
  ASSERT_TRUE(service_->SaveSnapshot(full).ok());
  const size_t total = full.str().size();
  for (const size_t bytes :
       {size_t{0}, size_t{6}, total / 2, total - 1}) {
    Failpoints::Activate("io.atomic.write", FailpointAction::kShortWrite,
                         bytes);
    EXPECT_FALSE(service_->SaveSnapshotToFile(path_).ok()) << bytes;
    Failpoints::Deactivate("io.atomic.write");
    Result<std::unique_ptr<LinkageService>> restored =
        LinkageService::RestoreFromFile(path_);
    ASSERT_TRUE(restored.ok()) << bytes;
    EXPECT_EQ(restored.value()->size(), good_size) << bytes;
  }

  // With no failpoints, the save commits and restore sees the new state.
  ASSERT_TRUE(service_->SaveSnapshotToFile(path_).ok());
  Result<std::unique_ptr<LinkageService>> fresh =
      LinkageService::RestoreFromFile(path_);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh.value()->size(), service_->size());
}

TEST_F(KillDuringSaveTest, CorruptPrimaryFallsBackToBackup) {
  ASSERT_TRUE(service_->SaveSnapshotToFile(path_).ok());
  const size_t old_size = service_->size();

  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(3);
  for (size_t i = 200; i < 205; ++i) {
    ASSERT_TRUE(service_->Insert(gen.value().Generate(i, rng)).ok());
  }
  // Second save hard-links the first snapshot to .bak before committing.
  ASSERT_TRUE(service_->SaveSnapshotToFile(path_).ok());

  // Bit-rot the primary mid-file.
  std::string bytes;
  {
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 64u);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0xFF);
  {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  Result<std::unique_ptr<LinkageService>> restored =
      LinkageService::RestoreFromFile(path_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->size(), old_size);
  EXPECT_EQ(restored.value()->metrics().restore_fallbacks, 1u);

  // With the backup also gone, the primary's own error surfaces.
  std::remove(SnapshotBackupPath(path_).c_str());
  EXPECT_FALSE(LinkageService::RestoreFromFile(path_).ok());
}

}  // namespace
}  // namespace cbvlink
