#include "src/linkage/multi_party.h"

#include <gtest/gtest.h>

#include <set>

#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"

namespace cbvlink {
namespace {

MultiPartyConfig MakeConfig(const Schema& schema) {
  MultiPartyConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = 3;
  return config;
}

TEST(MultiPartyLinkerTest, CreateValidation) {
  Schema empty;
  EXPECT_FALSE(MultiPartyLinker::Create(MultiPartyConfig{}).ok());
  (void)empty;
}

TEST(MultiPartyLinkerTest, RejectsFewerThanTwoParties) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<MultiPartyLinker> linker =
      MultiPartyLinker::Create(MakeConfig(gen.value().schema()));
  ASSERT_TRUE(linker.ok());
  Rng rng(1);
  std::vector<std::vector<Record>> one_party;
  one_party.push_back({gen.value().Generate(0, rng)});
  EXPECT_FALSE(linker.value().Link(one_party).ok());
  std::vector<std::vector<Record>> with_empty = one_party;
  with_empty.push_back({});
  EXPECT_FALSE(linker.value().Link(with_empty).ok());
}

TEST(MultiPartyLinkerTest, TwoPartiesMatchesPairwiseTruth) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 400;
  options.seed = 9;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());

  Result<MultiPartyLinker> linker =
      MultiPartyLinker::Create(MakeConfig(gen.value().schema()));
  ASSERT_TRUE(linker.ok());
  Result<MultiPartyResult> result =
      linker.value().Link({data.value().a, data.value().b});
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Most truth pairs should be found, reported as (party 0, party 1).
  std::set<std::pair<RecordId, RecordId>> found;
  for (const MultiPartyMatch& m : result.value().matches) {
    EXPECT_NE(m.party_a, m.party_b);
    if (m.party_a == 0) {
      found.insert({m.id_a, m.id_b});
    } else {
      found.insert({m.id_b, m.id_a});
    }
  }
  size_t hits = 0;
  for (const GroundTruthEntry& entry : data.value().truth) {
    if (found.contains({entry.pair.a_id, entry.pair.b_id})) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) /
                static_cast<double>(data.value().truth.size()),
            0.85);
}

TEST(MultiPartyLinkerTest, ThreePartiesCoverAllCrossPairs) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(5);
  // Three custodians all holding the same 50 entities (identical
  // records), plus unique filler — every cross-party pair of the shared
  // entities should be matched.
  std::vector<Record> shared;
  for (size_t i = 0; i < 50; ++i) {
    shared.push_back(gen.value().Generate(i, rng));
  }
  std::vector<std::vector<Record>> parties(3);
  for (size_t p = 0; p < 3; ++p) {
    parties[p] = shared;
    for (size_t i = 0; i < 30; ++i) {
      Record filler = gen.value().Generate(1000 + p * 100 + i, rng);
      filler.id = 100 + i;  // ids unique within the party
      parties[p].push_back(std::move(filler));
    }
  }

  Result<MultiPartyLinker> linker =
      MultiPartyLinker::Create(MakeConfig(gen.value().schema()));
  ASSERT_TRUE(linker.ok());
  Result<MultiPartyResult> result = linker.value().Link(parties);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // For each shared entity, expect the three cross-party pairs
  // (0,1), (0,2), (1,2).
  std::set<std::tuple<PartyId, RecordId, PartyId, RecordId>> found;
  for (const MultiPartyMatch& m : result.value().matches) {
    found.insert({m.party_a, m.id_a, m.party_b, m.id_b});
  }
  size_t covered = 0;
  for (size_t i = 0; i < 50; ++i) {
    const bool p01 = found.contains({0, i, 1, i});
    const bool p02 = found.contains({0, i, 2, i});
    const bool p12 = found.contains({1, i, 2, i});
    if (p01 && p02 && p12) ++covered;
  }
  // Identical records collide in every group; all should be covered.
  EXPECT_GE(covered, 48u);
}

TEST(MultiPartyLinkerTest, NoFalseCrossPartyPartyIds) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(6);
  std::vector<std::vector<Record>> parties(2);
  for (size_t p = 0; p < 2; ++p) {
    for (size_t i = 0; i < 100; ++i) {
      Record r = gen.value().Generate(p * 1000 + i, rng);
      r.id = i;
      parties[p].push_back(std::move(r));
    }
  }
  Result<MultiPartyLinker> linker =
      MultiPartyLinker::Create(MakeConfig(gen.value().schema()));
  ASSERT_TRUE(linker.ok());
  Result<MultiPartyResult> result = linker.value().Link(parties);
  ASSERT_TRUE(result.ok());
  for (const MultiPartyMatch& m : result.value().matches) {
    EXPECT_LT(m.party_a, 2u);
    EXPECT_LT(m.party_b, 2u);
    EXPECT_LT(m.id_a, 100u);
    EXPECT_LT(m.id_b, 100u);
  }
}

}  // namespace
}  // namespace cbvlink
