#include "src/datagen/generators.h"

#include <gtest/gtest.h>

namespace cbvlink {
namespace {

/// Mean unpadded bigram count of attribute `attr` over n generated
/// records.
double MeanBigrams(const RecordGenerator& generator, size_t attr, size_t n) {
  Rng rng(123);
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Record r = generator.Generate(i, rng);
    const std::string& value = r.fields[attr];
    sum += value.size() <= 1 ? 0.0 : static_cast<double>(value.size() - 1);
  }
  return sum / static_cast<double>(n);
}

TEST(NcvrGeneratorTest, SchemaShape) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const Schema& schema = gen.value().schema();
  ASSERT_EQ(schema.num_attributes(), 4u);
  EXPECT_EQ(schema.attributes[0].name, "FirstName");
  EXPECT_EQ(schema.attributes[2].name, "Address");
  EXPECT_FALSE(schema.attributes[0].qgram.pad);
}

TEST(NcvrGeneratorTest, RecordsHaveFourFieldsAndGivenId) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(1);
  const Record r = gen.value().Generate(77, rng);
  EXPECT_EQ(r.id, 77u);
  ASSERT_EQ(r.fields.size(), 4u);
  for (const std::string& f : r.fields) EXPECT_FALSE(f.empty());
}

TEST(NcvrGeneratorTest, AddressHasNumberStreetType) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const Record r = gen.value().Generate(i, rng);
    const std::string& addr = r.fields[2];
    EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(addr[0]))) << addr;
    EXPECT_NE(addr.find(' '), std::string::npos) << addr;
  }
}

TEST(NcvrGeneratorTest, BigramMeansMatchTable3) {
  // Table 3 NCVR: b = 5.1 / 5.0 / 20.0 / 7.2.  The generator is
  // calibrated to these targets; sampling noise allows a small tolerance.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  constexpr size_t kN = 20000;
  EXPECT_NEAR(MeanBigrams(gen.value(), 0, kN), 5.1, 0.15);
  EXPECT_NEAR(MeanBigrams(gen.value(), 1, kN), 5.0, 0.15);
  EXPECT_NEAR(MeanBigrams(gen.value(), 2, kN), 20.0, 0.35);
  EXPECT_NEAR(MeanBigrams(gen.value(), 3, kN), 7.2, 0.15);
}

TEST(DblpGeneratorTest, SchemaShape) {
  Result<DblpGenerator> gen = DblpGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const Schema& schema = gen.value().schema();
  ASSERT_EQ(schema.num_attributes(), 4u);
  EXPECT_EQ(schema.attributes[2].name, "Title");
  EXPECT_EQ(schema.attributes[3].name, "Year");
}

TEST(DblpGeneratorTest, YearIsFourDigits) {
  Result<DblpGenerator> gen = DblpGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Record r = gen.value().Generate(i, rng);
    const std::string& year = r.fields[3];
    ASSERT_EQ(year.size(), 4u);
    const int y = std::stoi(year);
    EXPECT_GE(y, 1970);
    EXPECT_LE(y, 2015);
  }
}

TEST(DblpGeneratorTest, BigramMeansMatchTable3) {
  // Table 3 DBLP: b = 4.8 / 6.2 / 64.8 / 3.0.
  Result<DblpGenerator> gen = DblpGenerator::Create();
  ASSERT_TRUE(gen.ok());
  constexpr size_t kN = 20000;
  EXPECT_NEAR(MeanBigrams(gen.value(), 0, kN), 4.8, 0.15);
  EXPECT_NEAR(MeanBigrams(gen.value(), 1, kN), 6.2, 0.15);
  EXPECT_NEAR(MeanBigrams(gen.value(), 2, kN), 64.8, 1.0);
  EXPECT_NEAR(MeanBigrams(gen.value(), 3, kN), 3.0, 1e-9);
}

TEST(DblpGeneratorTest, TitlesAreMultiWord) {
  Result<DblpGenerator> gen = DblpGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    const Record r = gen.value().Generate(i, rng);
    EXPECT_NE(r.fields[2].find(' '), std::string::npos) << r.fields[2];
  }
}

TEST(NcvrGeneratorTest, CustomTargetsShiftTheMeans) {
  NcvrTargets targets;
  targets.first_name_b = 4.0;  // shorter names than the default 5.1
  targets.town_b = 9.0;        // longer towns than the default 7.2
  Result<NcvrGenerator> gen = NcvrGenerator::Create(targets);
  ASSERT_TRUE(gen.ok());
  constexpr size_t kN = 15000;
  EXPECT_NEAR(MeanBigrams(gen.value(), 0, kN), 4.0, 0.15);
  EXPECT_NEAR(MeanBigrams(gen.value(), 3, kN), 9.0, 0.25);
}

TEST(GeneratorsTest, DeterministicGivenSameRngState) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng1(9);
  Rng rng2(9);
  const Record a = gen.value().Generate(0, rng1);
  const Record b = gen.value().Generate(0, rng2);
  EXPECT_EQ(a.fields, b.fields);
}

TEST(GeneratorsTest, EstimateExpectedQGramsAgreesWithGenerator) {
  // Closing the loop: Charlie's estimation over generated data should
  // land near Table 3 so CVectorRecordEncoder::Create derives the right
  // m_opt values.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(11);
  std::vector<Record> sample;
  for (size_t i = 0; i < 5000; ++i) {
    sample.push_back(gen.value().Generate(i, rng));
  }
  const std::vector<double> means =
      EstimateExpectedQGrams(gen.value().schema(), sample);
  EXPECT_NEAR(means[0], 5.1, 0.2);
  EXPECT_NEAR(means[1], 5.0, 0.2);
  EXPECT_NEAR(means[2], 20.0, 0.5);
  EXPECT_NEAR(means[3], 7.2, 0.2);
}

}  // namespace
}  // namespace cbvlink
