#include "src/common/union_find.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace cbvlink {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  EXPECT_EQ(uf.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
  EXPECT_FALSE(uf.Connected(0, 1));
}

TEST(UnionFindTest, UnionMergesAndCounts) {
  UnionFind uf(6);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_FALSE(uf.Union(1, 0));  // already merged
  EXPECT_EQ(uf.NumSets(), 4u);
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_EQ(uf.SetSize(3), 4u);
  EXPECT_EQ(uf.NumSets(), 3u);
}

TEST(UnionFindTest, TransitivityChain) {
  UnionFind uf(100);
  for (size_t i = 0; i + 1 < 100; ++i) {
    uf.Union(i, i + 1);
  }
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_TRUE(uf.Connected(0, 99));
  EXPECT_EQ(uf.SetSize(50), 100u);
}

TEST(UnionFindTest, SetsMaterialization) {
  UnionFind uf(6);
  uf.Union(0, 2);
  uf.Union(2, 4);
  uf.Union(1, 5);
  const auto sets = uf.Sets();
  ASSERT_EQ(sets.size(), 3u);
  EXPECT_EQ(sets[0], (std::vector<size_t>{0, 2, 4}));
  EXPECT_EQ(sets[1], (std::vector<size_t>{1, 5}));
  EXPECT_EQ(sets[2], (std::vector<size_t>{3}));
}

TEST(UnionFindTest, RandomizedAgainstNaiveModel) {
  Rng rng(1);
  constexpr size_t kN = 200;
  UnionFind uf(kN);
  // Naive model: label array; union relabels.
  std::vector<size_t> label(kN);
  for (size_t i = 0; i < kN; ++i) label[i] = i;
  for (int op = 0; op < 500; ++op) {
    const size_t a = rng.Below(kN);
    const size_t b = rng.Below(kN);
    uf.Union(a, b);
    const size_t from = label[b];
    const size_t to = label[a];
    for (size_t& l : label) {
      if (l == from) l = to;
    }
  }
  for (int probe = 0; probe < 2000; ++probe) {
    const size_t a = rng.Below(kN);
    const size_t b = rng.Below(kN);
    EXPECT_EQ(uf.Connected(a, b), label[a] == label[b])
        << a << " vs " << b;
  }
}

}  // namespace
}  // namespace cbvlink
