#include "src/protocol/party.h"

#include <gtest/gtest.h>

#include "src/datagen/dataset.h"
#include "src/datagen/generators.h"
#include "src/eval/measures.h"

namespace cbvlink {
namespace {

LinkageParameters PublishedParameters(const Schema& schema) {
  LinkageParameters parameters;
  parameters.schema = schema;
  parameters.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  return parameters;
}

LinkageUnit::Options CharlieOptions() {
  LinkageUnit::Options options;
  options.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                            Rule::Pred(2, 4), Rule::Pred(3, 4)});
  options.record_theta = 4;
  return options;
}

TEST(ProtocolTest, CustodiansAgreeOnIdenticalParameters) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const LinkageParameters parameters =
      PublishedParameters(gen.value().schema());
  Result<DataCustodian> alice = DataCustodian::Create("alice", parameters);
  Result<DataCustodian> bob = DataCustodian::Create("bob", parameters);
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());
  EXPECT_EQ(alice.value().record_bits(), 120u);
  EXPECT_EQ(bob.value().record_bits(), 120u);

  // The same string must encode identically at both custodians — the
  // agreement the shared seed provides.
  Rng rng(3);
  const Record r = gen.value().Generate(0, rng);
  Result<std::vector<EncodedRecord>> ea = alice.value().EncodeRecords({r});
  Result<std::vector<EncodedRecord>> eb = bob.value().EncodeRecords({r});
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea.value()[0].bits, eb.value()[0].bits);
}

TEST(ProtocolTest, DifferentSeedsBreakAgreement) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkageParameters p1 = PublishedParameters(gen.value().schema());
  LinkageParameters p2 = p1;
  p2.hash_seed = 999;
  Result<DataCustodian> alice = DataCustodian::Create("alice", p1);
  Result<DataCustodian> bob = DataCustodian::Create("bob", p2);
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());
  Rng rng(4);
  const Record r = gen.value().Generate(0, rng);
  EXPECT_FALSE(alice.value().EncodeRecords({r}).value()[0].bits ==
               bob.value().EncodeRecords({r}).value()[0].bits);
}

TEST(ProtocolTest, EndToEndOverEncodedSets) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 500;
  options.seed = 31;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());

  const LinkageParameters parameters =
      PublishedParameters(gen.value().schema());
  Result<DataCustodian> alice = DataCustodian::Create("alice", parameters);
  Result<DataCustodian> bob = DataCustodian::Create("bob", parameters);
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  Result<LinkageUnit> charlie =
      LinkageUnit::Create(parameters, CharlieOptions());
  ASSERT_TRUE(charlie.ok());

  Result<LinkageResultLite> result = charlie.value().LinkEncoded(
      alice.value().EncodeRecords(data.value().a).value(),
      bob.value().EncodeRecords(data.value().b).value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  const PairSet truth = TruthPairs(data.value().truth);
  size_t hits = 0;
  for (const IdPair& p : result.value().matches) {
    if (truth.contains(p)) ++hits;
  }
  EXPECT_GE(static_cast<double>(hits) / static_cast<double>(truth.size()),
            0.9);
}

TEST(ProtocolTest, EndToEndOverWireFiles) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 300;
  options.seed = 33;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());

  const LinkageParameters parameters =
      PublishedParameters(gen.value().schema());
  Result<DataCustodian> alice = DataCustodian::Create("alice", parameters);
  Result<DataCustodian> bob = DataCustodian::Create("bob", parameters);
  ASSERT_TRUE(alice.ok());
  ASSERT_TRUE(bob.ok());

  const std::string path_a = testing::TempDir() + "/alice.cbv";
  const std::string path_b = testing::TempDir() + "/bob.cbv";
  ASSERT_TRUE(alice.value().ExportRecords(data.value().a, path_a).ok());
  ASSERT_TRUE(bob.value().ExportRecords(data.value().b, path_b).ok());

  Result<LinkageUnit> charlie =
      LinkageUnit::Create(parameters, CharlieOptions());
  ASSERT_TRUE(charlie.ok());
  Result<LinkageResultLite> result =
      charlie.value().LinkFiles(path_a, path_b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result.value().matches.size(), 0u);
  EXPECT_GT(result.value().blocking_groups, 0u);
}

TEST(ProtocolTest, WidthMismatchRejected) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const LinkageParameters parameters =
      PublishedParameters(gen.value().schema());
  Result<LinkageUnit> charlie =
      LinkageUnit::Create(parameters, CharlieOptions());
  ASSERT_TRUE(charlie.ok());
  EncodedRecord wrong;
  wrong.id = 1;
  wrong.bits = BitVector(64);  // not the published 120 bits
  Result<LinkageResultLite> result =
      charlie.value().LinkEncoded({wrong}, {});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(ProtocolTest, InvalidRuleRejectedAtCreate) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const LinkageParameters parameters =
      PublishedParameters(gen.value().schema());
  LinkageUnit::Options options = CharlieOptions();
  options.rule = Rule::Pred(9, 4);
  EXPECT_FALSE(LinkageUnit::Create(parameters, options).ok());
}

}  // namespace
}  // namespace cbvlink
