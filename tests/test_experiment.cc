#include "src/eval/experiment.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/eval/csv.h"
#include "src/linkage/cbv_hb_linker.h"

namespace cbvlink {
namespace {

CbvHbConfig SmallConfig(const Schema& schema, uint64_t seed) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.seed = seed;
  return config;
}

TEST(RunLinkageTest, ProducesScoredResult) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 400;
  Result<LinkagePair> data =
      BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
  ASSERT_TRUE(data.ok());

  Result<CbvHbLinker> linker =
      CbvHbLinker::Create(SmallConfig(gen.value().schema(), 1));
  ASSERT_TRUE(linker.ok());
  Result<ExperimentResult> result =
      RunLinkage(linker.value(), data.value());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().method, "cBV-HB");
  EXPECT_GE(result.value().quality.pairs_completeness, 0.0);
  EXPECT_LE(result.value().quality.pairs_completeness, 1.0);
  EXPECT_GT(result.value().linkage.blocking_groups, 0u);
}

TEST(AverageTest, EmptyInput) {
  const AveragedResult avg = Average({});
  EXPECT_EQ(avg.repetitions, 0u);
  EXPECT_DOUBLE_EQ(avg.pairs_completeness, 0.0);
}

TEST(AverageTest, MeansComputedCorrectly) {
  ExperimentResult r1;
  r1.quality.pairs_completeness = 0.8;
  r1.quality.pairs_quality = 0.4;
  r1.linkage.embed_seconds = 1.0;
  r1.linkage.stats.comparisons = 100;
  ExperimentResult r2;
  r2.quality.pairs_completeness = 1.0;
  r2.quality.pairs_quality = 0.6;
  r2.linkage.embed_seconds = 3.0;
  r2.linkage.stats.comparisons = 300;
  const AveragedResult avg = Average({r1, r2});
  EXPECT_DOUBLE_EQ(avg.pairs_completeness, 0.9);
  EXPECT_DOUBLE_EQ(avg.pairs_quality, 0.5);
  EXPECT_DOUBLE_EQ(avg.embed_seconds, 2.0);
  EXPECT_DOUBLE_EQ(avg.comparisons, 200.0);
  EXPECT_EQ(avg.repetitions, 2u);
}

TEST(RunRepeatedTest, AveragesAcrossFreshSeeds) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 250;
  const Schema schema = gen.value().schema();
  Result<AveragedResult> avg = RunRepeated(
      gen.value(), PerturbationScheme::Light(), options, 2,
      [&](uint64_t seed) -> Result<std::unique_ptr<Linker>> {
        Result<CbvHbLinker> linker =
            CbvHbLinker::Create(SmallConfig(schema, seed));
        if (!linker.ok()) return linker.status();
        return std::unique_ptr<Linker>(
            new CbvHbLinker(std::move(linker).value()));
      });
  ASSERT_TRUE(avg.ok()) << avg.status().ToString();
  EXPECT_EQ(avg.value().repetitions, 2u);
  EXPECT_GT(avg.value().pairs_completeness, 0.5);
}

TEST(RunRepeatedTest, FactoryErrorsPropagate) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 50;
  Result<AveragedResult> avg = RunRepeated(
      gen.value(), PerturbationScheme::Light(), options, 2,
      [&](uint64_t) -> Result<std::unique_ptr<Linker>> {
        return Status::Internal("factory exploded");
      });
  EXPECT_FALSE(avg.ok());
  EXPECT_EQ(avg.status().code(), StatusCode::kInternal);
}

TEST(RunRepeatedTest, DataGenerationErrorsPropagate) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 0;  // invalid
  const Schema schema = gen.value().schema();
  Result<AveragedResult> avg = RunRepeated(
      gen.value(), PerturbationScheme::Light(), options, 1,
      [&](uint64_t seed) -> Result<std::unique_ptr<Linker>> {
        Result<CbvHbLinker> linker =
            CbvHbLinker::Create(SmallConfig(schema, seed));
        if (!linker.ok()) return linker.status();
        return std::unique_ptr<Linker>(
            new CbvHbLinker(std::move(linker).value()));
      });
  EXPECT_FALSE(avg.ok());
}

TEST(EnvHelpersTest, FallbacksApply) {
  unsetenv("CBVLINK_RECORDS");
  EXPECT_EQ(RecordsFromEnv(1234), 1234u);
  setenv("CBVLINK_RECORDS", "777", 1);
  EXPECT_EQ(RecordsFromEnv(1234), 777u);
  setenv("CBVLINK_RECORDS", "junk", 1);
  EXPECT_EQ(RecordsFromEnv(1234), 1234u);
  unsetenv("CBVLINK_RECORDS");

  unsetenv("CBVLINK_REPS");
  EXPECT_EQ(RepetitionsFromEnv(3), 3u);
  setenv("CBVLINK_REPS", "9", 1);
  EXPECT_EQ(RepetitionsFromEnv(3), 9u);
  unsetenv("CBVLINK_REPS");
}

TEST(CsvWriterTest, WritesHeaderAndRows) {
  const std::string path = testing::TempDir() + "/cbvlink_test.csv";
  Result<CsvWriter> writer = CsvWriter::Open(path, {"name", "pc", "pq"});
  ASSERT_TRUE(writer.ok());
  writer.value().WriteRow({"cBV-HB", "0.97", "0.5"});
  writer.value().WriteNumericRow("BfH", {0.92, 0.55});
  // Field with comma must be quoted.
  writer.value().WriteRow({"a,b", "x\"y", "z"});
  // Destroy to flush.
  {
    CsvWriter w = std::move(writer).value();
    (void)w;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "name,pc,pq");
  std::getline(in, line);
  EXPECT_EQ(line, "cBV-HB,0.97,0.5");
  std::getline(in, line);
  EXPECT_EQ(line, "BfH,0.92,0.55");
  std::getline(in, line);
  EXPECT_EQ(line, "\"a,b\",\"x\"\"y\",z");
}

TEST(CsvWriterTest, OpenFailsOnBadPath) {
  EXPECT_FALSE(CsvWriter::Open("/nonexistent_dir_xyz/file.csv", {"a"}).ok());
}

TEST(CsvDirFromEnvTest, ReadsVariable) {
  unsetenv("CBVLINK_CSV_DIR");
  EXPECT_TRUE(CsvDirFromEnv().empty());
  setenv("CBVLINK_CSV_DIR", "/tmp", 1);
  EXPECT_EQ(CsvDirFromEnv(), "/tmp");
  unsetenv("CBVLINK_CSV_DIR");
}

}  // namespace
}  // namespace cbvlink
