#include "src/embedding/qgram_vector.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/random.h"
#include "src/datagen/perturbator.h"
#include "src/metrics/edit_distance.h"

namespace cbvlink {
namespace {

QGramVectorEncoder MakeEncoder(bool pad = false) {
  Result<QGramExtractor> extractor = QGramExtractor::Create(
      pad ? Alphabet::UppercasePadded() : Alphabet::Uppercase(),
      {.q = 2, .pad = pad});
  EXPECT_TRUE(extractor.ok());
  Result<QGramVectorEncoder> encoder =
      QGramVectorEncoder::Create(std::move(extractor).value());
  EXPECT_TRUE(encoder.ok());
  return std::move(encoder).value();
}

TEST(QGramVectorEncoderTest, VectorSizeIs676ForBigrams) {
  EXPECT_EQ(MakeEncoder().vector_size(), 676u);
}

TEST(QGramVectorEncoderTest, Figure1JohnBits) {
  const QGramVectorEncoder encoder = MakeEncoder();
  const BitVector bv = encoder.Encode("JOHN");
  EXPECT_EQ(bv.PopCount(), 3u);
  EXPECT_TRUE(bv.Test(248));  // 'JO'
  EXPECT_TRUE(bv.Test(371));  // 'OH'
  EXPECT_TRUE(bv.Test(195));  // 'HN'
}

TEST(QGramVectorEncoderTest, EmptyStringIsZeroVector) {
  const QGramVectorEncoder encoder = MakeEncoder();
  EXPECT_EQ(encoder.Encode("").PopCount(), 0u);
}

TEST(QGramVectorEncoderTest, RepeatedGramsSetOneBit) {
  const QGramVectorEncoder encoder = MakeEncoder();
  EXPECT_EQ(encoder.Encode("AAAAAA").PopCount(), 1u);
}

TEST(QGramVectorEncoderTest, Figure3SubstituteDistance4) {
  // Section 5.1: 'JONES' vs 'JONAS' differ in bigrams NE,ES / NA,AS ->
  // Hamming distance 4.
  const QGramVectorEncoder encoder = MakeEncoder();
  EXPECT_EQ(encoder.Encode("JONES").HammingDistance(encoder.Encode("JONAS")),
            4u);
}

TEST(QGramVectorEncoderTest, Figure3OverlapReducesDistanceTo3) {
  // 'SHANNEN' vs 'SHENNEN': differing bigrams HA,AN vs HE, with EN shared
  // -> distance 3.
  const QGramVectorEncoder encoder = MakeEncoder();
  EXPECT_EQ(
      encoder.Encode("SHANNEN").HammingDistance(encoder.Encode("SHENNEN")),
      3u);
}

TEST(QGramVectorEncoderTest, Figure3DeleteDistance3) {
  // 'JONES' vs 'JONS': NE,ES dropped, NS added -> distance 3.
  const QGramVectorEncoder encoder = MakeEncoder();
  EXPECT_EQ(encoder.Encode("JONES").HammingDistance(encoder.Encode("JONS")),
            3u);
}

TEST(QGramVectorEncoderTest, InsertDistanceAtMost3) {
  // 'JONES' vs 'JONEAS' (insert) behaves like delete in reverse.
  const QGramVectorEncoder encoder = MakeEncoder();
  EXPECT_LE(encoder.Encode("JONES").HammingDistance(encoder.Encode("JONEAS")),
            3u);
}

TEST(QGramVectorEncoderTest, LengthIndependenceOfDistance) {
  // Section 5.1's motivation: one substitution costs the same Hamming
  // distance regardless of string length (unlike Jaccard).
  const QGramVectorEncoder encoder = MakeEncoder();
  const size_t d_short =
      encoder.Encode("JONES").HammingDistance(encoder.Encode("JONAS"));
  const size_t d_long = encoder.Encode("WASHINGTON")
                            .HammingDistance(encoder.Encode("WASHANGTON"));
  EXPECT_EQ(d_short, 4u);
  EXPECT_EQ(d_long, 4u);
}

TEST(QGramVectorEncoderTest, CreateRejectsHugeSpaces) {
  Result<QGramExtractor> extractor = QGramExtractor::Create(
      Alphabet::Alphanumeric(), {.q = 6, .pad = false});
  ASSERT_TRUE(extractor.ok());
  // 39^6 ~ 3.5e9 bits > the 2^26 cap.
  Result<QGramVectorEncoder> encoder =
      QGramVectorEncoder::Create(std::move(extractor).value());
  EXPECT_FALSE(encoder.ok());
  EXPECT_EQ(encoder.status().code(), StatusCode::kOutOfRange);
}

/// Property test of Equation 3: u_H <= alpha * u_E with alpha = 4 for
/// substitutions and 3 for insert/delete, for q = 2.
class ErrorBoundTest : public testing::TestWithParam<PerturbationType> {};

TEST_P(ErrorBoundTest, SingleOperationRespectsAlphaBound) {
  const PerturbationType type = GetParam();
  const size_t alpha = type == PerturbationType::kSubstitute ? 4 : 3;
  const QGramVectorEncoder encoder = MakeEncoder();
  Rng rng(321);
  const std::vector<std::string> bases = {
      "JONES", "WASHINGTON", "LEE", "SHANNEN", "KARAPIPERIS", "AB"};
  for (const std::string& base : bases) {
    for (int trial = 0; trial < 40; ++trial) {
      const std::string perturbed = Perturbator::ApplyOp(base, type, rng);
      const size_t u_e = EditDistance(base, perturbed);
      ASSERT_EQ(u_e, 1u);
      const size_t u_h =
          encoder.Encode(base).HammingDistance(encoder.Encode(perturbed));
      EXPECT_LE(u_h, alpha * u_e)
          << PerturbationTypeName(type) << ": " << base << " -> "
          << perturbed;
    }
  }
}

TEST_P(ErrorBoundTest, MultipleOperationsRespectScaledBound) {
  const PerturbationType type = GetParam();
  const size_t alpha = type == PerturbationType::kSubstitute ? 4 : 3;
  const QGramVectorEncoder encoder = MakeEncoder();
  Rng rng(654);
  const std::string base = "KARAPIPERIS";
  for (size_t ops = 1; ops <= 3; ++ops) {
    for (int trial = 0; trial < 30; ++trial) {
      std::string perturbed = base;
      for (size_t i = 0; i < ops; ++i) {
        perturbed = Perturbator::ApplyOp(perturbed, type, rng);
      }
      const size_t u_e = EditDistance(base, perturbed);
      EXPECT_LE(u_e, ops);
      const size_t u_h =
          encoder.Encode(base).HammingDistance(encoder.Encode(perturbed));
      // Eq. 3 with u_E ops of the given type.
      EXPECT_LE(u_h, alpha * ops) << base << " -> " << perturbed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, ErrorBoundTest,
                         testing::Values(PerturbationType::kSubstitute,
                                         PerturbationType::kInsert,
                                         PerturbationType::kDelete));

TEST(QGramVectorEncoderTest, PaddedEncoderAlsoRespectsSubstituteBound) {
  // Section 5.1 claims the bounds hold for any q-gram vector with q >= 2;
  // with padding a substitution still flips at most 2 bigrams per string.
  const QGramVectorEncoder encoder = MakeEncoder(/*pad=*/true);
  Rng rng(11);
  for (int trial = 0; trial < 60; ++trial) {
    const std::string base = "JOHNSON";
    const std::string perturbed =
        Perturbator::ApplyOp(base, PerturbationType::kSubstitute, rng);
    EXPECT_LE(encoder.Encode(base).HammingDistance(encoder.Encode(perturbed)),
              4u);
  }
}

}  // namespace
}  // namespace cbvlink
