#include "src/embedding/record_encoder.h"

#include <gtest/gtest.h>

#include <span>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

Schema NcvrLikeSchema() {
  Schema schema;
  const QGramOptions unpadded{.q = 2, .pad = false};
  schema.attributes = {
      {"FirstName", &Alphabet::Uppercase(), unpadded},
      {"LastName", &Alphabet::Uppercase(), unpadded},
      {"Address", &Alphabet::Alphanumeric(), unpadded},
      {"Town", &Alphabet::Uppercase(), unpadded},
  };
  return schema;
}

TEST(RecordLayoutTest, TracksOffsetsAndTotal) {
  RecordLayout layout;
  EXPECT_EQ(layout.Add(15), 0u);
  EXPECT_EQ(layout.Add(15), 1u);
  EXPECT_EQ(layout.Add(68), 2u);
  EXPECT_EQ(layout.Add(22), 3u);
  EXPECT_EQ(layout.total_bits(), 120u);
  EXPECT_EQ(layout.segment(0).offset, 0u);
  EXPECT_EQ(layout.segment(2).offset, 30u);
  EXPECT_EQ(layout.segment(2).size, 68u);
  EXPECT_EQ(layout.segment(3).offset, 98u);
}

TEST(EstimateExpectedQGramsTest, ComputesUnpaddedMeans) {
  const Schema schema = NcvrLikeSchema();
  std::vector<Record> sample = {
      {0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}},
      {1, {"MARY", "JONES", "345 ELM AVE", "APEX"}},
  };
  const std::vector<double> means = EstimateExpectedQGrams(schema, sample);
  ASSERT_EQ(means.size(), 4u);
  EXPECT_DOUBLE_EQ(means[0], 3.0);  // JOHN, MARY both 4 chars -> 3 bigrams
  EXPECT_DOUBLE_EQ(means[1], 4.0);  // SMITH, JONES -> 4 bigrams
  EXPECT_DOUBLE_EQ(means[2], (8.0 + 10.0) / 2.0);
  EXPECT_DOUBLE_EQ(means[3], 3.0);
}

TEST(EstimateExpectedQGramsTest, SkipsShortRecords) {
  const Schema schema = NcvrLikeSchema();
  std::vector<Record> sample = {
      {0, {"JOHN"}},  // too few fields -> skipped
      {1, {"MARY", "JONES", "345 ELM AVE", "APEX"}},
  };
  const std::vector<double> means = EstimateExpectedQGrams(schema, sample);
  EXPECT_DOUBLE_EQ(means[0], 3.0);
}

TEST(CVectorRecordEncoderTest, Table3SizesAndLayout) {
  Rng rng(1);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok()) << encoder.status().ToString();
  EXPECT_EQ(encoder.value().total_bits(), 120u);  // the abstract's claim
  EXPECT_EQ(encoder.value().layout().segment(0).size, 15u);
  EXPECT_EQ(encoder.value().layout().segment(1).size, 15u);
  EXPECT_EQ(encoder.value().layout().segment(2).size, 68u);
  EXPECT_EQ(encoder.value().layout().segment(3).size, 22u);
}

TEST(CVectorRecordEncoderTest, RejectsMismatchedInputs) {
  Rng rng(1);
  EXPECT_FALSE(
      CVectorRecordEncoder::Create(NcvrLikeSchema(), {5.1, 5.0}, rng).ok());
  EXPECT_FALSE(CVectorRecordEncoder::Create(Schema{}, {}, rng).ok());
}

TEST(CVectorRecordEncoderTest, EncodeChecksFieldCount) {
  Rng rng(1);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok());
  Record bad{7, {"JOHN", "SMITH"}};
  EXPECT_FALSE(encoder.value().Encode(bad).ok());
}

TEST(CVectorRecordEncoderTest, EncodeConcatenatesAttributeVectors) {
  Rng rng(2);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok());
  Record record{3, {"John", "Smith", "12 Oak St", "Cary"}};
  Result<EncodedRecord> enc = encoder.value().Encode(record);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc.value().id, 3u);
  EXPECT_EQ(enc.value().bits.size(), 120u);

  // Each segment must equal the standalone attribute encoding.
  for (size_t attr = 0; attr < 4; ++attr) {
    const RecordLayout::Segment& seg = encoder.value().layout().segment(attr);
    const BitVector expected =
        encoder.value().EncodeAttribute(attr, record.fields[attr]);
    EXPECT_EQ(enc.value().bits.Slice(seg.offset, seg.size), expected)
        << "attribute " << attr;
  }
}

TEST(CVectorRecordEncoderTest, AttributeDistanceIsolatesChanges) {
  Rng rng(3);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok());
  Record r1{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  Record r2{1, {"JOHN", "SMYTH", "12 OAK ST", "CARY"}};  // LastName differs
  const BitVector b1 = encoder.value().Encode(r1).value().bits;
  const BitVector b2 = encoder.value().Encode(r2).value().bits;
  EXPECT_EQ(encoder.value().AttributeDistance(b1, b2, 0), 0u);
  EXPECT_GT(encoder.value().AttributeDistance(b1, b2, 1), 0u);
  EXPECT_EQ(encoder.value().AttributeDistance(b1, b2, 2), 0u);
  EXPECT_EQ(encoder.value().AttributeDistance(b1, b2, 3), 0u);
  // Record-level distance equals the per-attribute sum.
  EXPECT_EQ(b1.HammingDistance(b2),
            encoder.value().AttributeDistance(b1, b2, 1));
}

TEST(BloomRecordEncoderTest, LayoutIsUniform500Bits) {
  Result<BloomRecordEncoder> encoder =
      BloomRecordEncoder::Create(NcvrLikeSchema());
  ASSERT_TRUE(encoder.ok());
  EXPECT_EQ(encoder.value().total_bits(), 2000u);
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(encoder.value().layout().segment(i).size, 500u);
  }
}

TEST(BloomRecordEncoderTest, EncodeAndAttributeDistance) {
  Result<BloomRecordEncoder> encoder =
      BloomRecordEncoder::Create(NcvrLikeSchema());
  ASSERT_TRUE(encoder.ok());
  Record r1{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  Record r2{1, {"JAHN", "SMITH", "12 OAK ST", "CARY"}};
  const BitVector b1 = encoder.value().Encode(r1).value().bits;
  const BitVector b2 = encoder.value().Encode(r2).value().bits;
  EXPECT_GT(encoder.value().AttributeDistance(b1, b2, 0), 0u);
  EXPECT_EQ(encoder.value().AttributeDistance(b1, b2, 1), 0u);
  EXPECT_FALSE(encoder.value().Encode({2, {"TOO", "FEW"}}).ok());
}

TEST(BloomRecordEncoderTest, RejectsEmptySchema) {
  EXPECT_FALSE(BloomRecordEncoder::Create(Schema{}).ok());
}

// --- EncodeAll determinism: byte-identical to serial at any thread count.

std::vector<Record> SyntheticRecords(size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back({static_cast<RecordId>(i),
                       {"NAME" + std::to_string(i % 97),
                        "LAST" + std::to_string(i % 53),
                        std::to_string(i) + " OAK ST",
                        "TOWN" + std::to_string(i % 11)}});
  }
  return records;
}

void ExpectSameEncodings(const std::vector<EncodedRecord>& actual,
                         const std::vector<EncodedRecord>& expected,
                         size_t threads) {
  ASSERT_EQ(actual.size(), expected.size()) << threads << " threads";
  for (size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(actual[i].id, expected[i].id)
        << "record " << i << " at " << threads << " threads";
    ASSERT_EQ(actual[i].bits, expected[i].bits)
        << "record " << i << " at " << threads << " threads";
  }
}

TEST(EncodeAllParallelTest, CVectorByteIdenticalAcrossThreadCounts) {
  Rng rng(11);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok());
  const std::vector<Record> records = SyntheticRecords(500);

  Result<std::vector<EncodedRecord>> serial = encoder.value().EncodeAll(records);
  ASSERT_TRUE(serial.ok());
  ASSERT_EQ(serial.value().size(), records.size());

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    Result<std::vector<EncodedRecord>> parallel =
        encoder.value().EncodeAll(records, &pool);
    ASSERT_TRUE(parallel.ok());
    ExpectSameEncodings(parallel.value(), serial.value(), threads);
  }
}

TEST(EncodeAllParallelTest, BloomByteIdenticalAcrossThreadCounts) {
  Result<BloomRecordEncoder> encoder =
      BloomRecordEncoder::Create(NcvrLikeSchema());
  ASSERT_TRUE(encoder.ok());
  const std::vector<Record> records = SyntheticRecords(300);

  Result<std::vector<EncodedRecord>> serial = encoder.value().EncodeAll(records);
  ASSERT_TRUE(serial.ok());

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    Result<std::vector<EncodedRecord>> parallel =
        encoder.value().EncodeAll(records, &pool);
    ASSERT_TRUE(parallel.ok());
    ExpectSameEncodings(parallel.value(), serial.value(), threads);
  }
}

TEST(EncodeAllParallelTest, ChunkSizeHintDoesNotChangeOutput) {
  Rng rng(12);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok());
  const std::vector<Record> records = SyntheticRecords(200);
  Result<std::vector<EncodedRecord>> serial = encoder.value().EncodeAll(records);
  ASSERT_TRUE(serial.ok());

  ThreadPool pool(4);
  for (size_t min_chunk : {1u, 7u, 64u, 1000u}) {
    Result<std::vector<EncodedRecord>> parallel =
        encoder.value().EncodeAll(records, &pool, min_chunk);
    ASSERT_TRUE(parallel.ok());
    ExpectSameEncodings(parallel.value(), serial.value(), min_chunk);
  }
}

TEST(EncodeAllParallelTest, EmptyAndSingleRecordInputs) {
  Rng rng(13);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok());
  ThreadPool pool(4);

  Result<std::vector<EncodedRecord>> empty =
      encoder.value().EncodeAll(std::span<const Record>{}, &pool);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());

  const std::vector<Record> one = SyntheticRecords(1);
  Result<std::vector<EncodedRecord>> single =
      encoder.value().EncodeAll(one, &pool);
  ASSERT_TRUE(single.ok());
  ASSERT_EQ(single.value().size(), 1u);
  EXPECT_EQ(single.value()[0].bits, encoder.value().Encode(one[0]).value().bits);
}

TEST(EncodeAllParallelTest, ParallelErrorMatchesSerialError) {
  // A malformed record must yield the same (first-in-order) error at any
  // thread count.
  Rng rng(14);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      NcvrLikeSchema(), {5.1, 5.0, 20.0, 7.2}, rng);
  ASSERT_TRUE(encoder.ok());
  std::vector<Record> records = SyntheticRecords(100);
  records[40].fields.pop_back();  // first bad record
  records[90].fields.pop_back();  // a later one in another chunk

  Result<std::vector<EncodedRecord>> serial = encoder.value().EncodeAll(records);
  ASSERT_FALSE(serial.ok());
  for (size_t threads : {2u, 8u}) {
    ThreadPool pool(threads);
    Result<std::vector<EncodedRecord>> parallel =
        encoder.value().EncodeAll(records, &pool);
    ASSERT_FALSE(parallel.ok());
    EXPECT_EQ(parallel.status().ToString(), serial.status().ToString())
        << threads << " threads";
  }
}

}  // namespace
}  // namespace cbvlink
