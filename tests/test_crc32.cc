#include "src/common/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace cbvlink {
namespace {

TEST(Crc32Test, KnownVectors) {
  // RFC 3720 / iSCSI CRC32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 zero bytes (iSCSI test vector).
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  // 32 0xFF bytes (iSCSI test vector).
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
}

TEST(Crc32Test, ExtendIsChunkingIndependent) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  const uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(kCrc32cInit, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, whole) << "split=" << split;
  }
}

TEST(Crc32Test, DetectsEverySingleByteFlip) {
  std::string data = "cbvlink snapshot payload bytes";
  const uint32_t clean = Crc32c(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    for (const unsigned char delta : {0x01, 0x80, 0xFF}) {
      std::string corrupt = data;
      corrupt[i] = static_cast<char>(corrupt[i] ^ delta);
      EXPECT_NE(Crc32c(corrupt.data(), corrupt.size()), clean)
          << "offset=" << i << " delta=" << int{delta};
    }
  }
}

}  // namespace
}  // namespace cbvlink
