#include "src/blocking/matcher.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

/// A candidate source that replays a fixed list (with duplicates) for any
/// probe — isolates Algorithm 2 from the LSH machinery.
class FixedSource : public CandidateSource {
 public:
  explicit FixedSource(std::vector<RecordId> ids) : ids_(std::move(ids)) {}

  void ForEachCandidate(
      const BitVector&,
      const std::function<void(RecordId)>& cb) const override {
    for (RecordId id : ids_) cb(id);
  }

 private:
  std::vector<RecordId> ids_;
};

EncodedRecord MakeRecord(RecordId id, size_t bits,
                         std::initializer_list<size_t> set_bits) {
  EncodedRecord r;
  r.id = id;
  r.bits = BitVector(bits);
  for (size_t b : set_bits) r.bits.Set(b);
  return r;
}

TEST(VectorStoreTest, AddAndLookup) {
  VectorStore store;
  store.Add(MakeRecord(5, 16, {1}));
  EXPECT_EQ(store.size(), 1u);
  const uint32_t dense = store.DenseIndex(5);
  ASSERT_NE(dense, VectorStore::kNotFound);
  EXPECT_EQ(store.IdAt(dense), 5u);
  EXPECT_TRUE(store.VectorAt(dense).Test(1));
  EXPECT_EQ(store.DenseIndex(6), VectorStore::kNotFound);
  EXPECT_TRUE(store.Contains(5));
  EXPECT_FALSE(store.Contains(6));
}

TEST(VectorStoreTest, AddAll) {
  VectorStore store;
  store.AddAll({MakeRecord(1, 8, {}), MakeRecord(2, 8, {})});
  EXPECT_EQ(store.size(), 2u);
}

TEST(VectorStoreTest, DenseIndicesAreInsertionOrder) {
  VectorStore store;
  store.AddAll({MakeRecord(9, 8, {0}), MakeRecord(4, 8, {1}),
                MakeRecord(7, 8, {2})});
  EXPECT_EQ(store.DenseIndex(9), 0u);
  EXPECT_EQ(store.DenseIndex(4), 1u);
  EXPECT_EQ(store.DenseIndex(7), 2u);
}

TEST(VectorStoreTest, FirstAddWinsOnDuplicateId) {
  // Matches the emplace semantics of the original map-based store.
  VectorStore store;
  store.Add(MakeRecord(1, 8, {0}));
  store.Add(MakeRecord(1, 8, {1}));
  EXPECT_EQ(store.size(), 1u);
  EXPECT_TRUE(store.VectorAt(store.DenseIndex(1)).Test(0));
  EXPECT_FALSE(store.VectorAt(store.DenseIndex(1)).Test(1));
}

TEST(VectorStoreTest, SurvivesRehashing) {
  // Enough inserts to force several slot-table rehashes; every id must
  // stay reachable with its own vector.
  VectorStore store;
  for (RecordId id = 0; id < 1000; ++id) {
    store.Add(MakeRecord(id * 7919 + 1, 64, {static_cast<size_t>(id % 64)}));
  }
  EXPECT_EQ(store.size(), 1000u);
  for (RecordId id = 0; id < 1000; ++id) {
    const uint32_t dense = store.DenseIndex(id * 7919 + 1);
    ASSERT_NE(dense, VectorStore::kNotFound);
    EXPECT_TRUE(store.VectorAt(dense).Test(id % 64));
  }
}

TEST(VectorStoreTest, ArenaIsContiguousAndZeroPadded) {
  // 70 bits -> 2 words per record with 58 padding bits in the second
  // word; the whole-word kernels rely on the padding staying zero.
  VectorStore store;
  store.AddAll({MakeRecord(1, 70, {0, 69}), MakeRecord(2, 70, {69})});
  EXPECT_EQ(store.num_bits(), 70u);
  EXPECT_EQ(store.words_per_record(), 2u);
  ASSERT_EQ(store.arena().size(), 4u);
  for (uint32_t dense = 0; dense < store.size(); ++dense) {
    const uint64_t trailing = store.WordsAt(dense)[1];
    EXPECT_EQ(trailing & ~((uint64_t{1} << (70 - 64)) - 1), 0u)
        << "padding bits must be zero at dense index " << dense;
  }
  // The two records are adjacent in one buffer at the fixed stride.
  EXPECT_EQ(store.WordsAt(1), store.WordsAt(0) + store.words_per_record());
  // Distance across the word boundary: bit 0 differs, bit 69 agrees.
  EXPECT_EQ(HammingDistanceWords(store.WordsAt(0), store.WordsAt(1), 2), 1u);
}

TEST(VectorStoreDeathTest, MixedWidthAborts) {
  // Regression: a width mismatch was only debug-asserted, so a release
  // build silently packed the record at the wrong stride and corrupted
  // the arena for every later insert.  The store must reject it
  // unconditionally.
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  VectorStore store;
  store.Add(MakeRecord(1, 64, {3}));
  EXPECT_DEATH(store.Add(MakeRecord(2, 65, {3})), "bit width");
  EXPECT_DEATH(store.Add(MakeRecord(3, 16, {3})), "bit width");
  // Matching widths still work after the near-miss.
  store.Add(MakeRecord(4, 64, {5}));
  EXPECT_EQ(store.size(), 2u);
}

TEST(MatcherTest, Algorithm2DeduplicatesPerProbe) {
  // The same A-Id delivered from three blocking groups must be compared
  // once (the unique collection C of Algorithm 2).
  FixedSource source({1, 1, 1, 2});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0}));
  store.Add(MakeRecord(2, 16, {0}));

  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {0}),
                   MakeRecordThresholdClassifier(0), &out, &stats);
  EXPECT_EQ(stats.candidate_occurrences, 4u);
  EXPECT_EQ(stats.comparisons, 2u);
  EXPECT_EQ(stats.dedup_skipped, 2u);
  EXPECT_EQ(stats.matches, 2u);
  ASSERT_EQ(out.size(), 2u);
}

TEST(MatcherTest, DedupResetsBetweenProbes) {
  FixedSource source({1});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0}));
  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out = matcher.MatchAll(
      {MakeRecord(100, 16, {0}), MakeRecord(101, 16, {0})},
      MakeRecordThresholdClassifier(0), &stats);
  // Each B record compares against A-Id 1 independently.
  EXPECT_EQ(stats.comparisons, 2u);
  EXPECT_EQ(out.size(), 2u);
}

TEST(MatcherTest, UnknownIdsSkippedSafely) {
  FixedSource source({42});
  VectorStore store;  // empty — Id 42 unknown
  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {}),
                   MakeRecordThresholdClassifier(0), &out, &stats);
  EXPECT_EQ(stats.comparisons, 0u);
  EXPECT_TRUE(out.empty());
}

TEST(MatcherTest, RepeatedUnknownIdsCountAsDedupSkipped) {
  // An Id that is indexed but has no stored vector still participates in
  // the unique collection: its second and later occurrences are skips.
  FixedSource source({42, 42, 42});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0}));  // non-empty store, 42 still unknown
  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {0}),
                   MakeRecordThresholdClassifier(0), &out, &stats);
  EXPECT_EQ(stats.candidate_occurrences, 3u);
  EXPECT_EQ(stats.comparisons, 0u);
  EXPECT_EQ(stats.dedup_skipped, 2u);
  EXPECT_TRUE(out.empty());
}

TEST(MatcherTest, NullStatsAccepted) {
  // Callers that only want the pairs may pass stats == nullptr.
  FixedSource source({1, 1, 42});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0}));
  Matcher matcher(&source, &store);
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {0}),
                   MakeRecordThresholdClassifier(0), &out, nullptr);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a_id, 1u);
  out = matcher.MatchAll({MakeRecord(100, 16, {0})},
                         MakeRecordThresholdClassifier(0), nullptr);
  EXPECT_EQ(out.size(), 1u);
}

TEST(MatcherTest, ThresholdClassifierFiltersByDistance) {
  FixedSource source({1, 2});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0, 1}));          // distance 0 to probe
  store.Add(MakeRecord(2, 16, {0, 1, 2, 3, 4}));  // distance 3 to probe
  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {0, 1}),
                   MakeRecordThresholdClassifier(2), &out, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a_id, 1u);
  EXPECT_EQ(out[0].b_id, 100u);
}

TEST(MakeRuleClassifierTest, EvaluatesAttributeLevelDistances) {
  RecordLayout layout;
  layout.Add(8);
  layout.Add(8);
  // Rule: f1 <= 1 AND f2 <= 0.
  const Rule rule = Rule::And({Rule::Pred(0, 1), Rule::Pred(1, 0)});
  const PairClassifier classify = MakeRuleClassifier(rule, layout);

  BitVector a(16);
  BitVector b(16);
  EXPECT_TRUE(classify(a, b));
  b.Set(0);  // f1 distance 1
  EXPECT_TRUE(classify(a, b));
  b.Set(1);  // f1 distance 2
  EXPECT_FALSE(classify(a, b));
  b.Clear(1);
  b.Set(8);  // f2 distance 1
  EXPECT_FALSE(classify(a, b));
}

TEST(MakeRuleClassifierTest, NotRuleSemantics) {
  RecordLayout layout;
  layout.Add(8);
  layout.Add(8);
  // f1 <= 1 AND NOT (f2 <= 1).
  const Rule rule =
      Rule::And({Rule::Pred(0, 1), Rule::Not(Rule::Pred(1, 1))});
  const PairClassifier classify = MakeRuleClassifier(rule, layout);
  BitVector a(16);
  BitVector b(16);
  EXPECT_FALSE(classify(a, b));  // f2 distance 0 <= 1 -> NOT fails
  b.Set(8);
  b.Set(9);
  b.Set(10);  // f2 distance 3
  EXPECT_TRUE(classify(a, b));
}

TEST(MatcherTest, MatchStatsAccumulate) {
  MatchStats a{10, 5, 2, 3};
  MatchStats b{1, 1, 1, 0};
  a += b;
  EXPECT_EQ(a.candidate_occurrences, 11u);
  EXPECT_EQ(a.comparisons, 6u);
  EXPECT_EQ(a.matches, 3u);
  EXPECT_EQ(a.dedup_skipped, 3u);
}

/// A probe-dependent candidate source: each probe maps to a different mix
/// of bucket spans (with cross-bucket duplicates and some unknown Ids), so
/// the parallel determinism tests exercise uneven per-probe work.
class HashedSpanSource : public CandidateSource {
 public:
  HashedSpanSource(size_t num_a, size_t num_buckets) {
    buckets_.resize(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
      const size_t len = 1 + (b * 7) % 13;
      for (size_t k = 0; k < len; ++k) {
        // Mostly known Ids, a few unknown ones (>= num_a) sprinkled in.
        buckets_[b].push_back(
            static_cast<RecordId>((b * 31 + k * 17) % (num_a + 3)));
      }
    }
  }

  void ForEachCandidate(
      const BitVector& probe,
      const std::function<void(RecordId)>& cb) const override {
    ForEachCandidateSpan(probe, [&](std::span<const RecordId> bucket) {
      for (RecordId id : bucket) cb(id);
    });
  }

  void ForEachCandidateSpan(
      const BitVector& probe,
      FunctionRef<void(std::span<const RecordId>)> cb) const override {
    const uint64_t h = probe.words().empty() ? 0 : probe.words()[0];
    const size_t groups = 1 + h % 5;
    for (size_t g = 0; g < groups; ++g) {
      cb(buckets_[(h + g * 13) % buckets_.size()]);
    }
  }

 private:
  std::vector<std::vector<RecordId>> buckets_;
};

std::vector<EncodedRecord> RandomRecords(size_t n, size_t bits,
                                         RecordId first_id, Rng& rng) {
  std::vector<EncodedRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EncodedRecord r;
    r.id = first_id + i;
    r.bits = BitVector(bits);
    for (size_t b = 0; b < bits; ++b) {
      if (rng.Below(3) == 0) r.bits.Set(b);
    }
    out.push_back(std::move(r));
  }
  return out;
}

TEST(MatcherParallelTest, OutputIdenticalAcrossThreadCounts) {
  Rng rng(42);
  const size_t kNumA = 64;
  std::vector<EncodedRecord> a = RandomRecords(kNumA, 96, 0, rng);
  std::vector<EncodedRecord> b = RandomRecords(257, 96, 1000, rng);
  HashedSpanSource source(kNumA, 23);
  VectorStore store;
  store.AddAll(a);
  Matcher matcher(&source, &store);
  const PairClassifier classifier = MakeRecordThresholdClassifier(40);

  MatchStats serial_stats;
  const std::vector<IdPair> serial =
      matcher.MatchAll(b, classifier, &serial_stats);
  EXPECT_GT(serial_stats.matches, 0u) << "test needs a non-trivial workload";
  EXPECT_GT(serial_stats.dedup_skipped, 0u);

  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    MatchStats stats;
    const std::vector<IdPair> parallel =
        matcher.MatchAll(b, classifier, &stats, &pool);
    EXPECT_EQ(parallel, serial) << "pairs diverge at " << threads
                                << " threads";
    EXPECT_EQ(stats.candidate_occurrences, serial_stats.candidate_occurrences);
    EXPECT_EQ(stats.comparisons, serial_stats.comparisons);
    EXPECT_EQ(stats.matches, serial_stats.matches);
    EXPECT_EQ(stats.dedup_skipped, serial_stats.dedup_skipped);
  }
}

TEST(MatcherParallelTest, NullPoolAndEmptyInputAreSafe) {
  Rng rng(7);
  std::vector<EncodedRecord> a = RandomRecords(4, 32, 0, rng);
  HashedSpanSource source(4, 5);
  VectorStore store;
  store.AddAll(a);
  Matcher matcher(&source, &store);
  ThreadPool pool(4);
  MatchStats stats;
  EXPECT_TRUE(matcher
                  .MatchAll({}, MakeRecordThresholdClassifier(8), &stats,
                            &pool)
                  .empty());
  EXPECT_EQ(stats.candidate_occurrences, 0u);
  EXPECT_TRUE(matcher
                  .MatchAll({}, MakeRecordThresholdClassifier(8), &stats,
                            nullptr)
                  .empty());
}

TEST(MatcherParallelTest, RuleClassifierIdenticalAcrossThreadCounts) {
  RecordLayout layout;
  layout.Add(48);
  layout.Add(48);
  const Rule rule = Rule::Or(
      {Rule::And({Rule::Pred(0, 14), Rule::Pred(1, 14)}), Rule::Pred(0, 8)});
  const PairClassifier classifier = MakeRuleClassifier(rule, layout);

  Rng rng(11);
  const size_t kNumA = 48;
  std::vector<EncodedRecord> a = RandomRecords(kNumA, 96, 0, rng);
  std::vector<EncodedRecord> b = RandomRecords(128, 96, 500, rng);
  HashedSpanSource source(kNumA, 17);
  VectorStore store;
  store.AddAll(a);
  Matcher matcher(&source, &store);

  MatchStats serial_stats;
  const std::vector<IdPair> serial =
      matcher.MatchAll(b, classifier, &serial_stats);
  ThreadPool pool(8);
  MatchStats stats;
  const std::vector<IdPair> parallel =
      matcher.MatchAll(b, classifier, &stats, &pool);
  EXPECT_EQ(parallel, serial);
  EXPECT_EQ(stats.matches, serial_stats.matches);
  EXPECT_EQ(stats.comparisons, serial_stats.comparisons);
}

}  // namespace
}  // namespace cbvlink
