#include "src/blocking/matcher.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace cbvlink {
namespace {

/// A candidate source that replays a fixed list (with duplicates) for any
/// probe — isolates Algorithm 2 from the LSH machinery.
class FixedSource : public CandidateSource {
 public:
  explicit FixedSource(std::vector<RecordId> ids) : ids_(std::move(ids)) {}

  void ForEachCandidate(
      const BitVector&,
      const std::function<void(RecordId)>& cb) const override {
    for (RecordId id : ids_) cb(id);
  }

 private:
  std::vector<RecordId> ids_;
};

EncodedRecord MakeRecord(RecordId id, size_t bits,
                         std::initializer_list<size_t> set_bits) {
  EncodedRecord r;
  r.id = id;
  r.bits = BitVector(bits);
  for (size_t b : set_bits) r.bits.Set(b);
  return r;
}

TEST(VectorStoreTest, AddAndFind) {
  VectorStore store;
  store.Add(MakeRecord(5, 16, {1}));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.Find(5), nullptr);
  EXPECT_TRUE(store.Find(5)->Test(1));
  EXPECT_EQ(store.Find(6), nullptr);
}

TEST(VectorStoreTest, AddAll) {
  VectorStore store;
  store.AddAll({MakeRecord(1, 8, {}), MakeRecord(2, 8, {})});
  EXPECT_EQ(store.size(), 2u);
}

TEST(MatcherTest, Algorithm2DeduplicatesPerProbe) {
  // The same A-Id delivered from three blocking groups must be compared
  // once (the unique collection C of Algorithm 2).
  FixedSource source({1, 1, 1, 2});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0}));
  store.Add(MakeRecord(2, 16, {0}));

  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {0}),
                   MakeRecordThresholdClassifier(0), &out, &stats);
  EXPECT_EQ(stats.candidate_occurrences, 4u);
  EXPECT_EQ(stats.comparisons, 2u);
  EXPECT_EQ(stats.dedup_skipped, 2u);
  EXPECT_EQ(stats.matches, 2u);
  ASSERT_EQ(out.size(), 2u);
}

TEST(MatcherTest, DedupResetsBetweenProbes) {
  FixedSource source({1});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0}));
  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out = matcher.MatchAll(
      {MakeRecord(100, 16, {0}), MakeRecord(101, 16, {0})},
      MakeRecordThresholdClassifier(0), &stats);
  // Each B record compares against A-Id 1 independently.
  EXPECT_EQ(stats.comparisons, 2u);
  EXPECT_EQ(out.size(), 2u);
}

TEST(MatcherTest, UnknownIdsSkippedSafely) {
  FixedSource source({42});
  VectorStore store;  // empty — Id 42 unknown
  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {}),
                   MakeRecordThresholdClassifier(0), &out, &stats);
  EXPECT_EQ(stats.comparisons, 0u);
  EXPECT_TRUE(out.empty());
}

TEST(MatcherTest, ThresholdClassifierFiltersByDistance) {
  FixedSource source({1, 2});
  VectorStore store;
  store.Add(MakeRecord(1, 16, {0, 1}));          // distance 0 to probe
  store.Add(MakeRecord(2, 16, {0, 1, 2, 3, 4}));  // distance 3 to probe
  Matcher matcher(&source, &store);
  MatchStats stats;
  std::vector<IdPair> out;
  matcher.MatchOne(MakeRecord(100, 16, {0, 1}),
                   MakeRecordThresholdClassifier(2), &out, &stats);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].a_id, 1u);
  EXPECT_EQ(out[0].b_id, 100u);
}

TEST(MakeRuleClassifierTest, EvaluatesAttributeLevelDistances) {
  RecordLayout layout;
  layout.Add(8);
  layout.Add(8);
  // Rule: f1 <= 1 AND f2 <= 0.
  const Rule rule = Rule::And({Rule::Pred(0, 1), Rule::Pred(1, 0)});
  const PairClassifier classify = MakeRuleClassifier(rule, layout);

  BitVector a(16);
  BitVector b(16);
  EXPECT_TRUE(classify(a, b));
  b.Set(0);  // f1 distance 1
  EXPECT_TRUE(classify(a, b));
  b.Set(1);  // f1 distance 2
  EXPECT_FALSE(classify(a, b));
  b.Clear(1);
  b.Set(8);  // f2 distance 1
  EXPECT_FALSE(classify(a, b));
}

TEST(MakeRuleClassifierTest, NotRuleSemantics) {
  RecordLayout layout;
  layout.Add(8);
  layout.Add(8);
  // f1 <= 1 AND NOT (f2 <= 1).
  const Rule rule =
      Rule::And({Rule::Pred(0, 1), Rule::Not(Rule::Pred(1, 1))});
  const PairClassifier classify = MakeRuleClassifier(rule, layout);
  BitVector a(16);
  BitVector b(16);
  EXPECT_FALSE(classify(a, b));  // f2 distance 0 <= 1 -> NOT fails
  b.Set(8);
  b.Set(9);
  b.Set(10);  // f2 distance 3
  EXPECT_TRUE(classify(a, b));
}

TEST(MatcherTest, MatchStatsAccumulate) {
  MatchStats a{10, 5, 2, 3};
  MatchStats b{1, 1, 1, 0};
  a += b;
  EXPECT_EQ(a.candidate_occurrences, 11u);
  EXPECT_EQ(a.comparisons, 6u);
  EXPECT_EQ(a.matches, 3u);
  EXPECT_EQ(a.dedup_skipped, 3u);
}

}  // namespace
}  // namespace cbvlink
