#include "src/metrics/jaro_winkler.h"

#include <gtest/gtest.h>

#include "src/metrics/euclidean.h"

namespace cbvlink {
namespace {

TEST(JaroTest, IdenticalAndEmpty) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("MARTHA", "MARTHA"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", "ABC"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("ABC", ""), 0.0);
}

TEST(JaroTest, NoCommonCharacters) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("ABC", "XYZ"), 0.0);
}

TEST(JaroTest, ClassicMarthaMarhta) {
  // Standard reference value: 0.944...
  EXPECT_NEAR(JaroSimilarity("MARTHA", "MARHTA"), 0.9444444, 1e-6);
}

TEST(JaroTest, ClassicDwayneDuane) {
  EXPECT_NEAR(JaroSimilarity("DWAYNE", "DUANE"), 0.8222222, 1e-6);
}

TEST(JaroTest, ClassicDixonDicksonx) {
  EXPECT_NEAR(JaroSimilarity("DIXON", "DICKSONX"), 0.7666667, 1e-6);
}

TEST(JaroTest, Symmetric) {
  EXPECT_DOUBLE_EQ(JaroSimilarity("DWAYNE", "DUANE"),
                   JaroSimilarity("DUANE", "DWAYNE"));
}

TEST(JaroWinklerTest, BoostsCommonPrefix) {
  // MARTHA/MARHTA share a 3-char prefix: 0.9444 + 3*0.1*(1-0.9444).
  EXPECT_NEAR(JaroWinklerSimilarity("MARTHA", "MARHTA"), 0.9611111, 1e-6);
  EXPECT_GE(JaroWinklerSimilarity("MARTHA", "MARHTA"),
            JaroSimilarity("MARTHA", "MARHTA"));
}

TEST(JaroWinklerTest, NoPrefixNoBoost) {
  EXPECT_DOUBLE_EQ(JaroWinklerSimilarity("DWAYNE", "UANED"),
                   JaroSimilarity("DWAYNE", "UANED"));
}

TEST(JaroWinklerTest, PrefixCapAtFour) {
  const double sim4 = JaroWinklerSimilarity("ABCDEX", "ABCDEY");
  const double jaro = JaroSimilarity("ABCDEX", "ABCDEY");
  EXPECT_NEAR(sim4, jaro + 4 * 0.1 * (1 - jaro), 1e-12);
}

TEST(JaroWinklerTest, WeightClampedToQuarter) {
  const double sim = JaroWinklerSimilarity("MARTHA", "MARHTA", 5.0);
  EXPECT_LE(sim, 1.0);
}

TEST(JaroWinklerTest, DistanceComplementsSimilarity) {
  EXPECT_DOUBLE_EQ(
      JaroWinklerDistance("DWAYNE", "DUANE") +
          JaroWinklerSimilarity("DWAYNE", "DUANE"),
      1.0);
}

TEST(EuclideanTest, ZeroDistanceForIdentical) {
  const std::vector<double> v{1.0, -2.0, 3.5};
  EXPECT_DOUBLE_EQ(EuclideanDistance(v, v), 0.0);
}

TEST(EuclideanTest, KnownValues) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclideanDistance({1, 1}, {2, 2}), 2.0);
}

TEST(EuclideanTest, Symmetric) {
  const std::vector<double> a{1, 2, 3};
  const std::vector<double> b{-4, 0, 9};
  EXPECT_DOUBLE_EQ(EuclideanDistance(a, b), EuclideanDistance(b, a));
}

}  // namespace
}  // namespace cbvlink
