// Crash-safety tests for the append-only insert journal (src/io/journal.h):
// round trips, fsync policies, a corruption sweep (truncation at every
// offset, single-byte flips), failpoint-driven kill-during-append, epoch
// rotation, and replay equivalence against direct service inserts.

#include "src/io/journal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/failpoint.h"
#include "src/datagen/generators.h"
#include "src/service/linkage_service.h"
#include "src/telemetry/metrics.h"

namespace cbvlink {
namespace {

Record MakeRecord(RecordId id) {
  Record r;
  r.id = id;
  r.fields = {"JOHN" + std::to_string(id), "SMITH", "DURHAM", "27701"};
  return r;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

/// Replays `path` collecting the records.
std::vector<Record> ReplayAll(const std::string& path,
                              JournalReplayStats* stats) {
  std::vector<Record> records;
  Result<JournalReplayStats> result =
      ReplayJournal(path, [&records](const MutationOp& op) {
        records.push_back(op.record);
        return Status::OK();
      });
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (result.ok() && stats != nullptr) *stats = result.value();
  return records;
}

TEST(JournalTest, OpenCreatesHeaderOnlyFile) {
  const std::string path = TempPath("journal_create.cbvj");
  Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok()) << journal.status().ToString();
  EXPECT_EQ(journal.value()->EndOffset(), kJournalHeaderSize);
  EXPECT_EQ(journal.value()->epoch(), 0u);
  EXPECT_EQ(journal.value()->appended_frames(), 0u);
  journal.value().reset();

  EXPECT_EQ(ReadFileBytes(path).size(), kJournalHeaderSize);
  JournalReplayStats stats;
  EXPECT_TRUE(ReplayAll(path, &stats).empty());
  EXPECT_TRUE(stats.existed);
  EXPECT_EQ(stats.frames, 0u);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST(JournalTest, MissingFileReplaysAsNonexistent) {
  JournalReplayStats stats;
  EXPECT_TRUE(ReplayAll(TempPath("journal_missing.cbvj"), &stats).empty());
  EXPECT_FALSE(stats.existed);
}

TEST(JournalTest, AppendThenReplayRoundTrip) {
  const std::string path = TempPath("journal_roundtrip.cbvj");
  Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  for (RecordId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(id)).ok());
  }
  EXPECT_EQ(journal.value()->appended_frames(), 5u);
  const uint64_t end = journal.value()->EndOffset();
  journal.value().reset();

  JournalReplayStats stats;
  const std::vector<Record> replayed = ReplayAll(path, &stats);
  ASSERT_EQ(replayed.size(), 5u);
  for (size_t i = 0; i < replayed.size(); ++i) {
    const Record expected = MakeRecord(static_cast<RecordId>(i + 1));
    EXPECT_EQ(replayed[i].id, expected.id);
    EXPECT_EQ(replayed[i].fields, expected.fields);
  }
  EXPECT_EQ(stats.frames, 5u);
  EXPECT_EQ(stats.applied, 5u);
  EXPECT_EQ(stats.valid_bytes, end);
  EXPECT_FALSE(stats.tail_truncated);
}

TEST(JournalTest, ReopenResumesAppendingAtTheEnd) {
  const std::string path = TempPath("journal_reopen.cbvj");
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(1)).ok());
  }
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    // appended_frames counts this handle's appends, not history.
    EXPECT_EQ(journal.value()->appended_frames(), 0u);
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(2)).ok());
  }
  const std::vector<Record> replayed = ReplayAll(path, nullptr);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].id, 1u);
  EXPECT_EQ(replayed[1].id, 2u);
}

TEST(JournalTest, FsyncPolicyCadence) {
  telemetry::Registry::Global().ResetForTest();
  telemetry::Counter* fsyncs =
      telemetry::Registry::Global().GetCounter("journal_fsyncs_total");

  // fsync_every = 1: one fsync per append.
  {
    Result<std::unique_ptr<Journal>> journal =
        Journal::Open(TempPath("journal_fsync1.cbvj"), {.fsync_every = 1});
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(1)).ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(2)).ok());
    EXPECT_EQ(fsyncs->Value(), 2u);
  }

  // fsync_every = 3: only the third append syncs; a manual Sync() flushes
  // the pending tail, and a second Sync() with nothing pending is free.
  {
    telemetry::Registry::Global().ResetForTest();
    Result<std::unique_ptr<Journal>> journal =
        Journal::Open(TempPath("journal_fsync3.cbvj"), {.fsync_every = 3});
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(1)).ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(2)).ok());
    EXPECT_EQ(fsyncs->Value(), 0u);
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(3)).ok());
    EXPECT_EQ(fsyncs->Value(), 1u);
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(4)).ok());
    ASSERT_TRUE(journal.value()->Sync().ok());
    EXPECT_EQ(fsyncs->Value(), 2u);
    ASSERT_TRUE(journal.value()->Sync().ok());
    EXPECT_EQ(fsyncs->Value(), 2u);
  }

  // fsync_every = 0: appends never sync (the OS decides).
  {
    telemetry::Registry::Global().ResetForTest();
    Result<std::unique_ptr<Journal>> journal =
        Journal::Open(TempPath("journal_fsync0.cbvj"), {.fsync_every = 0});
    ASSERT_TRUE(journal.ok());
    for (RecordId id = 1; id <= 8; ++id) {
      ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(id)).ok());
    }
    EXPECT_EQ(fsyncs->Value(), 0u);
  }
  telemetry::Registry::Global().ResetForTest();
}

// The central crash-safety property: for EVERY possible truncation point
// of a valid journal, replay recovers exactly the frames that lie fully
// before the cut, flags the torn tail, and Open() resumes appending from
// the same boundary.
TEST(JournalTest, CorruptionSweepTruncationAtEveryOffset) {
  const std::string path = TempPath("journal_sweep_base.cbvj");
  std::vector<uint64_t> boundaries = {kJournalHeaderSize};
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (RecordId id = 1; id <= 4; ++id) {
      ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(id)).ok());
      boundaries.push_back(journal.value()->EndOffset());
    }
  }
  const std::string bytes = ReadFileBytes(path);
  ASSERT_EQ(bytes.size(), boundaries.back());

  const std::string cut_path = TempPath("journal_sweep_cut.cbvj");
  for (size_t cut = kJournalHeaderSize; cut <= bytes.size(); ++cut) {
    WriteFileBytes(cut_path, bytes.substr(0, cut));

    // How many frames end at or before the cut, and where the last one ends.
    uint64_t expect_frames = 0;
    uint64_t expect_valid = kJournalHeaderSize;
    for (size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) {
        expect_frames = b;
        expect_valid = boundaries[b];
      }
    }

    JournalReplayStats stats;
    const std::vector<Record> replayed = ReplayAll(cut_path, &stats);
    ASSERT_EQ(replayed.size(), expect_frames) << "cut at " << cut;
    EXPECT_EQ(stats.valid_bytes, expect_valid) << "cut at " << cut;
    EXPECT_EQ(stats.tail_truncated, cut != expect_valid) << "cut at " << cut;
    for (size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_EQ(replayed[i].id, i + 1) << "cut at " << cut;
    }

    // Open() must truncate the torn tail and land appends cleanly.
    Result<std::unique_ptr<Journal>> reopened = Journal::Open(cut_path);
    ASSERT_TRUE(reopened.ok()) << "cut at " << cut;
    EXPECT_EQ(reopened.value()->EndOffset(), expect_valid) << "cut at " << cut;
    ASSERT_TRUE(reopened.value()->AppendInsert(MakeRecord(99)).ok());
    reopened.value().reset();
    const std::vector<Record> after = ReplayAll(cut_path, nullptr);
    ASSERT_EQ(after.size(), expect_frames + 1) << "cut at " << cut;
    EXPECT_EQ(after.back().id, 99u) << "cut at " << cut;
  }
}

// Flip every single byte of the frame region (one at a time): replay must
// stop before the frame containing the flip — the CRC (or the length
// bound) catches it — and never emit a wrong record.
TEST(JournalTest, CorruptionSweepSingleByteFlips) {
  const std::string path = TempPath("journal_flip_base.cbvj");
  std::vector<uint64_t> boundaries = {kJournalHeaderSize};
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (RecordId id = 1; id <= 3; ++id) {
      ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(id)).ok());
      boundaries.push_back(journal.value()->EndOffset());
    }
  }
  const std::string bytes = ReadFileBytes(path);

  const std::string flip_path = TempPath("journal_flip.cbvj");
  for (size_t pos = kJournalHeaderSize; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    WriteFileBytes(flip_path, mutated);

    // Frames strictly before the flipped frame survive.
    uint64_t expect_frames = 0;
    for (size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= pos) expect_frames = b;
    }

    std::vector<Record> replayed;
    Result<JournalReplayStats> stats =
        ReplayJournal(flip_path, [&replayed](const MutationOp& op) {
          replayed.push_back(op.record);
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << "flip at " << pos;
    ASSERT_EQ(replayed.size(), expect_frames) << "flip at " << pos;
    EXPECT_TRUE(stats.value().tail_truncated) << "flip at " << pos;
    for (size_t i = 0; i < replayed.size(); ++i) {
      EXPECT_EQ(replayed[i].id, i + 1) << "flip at " << pos;
    }
  }
}

// Delete/update frames round-trip with their kinds and acknowledgement
// sequences intact; a delete frame carries only the id.
TEST(JournalTest, MutationFramesRoundTrip) {
  const std::string path = TempPath("journal_mutation_roundtrip.cbvj");
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->Append(MutationOp::Insert(MakeRecord(1))).ok());
    ASSERT_TRUE(journal.value()->Append(MutationOp::Delete(1, 7)).ok());
    ASSERT_TRUE(
        journal.value()->Append(MutationOp::Update(MakeRecord(2), 8)).ok());
    EXPECT_EQ(journal.value()->appended_frames(), 3u);
  }

  std::vector<MutationOp> ops;
  Result<JournalReplayStats> stats = ReplayJournal(path, [&ops](const MutationOp& op) {
    ops.push_back(op);
    return Status::OK();
  });
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  ASSERT_EQ(ops.size(), 3u);
  EXPECT_EQ(ops[0].kind, MutationKind::kInsert);
  EXPECT_EQ(ops[0].record.fields, MakeRecord(1).fields);
  EXPECT_EQ(ops[0].sequence, 0u);
  EXPECT_EQ(ops[1].kind, MutationKind::kDelete);
  EXPECT_EQ(ops[1].record.id, 1u);
  EXPECT_TRUE(ops[1].record.fields.empty());
  EXPECT_EQ(ops[1].sequence, 7u);
  EXPECT_EQ(ops[2].kind, MutationKind::kUpdate);
  EXPECT_EQ(ops[2].record.id, 2u);
  EXPECT_EQ(ops[2].record.fields, MakeRecord(2).fields);
  EXPECT_EQ(ops[2].sequence, 8u);
}

// The truncation and flip sweeps, repeated over a journal that mixes all
// three op frames: the new delete/update frames must be exactly as
// crash-safe as inserts — any cut or flip loses only the torn tail.
TEST(JournalTest, CorruptionSweepMixedOpFrames) {
  const std::string path = TempPath("journal_mixed_base.cbvj");
  std::vector<uint64_t> boundaries = {kJournalHeaderSize};
  const std::vector<MutationOp> appended = {
      MutationOp::Insert(MakeRecord(1)),
      MutationOp::Delete(1, 1),
      MutationOp::Update(MakeRecord(2), 2),
      MutationOp::Delete(12345678, 3),
  };
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    for (const MutationOp& op : appended) {
      ASSERT_TRUE(journal.value()->Append(op).ok());
      boundaries.push_back(journal.value()->EndOffset());
    }
  }
  const std::string bytes = ReadFileBytes(path);

  auto expect_prefix = [&](const std::vector<MutationOp>& ops, size_t n,
                           const std::string& label) {
    ASSERT_EQ(ops.size(), n) << label;
    for (size_t i = 0; i < ops.size(); ++i) {
      EXPECT_EQ(ops[i].kind, appended[i].kind) << label;
      EXPECT_EQ(ops[i].record.id, appended[i].record.id) << label;
      EXPECT_EQ(ops[i].sequence, appended[i].sequence) << label;
    }
  };

  const std::string mutated_path = TempPath("journal_mixed_mutated.cbvj");
  // Truncation at every offset.
  for (size_t cut = kJournalHeaderSize; cut <= bytes.size(); ++cut) {
    WriteFileBytes(mutated_path, bytes.substr(0, cut));
    size_t expect_frames = 0;
    for (size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= cut) expect_frames = b;
    }
    std::vector<MutationOp> ops;
    Result<JournalReplayStats> stats =
        ReplayJournal(mutated_path, [&ops](const MutationOp& op) {
          ops.push_back(op);
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << "cut at " << cut;
    expect_prefix(ops, expect_frames, "cut at " + std::to_string(cut));
  }
  // Single-byte flips at every offset (including each frame's op byte and
  // sequence field).
  for (size_t pos = kJournalHeaderSize; pos < bytes.size(); ++pos) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    WriteFileBytes(mutated_path, mutated);
    size_t expect_frames = 0;
    for (size_t b = 1; b < boundaries.size(); ++b) {
      if (boundaries[b] <= pos) expect_frames = b;
    }
    std::vector<MutationOp> ops;
    Result<JournalReplayStats> stats =
        ReplayJournal(mutated_path, [&ops](const MutationOp& op) {
          ops.push_back(op);
          return Status::OK();
        });
    ASSERT_TRUE(stats.ok()) << "flip at " << pos;
    EXPECT_TRUE(stats.value().tail_truncated) << "flip at " << pos;
    expect_prefix(ops, expect_frames, "flip at " + std::to_string(pos));
  }
}

TEST(JournalTest, FlippedHeaderMagicIsRejected) {
  const std::string path = TempPath("journal_badmagic.cbvj");
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(1)).ok());
  }
  std::string bytes = ReadFileBytes(path);
  bytes[0] = static_cast<char>(bytes[0] ^ 0xff);
  WriteFileBytes(path, bytes);

  EXPECT_FALSE(Journal::Open(path).ok());
  Result<JournalReplayStats> replay =
      ReplayJournal(path, [](const MutationOp&) { return Status::OK(); });
  EXPECT_FALSE(replay.ok());
}

// Kill-during-append drill: the journal.append short_write failpoint
// persists a torn frame prefix exactly like a crash mid-pwrite, the
// handle reports the failure, and the next Open() truncates the torn
// bytes so recovery sees only acknowledged inserts.
TEST(JournalTest, FailpointKillDuringAppendLeavesRecoverableTail) {
  const std::string path = TempPath("journal_torn.cbvj");
  uint64_t end_before_kill = 0;
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(1)).ok());
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(2)).ok());
    end_before_kill = journal.value()->EndOffset();

    // The "crash": only the first 5 bytes of the next frame hit disk.
    Failpoints::Activate("journal.append", FailpointAction::kShortWrite, 5);
    const Status torn = journal.value()->AppendInsert(MakeRecord(3));
    Failpoints::DeactivateAll();
    EXPECT_FALSE(torn.ok());
    // The handle's end offset stays at the last valid boundary.
    EXPECT_EQ(journal.value()->EndOffset(), end_before_kill);
  }

  // The torn bytes really are on disk (a crash would leave them too)...
  EXPECT_EQ(ReadFileBytes(path).size(), end_before_kill + 5);

  // ...replay stops cleanly at the last valid frame...
  JournalReplayStats stats;
  const std::vector<Record> replayed = ReplayAll(path, &stats);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(stats.valid_bytes, end_before_kill);
  EXPECT_TRUE(stats.tail_truncated);

  // ...and Open() truncates them so new appends extend a clean prefix.
  Result<std::unique_ptr<Journal>> reopened = Journal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->EndOffset(), end_before_kill);
  ASSERT_TRUE(reopened.value()->AppendInsert(MakeRecord(3)).ok());
  const uint64_t end_after_append = reopened.value()->EndOffset();
  EXPECT_GT(end_after_append, end_before_kill);
  reopened.value().reset();
  EXPECT_EQ(ReadFileBytes(path).size(), end_after_append);
  const std::vector<Record> after = ReplayAll(path, nullptr);
  ASSERT_EQ(after.size(), 3u);
  EXPECT_EQ(after[2].id, 3u);
}

TEST(JournalTest, FailpointAppendErrorDoesNotPoisonTheTail) {
  const std::string path = TempPath("journal_apperr.cbvj");
  Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(1)).ok());
  const uint64_t end = journal.value()->EndOffset();

  Failpoints::Activate("journal.append", FailpointAction::kError);
  EXPECT_FALSE(journal.value()->AppendInsert(MakeRecord(2)).ok());
  Failpoints::DeactivateAll();
  EXPECT_EQ(journal.value()->EndOffset(), end);

  ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(3)).ok());
  journal.value().reset();
  const std::vector<Record> replayed = ReplayAll(path, nullptr);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_EQ(replayed[0].id, 1u);
  EXPECT_EQ(replayed[1].id, 3u);
}

TEST(JournalTest, DropCommittedRotatesEpochAndKeepsTheTail) {
  telemetry::Registry::Global().ResetForTest();
  const std::string path = TempPath("journal_rotate.cbvj");
  Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  std::vector<uint64_t> boundaries;
  for (RecordId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(id)).ok());
    boundaries.push_back(journal.value()->EndOffset());
  }

  // Past-the-end mark is rejected.
  EXPECT_FALSE(journal.value()->DropCommitted(boundaries.back() + 1).ok());

  // Drop the first three frames: epoch bumps, only 4 and 5 remain.
  ASSERT_TRUE(journal.value()->DropCommitted(boundaries[2]).ok());
  EXPECT_EQ(journal.value()->epoch(), 1u);
  EXPECT_EQ(journal.value()->EndOffset(),
            kJournalHeaderSize + (boundaries[4] - boundaries[2]));
  EXPECT_EQ(telemetry::Registry::Global()
                .GetCounter("journal_rotations_total")
                ->Value(),
            1u);

  // The rotated journal still appends and replays: 4, 5, then 6.
  ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(6)).ok());
  journal.value().reset();
  JournalReplayStats stats;
  const std::vector<Record> replayed = ReplayAll(path, &stats);
  EXPECT_EQ(stats.epoch, 1u);
  ASSERT_EQ(replayed.size(), 3u);
  EXPECT_EQ(replayed[0].id, 4u);
  EXPECT_EQ(replayed[1].id, 5u);
  EXPECT_EQ(replayed[2].id, 6u);

  // Dropping everything leaves a header-only epoch-2 journal.
  Result<std::unique_ptr<Journal>> reopened = Journal::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->epoch(), 1u);
  ASSERT_TRUE(reopened.value()->DropCommitted(reopened.value()->EndOffset()).ok());
  EXPECT_EQ(reopened.value()->epoch(), 2u);
  EXPECT_EQ(reopened.value()->EndOffset(), kJournalHeaderSize);
  telemetry::Registry::Global().ResetForTest();
}

// Regression: DropCommitted swaps in the rotated file's fd, which must
// stay readable — ReadSegment (replication fetch) and the next
// rotation's tail copy both pread it without reopening the journal.
TEST(JournalTest, RotatedJournalStaysReadableWithoutReopen) {
  const std::string path = TempPath("journal_rotate_read.cbvj");
  Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  std::vector<uint64_t> boundaries;
  for (RecordId id = 1; id <= 4; ++id) {
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(id)).ok());
    boundaries.push_back(journal.value()->EndOffset());
  }

  // Rotate keeping frames 3 and 4 as the uncovered tail.
  ASSERT_TRUE(journal.value()->DropCommitted(boundaries[1]).ok());
  ASSERT_EQ(journal.value()->epoch(), 1u);

  // ReadSegment on the post-rotation fd must serve the tail frames.
  std::string segment;
  uint64_t seg_end = 0;
  uint64_t epoch = 0;
  ASSERT_TRUE(journal.value()
                  ->ReadSegment(kJournalHeaderSize, 1u << 20, &segment,
                                &seg_end, &epoch)
                  .ok());
  EXPECT_EQ(epoch, 1u);
  EXPECT_EQ(seg_end, journal.value()->EndOffset());
  JournalFrameDecoder decoder;
  decoder.Feed(segment);
  Record record;
  ASSERT_EQ(decoder.Pop(&record), JournalFrameDecoder::Next::kRecord);
  EXPECT_EQ(record.id, 3u);
  ASSERT_EQ(decoder.Pop(&record), JournalFrameDecoder::Next::kRecord);
  EXPECT_EQ(record.id, 4u);
  EXPECT_EQ(decoder.Pop(&record), JournalFrameDecoder::Next::kNeedMore);

  // A second tailed rotation on the same handle preads the same fd for
  // its tail copy: append 5, drop through frame 4, keep 5.
  const uint64_t before_5 = journal.value()->EndOffset();
  ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(5)).ok());
  ASSERT_TRUE(journal.value()->DropCommitted(before_5).ok());
  EXPECT_EQ(journal.value()->epoch(), 2u);
  journal.value().reset();

  JournalReplayStats stats;
  const std::vector<Record> replayed = ReplayAll(path, &stats);
  EXPECT_EQ(stats.epoch, 2u);
  ASSERT_EQ(replayed.size(), 1u);
  EXPECT_EQ(replayed[0].id, 5u);
}

TEST(JournalTest, ReadSegmentServesRawBytesWithCursorMetadata) {
  const std::string path = TempPath("journal_segment.cbvj");
  Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
  ASSERT_TRUE(journal.ok());
  for (RecordId id = 1; id <= 3; ++id) {
    ASSERT_TRUE(journal.value()->AppendInsert(MakeRecord(id)).ok());
  }
  const uint64_t end = journal.value()->EndOffset();

  // Chunked reads reassemble to the exact on-disk frame bytes, and a
  // JournalFrameDecoder fed those chunks decodes every record — the
  // replication follower's exact read path.
  std::string assembled;
  JournalFrameDecoder decoder;
  uint64_t cursor = kJournalHeaderSize;
  while (cursor < end) {
    std::string segment;
    uint64_t seg_end = 0;
    uint64_t epoch = 0;
    ASSERT_TRUE(
        journal.value()->ReadSegment(cursor, 7, &segment, &seg_end, &epoch).ok());
    ASSERT_FALSE(segment.empty());
    EXPECT_EQ(seg_end, end);
    EXPECT_EQ(epoch, 0u);
    decoder.Feed(segment);
    assembled += segment;
    cursor += segment.size();
  }
  EXPECT_EQ(assembled, ReadFileBytes(path).substr(kJournalHeaderSize));
  Record record;
  for (RecordId id = 1; id <= 3; ++id) {
    ASSERT_EQ(decoder.Pop(&record), JournalFrameDecoder::Next::kRecord);
    EXPECT_EQ(record.id, id);
  }
  EXPECT_EQ(decoder.Pop(&record), JournalFrameDecoder::Next::kNeedMore);
  EXPECT_EQ(decoder.consumed_bytes(), end - kJournalHeaderSize);

  // Reads at or past the end return empty with the metadata intact.
  std::string segment;
  uint64_t seg_end = 0;
  uint64_t epoch = 0;
  ASSERT_TRUE(journal.value()->ReadSegment(end, 1024, &segment, &seg_end, &epoch).ok());
  EXPECT_TRUE(segment.empty());
  EXPECT_EQ(seg_end, end);
}

// --- Service-level replay equivalence -------------------------------------

CbvHbConfig BaseConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  config.seed = 5;
  return config;
}

std::vector<Record> GenerateRecords(const NcvrGenerator& gen, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(gen.Generate(i, rng));
  }
  return records;
}

std::string SnapshotBytes(LinkageService* service) {
  std::ostringstream out;
  EXPECT_TRUE(service->SaveSnapshot(out).ok());
  return out.str();
}

// The satellite's core assertion: a service rebuilt by replaying the
// journal is byte-identical (as a snapshot stream) to one built by the
// same direct inserts.
TEST(JournalTest, ReplayedServiceIsByteIdenticalToDirectInserts) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const std::vector<Record> records = GenerateRecords(gen.value(), 30, 7);

  const std::string path = TempPath("journal_equiv.cbvj");
  Result<std::unique_ptr<LinkageService>> primary =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(primary.ok());
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(path);
    ASSERT_TRUE(journal.ok());
    primary.value()->AttachJournal(std::move(journal.value()));
  }
  for (const Record& r : records) {
    ASSERT_TRUE(primary.value()->Insert(r).ok());
  }

  Result<std::unique_ptr<LinkageService>> replayed =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(replayed.ok());
  Result<JournalReplayStats> stats =
      replayed.value()->ReplayJournalFile(path);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats.value().frames, records.size());
  EXPECT_EQ(stats.value().applied, records.size());
  EXPECT_EQ(replayed.value()->size(), records.size());

  EXPECT_EQ(SnapshotBytes(primary.value().get()),
            SnapshotBytes(replayed.value().get()));
}

// Crash window between snapshot commit and journal rotation: replaying a
// journal whose every frame the snapshot already covers applies nothing.
TEST(JournalTest, ReplayDedupesFramesTheSnapshotAlreadyCovers) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const std::vector<Record> records = GenerateRecords(gen.value(), 10, 11);

  const std::string journal_path = TempPath("journal_dedupe.cbvj");
  const std::string stale_copy = TempPath("journal_dedupe_stale.cbvj");
  const std::string snapshot_path = TempPath("journal_dedupe.cbvs");

  Result<std::unique_ptr<LinkageService>> primary =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(primary.ok());
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    primary.value()->AttachJournal(std::move(journal.value()));
  }
  for (const Record& r : records) {
    ASSERT_TRUE(primary.value()->Insert(r).ok());
  }

  // The stale copy stands in for "crashed after the snapshot rename but
  // before DropCommitted": every frame duplicates snapshot contents.
  WriteFileBytes(stale_copy, ReadFileBytes(journal_path));
  ASSERT_TRUE(primary.value()->SaveSnapshotToFile(snapshot_path).ok());
  // The live journal did rotate (the normal path).
  EXPECT_EQ(primary.value()->journal()->epoch(), 1u);
  EXPECT_EQ(primary.value()->journal()->EndOffset(), kJournalHeaderSize);

  Result<std::unique_ptr<LinkageService>> restored =
      LinkageService::RestoreFromFile(snapshot_path);
  ASSERT_TRUE(restored.ok());
  Result<JournalReplayStats> stats =
      restored.value()->ReplayJournalFile(stale_copy);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().frames, records.size());
  EXPECT_EQ(stats.value().applied, 0u);  // every id deduped
  EXPECT_EQ(restored.value()->size(), records.size());

  EXPECT_EQ(SnapshotBytes(primary.value().get()),
            SnapshotBytes(restored.value().get()));
}

// Full recovery drill at the service level: snapshot + journal tail +
// torn final append == exactly the acknowledged inserts.
TEST(JournalTest, SnapshotPlusJournalTailRecoversAcknowledgedInserts) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  const std::vector<Record> records = GenerateRecords(gen.value(), 12, 3);

  const std::string journal_path = TempPath("journal_recovery.cbvj");
  const std::string snapshot_path = TempPath("journal_recovery.cbvs");

  Result<std::unique_ptr<LinkageService>> primary =
      LinkageService::Create(BaseConfig(gen.value().schema()));
  ASSERT_TRUE(primary.ok());
  {
    Result<std::unique_ptr<Journal>> journal = Journal::Open(journal_path);
    ASSERT_TRUE(journal.ok());
    primary.value()->AttachJournal(std::move(journal.value()));
  }

  // 8 inserts, snapshot, 4 more, then a torn 13th append (crash).
  for (size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(primary.value()->Insert(records[i]).ok());
  }
  ASSERT_TRUE(primary.value()->SaveSnapshotToFile(snapshot_path).ok());
  for (size_t i = 8; i < 12; ++i) {
    ASSERT_TRUE(primary.value()->Insert(records[i]).ok());
  }
  Failpoints::Activate("journal.append", FailpointAction::kShortWrite, 9);
  Record unacked = records[0];
  unacked.id = 9000;
  EXPECT_FALSE(primary.value()->Insert(unacked).ok());
  Failpoints::DeactivateAll();

  // "Restart": snapshot restore + journal tail replay.
  Result<std::unique_ptr<LinkageService>> restored =
      LinkageService::RestoreFromFile(snapshot_path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value()->size(), 8u);
  Result<JournalReplayStats> stats =
      restored.value()->ReplayJournalFile(journal_path);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().frames, 4u);
  EXPECT_EQ(stats.value().applied, 4u);
  EXPECT_TRUE(stats.value().tail_truncated);
  EXPECT_EQ(restored.value()->size(), 12u);
  EXPECT_FALSE(restored.value()->Contains(9000));
  for (const Record& r : records) {
    EXPECT_TRUE(restored.value()->Contains(r.id));
  }
}

}  // namespace
}  // namespace cbvlink
