// Equivalence gate for the runtime-dispatched Hamming kernels: every
// implementation (scalar, AVX2, AVX-512) must return results
// byte-identical to a naive bit-by-bit oracle — and therefore to each
// other — on any input, including word-boundary edge cases, multi-word
// ranges, and the paper's 120-bit two-word cBV shape (Table 3).  SIMD
// sets the host CPU cannot execute are skipped with a notice instead of
// faulting.

#include "src/common/hamming_kernels.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/blocking/matcher.h"
#include "src/common/bitvector.h"
#include "src/common/random.h"
#include "src/common/thread_pool.h"

namespace cbvlink {
namespace {

/// Restores automatic kernel resolution when a test that forced a set
/// exits (including via an assertion failure).
class ScopedForcedKernels {
 public:
  explicit ScopedForcedKernels(const KernelSet* kernels) {
    ForceKernelsForTest(kernels);
  }
  ~ScopedForcedKernels() { ForceKernelsForTest(nullptr); }
};

/// The kernel sets this build *and* this CPU can execute.  Scalar is
/// always present; unavailable SIMD sets are reported once.
std::vector<const KernelSet*> RunnableKernelSets() {
  std::vector<const KernelSet*> sets;
  sets.push_back(&ScalarKernels());
  if (Avx2Kernels() != nullptr && CpuSupportsAvx2()) {
    sets.push_back(Avx2Kernels());
  } else {
    std::fprintf(stderr,
                 "NOTICE: avx2 kernels not runnable on this host "
                 "(build=%d cpu=%d); skipping\n",
                 Avx2Kernels() != nullptr ? 1 : 0, CpuSupportsAvx2() ? 1 : 0);
  }
  if (Avx512Kernels() != nullptr && CpuSupportsAvx512Popcnt()) {
    sets.push_back(Avx512Kernels());
  } else {
    std::fprintf(stderr,
                 "NOTICE: avx512 kernels not runnable on this host "
                 "(build=%d cpu=%d); skipping\n",
                 Avx512Kernels() != nullptr ? 1 : 0,
                 CpuSupportsAvx512Popcnt() ? 1 : 0);
  }
  return sets;
}

/// Naive oracle: bit-by-bit comparison over [offset, offset + length).
size_t OracleRangeDistance(const std::vector<uint64_t>& a,
                           const std::vector<uint64_t>& b, size_t offset,
                           size_t length) {
  size_t dist = 0;
  for (size_t i = offset; i < offset + length; ++i) {
    const uint64_t abit = (a[i >> 6] >> (i & 63)) & 1;
    const uint64_t bbit = (b[i >> 6] >> (i & 63)) & 1;
    dist += static_cast<size_t>(abit != bbit);
  }
  return dist;
}

/// Random zero-padded word vector of `num_bits` logical bits.
std::vector<uint64_t> RandomWords(size_t num_bits, Rng& rng) {
  std::vector<uint64_t> words((num_bits + 63) / 64, 0);
  for (uint64_t& w : words) w = rng();
  const size_t tail = num_bits & 63;
  if (tail != 0 && !words.empty()) {
    words.back() &= (uint64_t{1} << tail) - 1;
  }
  return words;
}

// The widths the equivalence sweep covers: around every word boundary,
// the paper's 120-bit cBV shape, and wide Bloom-filter shapes that
// exercise the vector main loops and their tails.
const size_t kWidths[] = {1,   63,  64,  65,  120, 127, 128,  129,
                          191, 192, 256, 500, 831, 960, 1000, 2048};

TEST(HammingKernelsTest, DistanceMatchesOracleAcrossWidths) {
  Rng rng(1);
  for (const KernelSet* kernels : RunnableKernelSets()) {
    for (const size_t bits : kWidths) {
      for (int trial = 0; trial < 8; ++trial) {
        const std::vector<uint64_t> a = RandomWords(bits, rng);
        const std::vector<uint64_t> b = RandomWords(bits, rng);
        const size_t expected = OracleRangeDistance(a, b, 0, bits);
        EXPECT_EQ(kernels->distance(a.data(), b.data(), a.size()), expected)
            << kernels->name << " width " << bits << " trial " << trial;
      }
    }
  }
}

TEST(HammingKernelsTest, DistanceEdgeCases) {
  for (const KernelSet* kernels : RunnableKernelSets()) {
    EXPECT_EQ(kernels->distance(nullptr, nullptr, 0), 0u) << kernels->name;
    const uint64_t a = ~uint64_t{0};
    const uint64_t b = 0;
    EXPECT_EQ(kernels->distance(&a, &b, 1), 64u) << kernels->name;
    EXPECT_EQ(kernels->distance(&a, &a, 1), 0u) << kernels->name;
  }
}

TEST(HammingKernelsTest, RangeDistanceMatchesOracle) {
  Rng rng(2);
  for (const KernelSet* kernels : RunnableKernelSets()) {
    for (const size_t bits : kWidths) {
      const std::vector<uint64_t> a = RandomWords(bits, rng);
      const std::vector<uint64_t> b = RandomWords(bits, rng);
      for (int trial = 0; trial < 32; ++trial) {
        const size_t offset = rng.Below(bits);
        const size_t length = rng.Below(bits - offset + 1);
        EXPECT_EQ(kernels->range_distance(a.data(), b.data(), offset, length),
                  OracleRangeDistance(a, b, offset, length))
            << kernels->name << " width " << bits << " range [" << offset
            << ", " << offset + length << ")";
      }
    }
  }
}

TEST(HammingKernelsTest, RangeDistanceWordBoundaryEdges) {
  Rng rng(3);
  constexpr size_t kBits = 1024;
  const std::vector<uint64_t> a = RandomWords(kBits, rng);
  const std::vector<uint64_t> b = RandomWords(kBits, rng);
  // Deliberate edges: empty range, single bit at both word edges,
  // word-aligned ranges, ranges spanning >= 3 words, and ranges whose
  // last bit lands exactly on bit 63 of a word (the trail == 63 branch).
  const struct {
    size_t offset, length;
  } kCases[] = {{0, 0},    {63, 0},   {0, 1},    {63, 1},   {64, 1},
                {0, 64},   {64, 64},  {64, 128}, {1, 63},   {1, 64},
                {63, 2},   {63, 66},  {0, 192},  {1, 190},  {65, 300},
                {127, 513}, {0, kBits}, {1, kBits - 1}, {960, 64}};
  for (const KernelSet* kernels : RunnableKernelSets()) {
    for (const auto& c : kCases) {
      EXPECT_EQ(
          kernels->range_distance(a.data(), b.data(), c.offset, c.length),
          OracleRangeDistance(a, b, c.offset, c.length))
          << kernels->name << " range [" << c.offset << ", "
          << c.offset + c.length << ")";
    }
  }
}

/// Builds a strided arena of `n` random rows, zero-padded to `num_bits`.
std::vector<uint64_t> RandomArena(size_t n, size_t num_bits, Rng& rng) {
  const size_t stride = (num_bits + 63) / 64;
  std::vector<uint64_t> arena;
  arena.reserve(n * stride);
  for (size_t i = 0; i < n; ++i) {
    const std::vector<uint64_t> row = RandomWords(num_bits, rng);
    arena.insert(arena.end(), row.begin(), row.end());
  }
  return arena;
}

TEST(HammingKernelsTest, BatchLeqMatchesOracleGatheredAndContiguous) {
  Rng rng(4);
  for (const size_t bits : {64u, 120u, 120u, 500u, 831u}) {
    const size_t stride = (bits + 63) / 64;
    constexpr size_t kRows = 153;  // not a multiple of the unroll widths
    const std::vector<uint64_t> arena = RandomArena(kRows, bits, rng);
    const std::vector<uint64_t> probe = RandomWords(bits, rng);
    // A gathered (shuffled, duplicated) dense list plus the contiguous
    // nullptr form.
    std::vector<uint32_t> dense;
    for (size_t i = 0; i < kRows; ++i) {
      dense.push_back(static_cast<uint32_t>(rng.Below(kRows)));
    }
    for (const size_t theta : {0ul, 3ul, bits / 4, bits / 2, bits}) {
      std::vector<uint8_t> expected(kRows);
      for (size_t i = 0; i < kRows; ++i) {
        const size_t dist = OracleRangeDistance(
            std::vector<uint64_t>(arena.begin() + dense[i] * stride,
                                  arena.begin() + (dense[i] + 1) * stride),
            probe, 0, bits);
        expected[i] = dist <= theta ? 1 : 0;
      }
      for (const KernelSet* kernels : RunnableKernelSets()) {
        std::vector<uint8_t> out(kRows, 0xee);
        KernelBatchLeq(*kernels, probe.data(), arena.data(), stride,
                       dense.data(), kRows, stride, theta, out.data());
        EXPECT_EQ(out, expected) << kernels->name << " gathered, width "
                                 << bits << " theta " << theta;
        // Contiguous form: dense == nullptr means row i at i * stride.
        std::vector<uint8_t> expected_seq(kRows);
        for (size_t i = 0; i < kRows; ++i) {
          const size_t dist = OracleRangeDistance(
              std::vector<uint64_t>(arena.begin() + i * stride,
                                    arena.begin() + (i + 1) * stride),
              probe, 0, bits);
          expected_seq[i] = dist <= theta ? 1 : 0;
        }
        std::vector<uint8_t> out_seq(kRows, 0xee);
        KernelBatchLeq(*kernels, probe.data(), arena.data(), stride, nullptr,
                       kRows, stride, theta, out_seq.data());
        EXPECT_EQ(out_seq, expected_seq)
            << kernels->name << " contiguous, width " << bits << " theta "
            << theta;
      }
    }
  }
}

TEST(HammingKernelsTest, BatchLeq2SmallCounts) {
  // The 4-per-register cBV kernel must handle every tail shape: n in
  // [0, 9] covers full blocks plus 1-3 leftover rows.
  Rng rng(5);
  constexpr size_t kBits = 120;
  const std::vector<uint64_t> arena = RandomArena(9, kBits, rng);
  const std::vector<uint64_t> probe = RandomWords(kBits, rng);
  for (const KernelSet* kernels : RunnableKernelSets()) {
    for (size_t n = 0; n <= 9; ++n) {
      std::vector<uint8_t> out(n > 0 ? n : 1, 0xee);
      kernels->batch_leq2(probe.data(), arena.data(), 2, nullptr, n, 30,
                          out.data());
      for (size_t i = 0; i < n; ++i) {
        const size_t dist = OracleRangeDistance(
            std::vector<uint64_t>(arena.begin() + i * 2,
                                  arena.begin() + (i + 1) * 2),
            probe, 0, kBits);
        EXPECT_EQ(out[i], dist <= 30 ? 1 : 0)
            << kernels->name << " n=" << n << " row " << i;
      }
    }
  }
}

TEST(HammingKernelsTest, ResolveKernelsSelection) {
  const bool have_avx2 = Avx2Kernels() != nullptr;
  const bool have_avx512 = Avx512Kernels() != nullptr;
  const char* notice = nullptr;

  // Auto: best available set wins, no notice.
  const KernelSet& autoset =
      ResolveKernels(nullptr, have_avx2, have_avx512, &notice);
  EXPECT_EQ(notice, nullptr);
  if (have_avx512) {
    EXPECT_STREQ(autoset.name, "avx512");
  } else if (have_avx2) {
    EXPECT_STREQ(autoset.name, "avx2");
  } else {
    EXPECT_STREQ(autoset.name, "scalar");
  }
  EXPECT_STREQ(ResolveKernels("", have_avx2, have_avx512, &notice).name,
               autoset.name);

  // Explicit scalar always honoured.
  EXPECT_STREQ(ResolveKernels("scalar", true, true, &notice).name, "scalar");
  EXPECT_EQ(notice, nullptr);

  // An unsupported explicit request falls back *down*, never up, with a
  // notice — the dispatcher must not execute an ISA the CPU lacks.
  notice = nullptr;
  const KernelSet& no2 = ResolveKernels("avx2", false, false, &notice);
  EXPECT_STREQ(no2.name, "scalar");
  EXPECT_NE(notice, nullptr);
  notice = nullptr;
  const KernelSet& no512 = ResolveKernels("avx512", have_avx2, false, &notice);
  EXPECT_STREQ(no512.name, have_avx2 ? "avx2" : "scalar");
  EXPECT_NE(notice, nullptr);

  // Supported explicit requests are honoured exactly.
  if (have_avx2) {
    notice = nullptr;
    EXPECT_STREQ(ResolveKernels("avx2", true, true, &notice).name, "avx2");
    EXPECT_EQ(notice, nullptr);
  }
  if (have_avx512) {
    notice = nullptr;
    EXPECT_STREQ(ResolveKernels("avx512", true, true, &notice).name,
                 "avx512");
    EXPECT_EQ(notice, nullptr);
  }

  // Unknown value: best available, with a notice.
  notice = nullptr;
  EXPECT_STREQ(ResolveKernels("sse9", have_avx2, have_avx512, &notice).name,
               autoset.name);
  EXPECT_NE(notice, nullptr);
}

TEST(HammingKernelsTest, ForceKernelsOverridesActive) {
  {
    ScopedForcedKernels force(&ScalarKernels());
    EXPECT_STREQ(ActiveKernels().name, "scalar");
  }
  // After the override is lifted, resolution follows the environment and
  // CPU again (whatever that is, it must be a runnable set).
  const KernelSet& active = ActiveKernels();
  if (std::string(active.name) == "avx2") {
    EXPECT_TRUE(CpuSupportsAvx2());
  } else if (std::string(active.name) == "avx512") {
    EXPECT_TRUE(CpuSupportsAvx512Popcnt());
  }
}

// ---------------------------------------------------------------------
// End-to-end byte-equivalence: the full matcher must produce identical
// pairs and stats under every runnable kernel set, at 1, 2, and 8
// threads — the acceptance gate for the dispatch layer.

class SpanSource : public CandidateSource {
 public:
  SpanSource(size_t num_a, size_t num_buckets) {
    buckets_.resize(num_buckets);
    for (size_t b = 0; b < num_buckets; ++b) {
      const size_t len = 1 + (b * 7) % 13;
      for (size_t k = 0; k < len; ++k) {
        buckets_[b].push_back(
            static_cast<RecordId>((b * 31 + k * 17) % (num_a + 3)));
      }
    }
  }

  void ForEachCandidate(
      const BitVector& probe,
      const std::function<void(RecordId)>& cb) const override {
    ForEachCandidateSpan(probe, [&](std::span<const RecordId> bucket) {
      for (RecordId id : bucket) cb(id);
    });
  }

  void ForEachCandidateSpan(
      const BitVector& probe,
      FunctionRef<void(std::span<const RecordId>)> cb) const override {
    const uint64_t h = probe.words().empty() ? 0 : probe.words()[0];
    const size_t groups = 1 + h % 5;
    for (size_t g = 0; g < groups; ++g) {
      cb(buckets_[(h + g * 13) % buckets_.size()]);
    }
  }

 private:
  std::vector<std::vector<RecordId>> buckets_;
};

std::vector<EncodedRecord> RandomRecords(size_t n, size_t bits,
                                         RecordId first_id, Rng& rng) {
  std::vector<EncodedRecord> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    EncodedRecord r;
    r.id = first_id + i;
    r.bits = BitVector(bits);
    for (size_t b = 0; b < bits; ++b) {
      if (rng.Below(3) == 0) r.bits.Set(b);
    }
    out.push_back(std::move(r));
  }
  return out;
}

void ExpectMatcherEquivalence(size_t bits, size_t theta) {
  Rng rng(97);
  const size_t kNumA = 64;
  std::vector<EncodedRecord> a = RandomRecords(kNumA, bits, 0, rng);
  std::vector<EncodedRecord> b = RandomRecords(211, bits, 1000, rng);
  SpanSource source(kNumA, 19);
  VectorStore store;
  store.AddAll(a);
  Matcher matcher(&source, &store);
  const PairClassifier classifier = MakeRecordThresholdClassifier(theta);

  MatchStats ref_stats;
  std::vector<IdPair> reference;
  {
    ScopedForcedKernels force(&ScalarKernels());
    reference = matcher.MatchAll(b, classifier, &ref_stats);
  }
  ASSERT_GT(ref_stats.matches, 0u) << "test needs a non-trivial workload";
  ASSERT_LT(ref_stats.matches, ref_stats.comparisons)
      << "test needs non-matches too";

  for (const KernelSet* kernels : RunnableKernelSets()) {
    ScopedForcedKernels force(kernels);
    for (const size_t threads : {1u, 2u, 8u}) {
      ThreadPool pool(threads);
      MatchStats stats;
      const std::vector<IdPair> pairs =
          matcher.MatchAll(b, classifier, &stats, &pool);
      EXPECT_EQ(pairs, reference)
          << kernels->name << " diverges at " << threads << " threads, "
          << bits << " bits";
      EXPECT_EQ(stats.comparisons, ref_stats.comparisons) << kernels->name;
      EXPECT_EQ(stats.matches, ref_stats.matches) << kernels->name;
      EXPECT_EQ(stats.dedup_skipped, ref_stats.dedup_skipped)
          << kernels->name;
    }
  }
}

TEST(HammingKernelsMatcherTest, ByteIdentical120BitCbv) {
  // The paper's Table 3 shape: 2-word records through batch_leq2.
  ExpectMatcherEquivalence(120, 40);
}

TEST(HammingKernelsMatcherTest, ByteIdenticalWideRecords) {
  // Bloom-filter-width records through the general batch kernel.  With
  // density-1/3 random records the pairwise distance concentrates near
  // 2 * (1/3) * (2/3) * 500 ~ 222, so theta 225 splits the workload into
  // real matches and real non-matches.
  ExpectMatcherEquivalence(500, 225);
}

TEST(HammingKernelsMatcherTest, ByteIdenticalOddWidth) {
  // A width straddling word boundaries (3 words, 65 used bits in word 2).
  ExpectMatcherEquivalence(129, 44);
}

}  // namespace
}  // namespace cbvlink
