#include "src/rules/rule.h"

#include <gtest/gtest.h>

#include <map>

namespace cbvlink {
namespace {

/// Helper: evaluate a rule against fixed per-attribute distances.
bool Eval(const Rule& rule, std::map<size_t, size_t> distances) {
  return rule.Evaluate([&](size_t attr) { return distances.at(attr); });
}

TEST(RuleTest, PredicateEvaluation) {
  const Rule r = Rule::Pred(0, 4);
  EXPECT_TRUE(Eval(r, {{0, 0}}));
  EXPECT_TRUE(Eval(r, {{0, 4}}));
  EXPECT_FALSE(Eval(r, {{0, 5}}));
}

TEST(RuleTest, AndEvaluation) {
  const Rule r = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 8)});
  EXPECT_TRUE(Eval(r, {{0, 4}, {1, 8}}));
  EXPECT_FALSE(Eval(r, {{0, 5}, {1, 8}}));
  EXPECT_FALSE(Eval(r, {{0, 4}, {1, 9}}));
}

TEST(RuleTest, OrEvaluation) {
  const Rule r = Rule::Or({Rule::Pred(0, 4), Rule::Pred(1, 8)});
  EXPECT_TRUE(Eval(r, {{0, 4}, {1, 99}}));
  EXPECT_TRUE(Eval(r, {{0, 99}, {1, 8}}));
  EXPECT_FALSE(Eval(r, {{0, 99}, {1, 99}}));
}

TEST(RuleTest, NotEvaluation) {
  const Rule r = Rule::Not(Rule::Pred(0, 4));
  EXPECT_FALSE(Eval(r, {{0, 3}}));
  EXPECT_TRUE(Eval(r, {{0, 5}}));
}

TEST(RuleTest, PaperC1Evaluation) {
  // C1 = (f1 <= t1) AND (f2 <= t2) AND (f3 <= t3).
  const Rule c1 =
      Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  EXPECT_TRUE(Eval(c1, {{0, 1}, {1, 2}, {2, 8}}));
  EXPECT_FALSE(Eval(c1, {{0, 1}, {1, 2}, {2, 9}}));
}

TEST(RuleTest, PaperC2Evaluation) {
  // C2 = [(f1 <= t) AND (f2 <= t)] OR (f3 <= t).
  const Rule c2 = Rule::Or(
      {Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)}), Rule::Pred(2, 8)});
  EXPECT_TRUE(Eval(c2, {{0, 0}, {1, 0}, {2, 99}}));
  EXPECT_TRUE(Eval(c2, {{0, 99}, {1, 99}, {2, 8}}));
  EXPECT_FALSE(Eval(c2, {{0, 99}, {1, 0}, {2, 99}}));
}

TEST(RuleTest, PaperC3Evaluation) {
  // C3 = (f1 <= t) AND NOT (f2 <= t).
  const Rule c3 = Rule::And({Rule::Pred(0, 4), Rule::Not(Rule::Pred(1, 4))});
  EXPECT_TRUE(Eval(c3, {{0, 2}, {1, 10}}));
  EXPECT_FALSE(Eval(c3, {{0, 2}, {1, 2}}));
  EXPECT_FALSE(Eval(c3, {{0, 10}, {1, 10}}));
}

TEST(RuleTest, ValidateAcceptsWellFormedRules) {
  const Rule r = Rule::And(
      {Rule::Pred(0, 4), Rule::Or({Rule::Pred(1, 2), Rule::Pred(2, 3)})});
  EXPECT_TRUE(r.Validate(3).ok());
}

TEST(RuleTest, ValidateRejectsOutOfRangeAttribute) {
  EXPECT_FALSE(Rule::Pred(3, 1).Validate(3).ok());
  EXPECT_TRUE(Rule::Pred(2, 1).Validate(3).ok());
  const Rule nested = Rule::And({Rule::Pred(0, 1), Rule::Pred(5, 1)});
  EXPECT_FALSE(nested.Validate(3).ok());
}

TEST(RuleTest, ValidateRejectsBadArity) {
  EXPECT_FALSE(Rule::And({Rule::Pred(0, 1)}).Validate(3).ok());
  EXPECT_FALSE(Rule::Or({Rule::Pred(0, 1)}).Validate(3).ok());
  EXPECT_FALSE(Rule::And({}).Validate(3).ok());
}

TEST(RuleTest, CollectPredicatesDepthFirst) {
  const Rule r = Rule::Or(
      {Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 8)}), Rule::Pred(2, 2)});
  std::vector<Predicate> preds;
  r.CollectPredicates(&preds);
  ASSERT_EQ(preds.size(), 3u);
  EXPECT_EQ(preds[0], (Predicate{0, 4}));
  EXPECT_EQ(preds[1], (Predicate{1, 8}));
  EXPECT_EQ(preds[2], (Predicate{2, 2}));
}

TEST(RuleTest, ToStringUsesOneBasedAttributes) {
  EXPECT_EQ(Rule::Pred(0, 4).ToString(), "(f1 <= 4)");
  EXPECT_EQ(Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 8)}).ToString(),
            "((f1 <= 4) AND (f2 <= 8))");
  EXPECT_EQ(Rule::Not(Rule::Pred(1, 8)).ToString(), "(NOT (f2 <= 8))");
  EXPECT_EQ(
      Rule::Or({Rule::Pred(0, 1), Rule::Pred(1, 2), Rule::Pred(2, 3)})
          .ToString(),
      "((f1 <= 1) OR (f2 <= 2) OR (f3 <= 3))");
}

}  // namespace
}  // namespace cbvlink
