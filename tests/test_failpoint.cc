#include "src/common/failpoint.h"

#include <gtest/gtest.h>

#include "src/common/stopwatch.h"

namespace cbvlink {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::DeactivateAll(); }
};

TEST_F(FailpointTest, InactiveSiteIsOff) {
  EXPECT_EQ(Failpoints::Eval("nothing.here").action, FailpointAction::kOff);
  EXPECT_TRUE(FailpointInject("nothing.here").ok());
}

TEST_F(FailpointTest, ErrorActionInjectsIOError) {
  Failpoints::Activate("t.error", FailpointAction::kError);
  EXPECT_TRUE(Failpoints::AnyActive());
  const Status st = FailpointInject("t.error");
  EXPECT_EQ(st.code(), StatusCode::kIOError);
  // Every hit triggers until deactivation.
  EXPECT_FALSE(FailpointInject("t.error").ok());
  Failpoints::Deactivate("t.error");
  EXPECT_TRUE(FailpointInject("t.error").ok());
}

TEST_F(FailpointTest, TriggerAtTargetsOneHit) {
  Failpoints::Activate("t.third", FailpointAction::kError, 0,
                       /*trigger_at=*/3);
  EXPECT_TRUE(FailpointInject("t.third").ok());
  EXPECT_TRUE(FailpointInject("t.third").ok());
  EXPECT_FALSE(FailpointInject("t.third").ok());
  EXPECT_TRUE(FailpointInject("t.third").ok());
  EXPECT_EQ(Failpoints::HitCount("t.third"), 4u);
}

TEST_F(FailpointTest, ShortWriteCarriesByteParam) {
  Failpoints::Activate("t.short", FailpointAction::kShortWrite, 17);
  const FailpointHit hit = Failpoints::Eval("t.short");
  EXPECT_EQ(hit.action, FailpointAction::kShortWrite);
  EXPECT_EQ(hit.param, 17u);
  // Injected as an error by the Status helper.
  EXPECT_FALSE(FailpointInject("t.short").ok());
}

TEST_F(FailpointTest, DelayActionSleeps) {
  Failpoints::Activate("t.delay", FailpointAction::kDelay, 20);
  Stopwatch sw;
  FailpointDelay("t.delay");
  EXPECT_GE(sw.ElapsedSeconds(), 0.015);
  // Delay is not an error.
  EXPECT_TRUE(FailpointInject("t.delay").ok());
}

TEST_F(FailpointTest, SpecGrammar) {
  ASSERT_TRUE(Failpoints::ActivateFromSpec(
                  "a=error; b=short_write(9)@2 ;c=delay(0)")
                  .ok());
  EXPECT_EQ(Failpoints::Eval("a").action, FailpointAction::kError);
  // b triggers on its second hit only.
  EXPECT_EQ(Failpoints::Eval("b").action, FailpointAction::kOff);
  const FailpointHit b2 = Failpoints::Eval("b");
  EXPECT_EQ(b2.action, FailpointAction::kShortWrite);
  EXPECT_EQ(b2.param, 9u);
  EXPECT_EQ(Failpoints::Eval("c").action, FailpointAction::kDelay);
}

TEST_F(FailpointTest, SpecErrorsRejected) {
  EXPECT_FALSE(Failpoints::ActivateFromSpec("noequals").ok());
  EXPECT_FALSE(Failpoints::ActivateFromSpec("a=explode").ok());
  EXPECT_FALSE(Failpoints::ActivateFromSpec("a=delay(xy)").ok());
  EXPECT_FALSE(Failpoints::ActivateFromSpec("a=error@0").ok());
  EXPECT_FALSE(Failpoints::ActivateFromSpec("a=short_write(3").ok());
}

TEST_F(FailpointTest, MacroIsNoopWhenNothingActive) {
  // No active sites: the macro's fast path must not evaluate anything.
  ASSERT_FALSE(Failpoints::AnyActive());
  const auto guarded = []() -> Status {
    CBVLINK_FAILPOINT("t.macro");
    return Status::OK();
  };
  EXPECT_TRUE(guarded().ok());
  Failpoints::Activate("t.macro", FailpointAction::kError);
  EXPECT_FALSE(guarded().ok());
}

}  // namespace
}  // namespace cbvlink
