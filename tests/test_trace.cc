// Tests for request tracing: the span arena and thread-context core
// (src/telemetry/trace.h), the capture ring with head sampling and
// slow-query tail capture (src/telemetry/trace_sink.h), and end-to-end
// propagation through the serving tier — kTraceContext / X-Trace-Id in,
// kServerTiming / Server-Timing out, /tracez, and trace-id preservation
// across RetryingClient retries.

#include "src/telemetry/trace.h"

#include <gtest/gtest.h>
#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/str.h"
#include "src/datagen/generators.h"
#include "src/net/client.h"
#include "src/net/faultproxy.h"
#include "src/net/protocol.h"
#include "src/net/server.h"
#include "src/service/linkage_service.h"
#include "src/telemetry/trace_sink.h"

namespace cbvlink {
namespace telemetry {
namespace {

using net::NetClient;
using net::NetServer;
using net::NetServerOptions;

// --- core: ids, sampling, arena, context ----------------------------------

TEST(TraceTest, MixTraceIdIsDeterministicNonZeroAndDispersed) {
  EXPECT_EQ(MixTraceId(42), MixTraceId(42));
  EXPECT_NE(MixTraceId(42), MixTraceId(43));
  std::set<uint64_t> ids;
  for (uint64_t seed = 0; seed < 1000; ++seed) {
    const uint64_t id = MixTraceId(seed);
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);  // no collisions over a small range
}

TEST(TraceTest, GeneratedIdsAreUniqueAndNonZero) {
  std::set<uint64_t> ids;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t id = GenerateTraceId();
    EXPECT_NE(id, 0u);
    ids.insert(id);
  }
  EXPECT_EQ(ids.size(), 1000u);
}

TEST(TraceTest, HeadSamplingIsAPureFunctionOfIdAndRate) {
  // Every caller agrees: the client, the server and this test can all
  // predict which ids survive a given sampling rate.
  for (uint64_t id = 1; id < 100; ++id) {
    EXPECT_TRUE(TraceSink::HeadSampled(id, 1));
    EXPECT_FALSE(TraceSink::HeadSampled(id, 0));  // 0 = slow-only
    EXPECT_EQ(TraceSink::HeadSampled(id, 4), id % 4 == 0);
    EXPECT_EQ(TraceSink::HeadSampled(id, 4), TraceSink::HeadSampled(id, 4));
  }
}

TEST(TraceTest, CollectorArenaDropsOverflowAndCountsIt) {
  TraceCollector collector(7);
  const size_t n = kMaxSpansPerTrace + 5;
  for (size_t i = 0; i < n; ++i) {
    Span span;
    span.name = "s";
    span.span_id = collector.NextSpanId();
    span.start_us = n - i;  // reverse start order: Spans() must sort
    collector.Record(span);
  }
  EXPECT_EQ(collector.dropped(), 5u);
  const std::vector<Span> spans = collector.Spans();
  ASSERT_EQ(spans.size(), kMaxSpansPerTrace);
  for (size_t i = 1; i < spans.size(); ++i) {
    EXPECT_LE(spans[i - 1].start_us, spans[i].start_us);
  }
  for (const Span& span : spans) {
    EXPECT_EQ(span.trace_id, 7u);  // stamped by Record
  }
}

TEST(TraceTest, SpansAreNoOpsWithoutACollector) {
  // No ScopedTraceContext installed: the hot path must stay inert.
  TraceSpan span("orphan");
  EXPECT_FALSE(span.active());
  span.Annotate("k", 1);
  span.End();  // must not crash or record anywhere
}

TEST(TraceTest, ScopedContextNestsAndRestores) {
  TraceCollector collector(9);
  EXPECT_EQ(CurrentTraceContext().collector, nullptr);
  {
    ScopedTraceContext scope(&collector, collector.root_span_id());
    EXPECT_EQ(CurrentTraceContext().collector, &collector);

    TraceSpan outer("outer");
    ASSERT_TRUE(outer.active());
    // While `outer` lives it is the parent of new spans on this thread.
    EXPECT_EQ(CurrentTraceContext().parent_span_id, outer.span_id());
    {
      TraceSpan inner("inner");
      ASSERT_TRUE(inner.active());
      EXPECT_NE(inner.span_id(), outer.span_id());
    }
    outer.End();
    EXPECT_EQ(CurrentTraceContext().parent_span_id, collector.root_span_id());
  }
  EXPECT_EQ(CurrentTraceContext().collector, nullptr);

  // Parent links recorded correctly: inner's parent is outer.
  const std::vector<Span> spans = collector.Spans();
  ASSERT_EQ(spans.size(), 2u);
  const Span& outer_span =
      std::string(spans[0].name) == "outer" ? spans[0] : spans[1];
  const Span& inner_span =
      std::string(spans[0].name) == "inner" ? spans[0] : spans[1];
  EXPECT_EQ(outer_span.parent_span_id, collector.root_span_id());
  EXPECT_EQ(inner_span.parent_span_id, outer_span.span_id);
}

TEST(TraceTest, AnnotationsCapAtLimit) {
  TraceCollector collector(3);
  ScopedTraceContext scope(&collector, 1);
  TraceSpan span("annotated");
  for (size_t i = 0; i < kMaxSpanAnnotations + 3; ++i) {
    span.Annotate("k", i);
  }
  span.End();
  const std::vector<Span> spans = collector.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].n_annotations, kMaxSpanAnnotations);
}

// The wait-free recording contract, exercised under TSan: many threads
// record into ONE collector through their own scoped contexts; every
// span is either stored or counted dropped, with no loss or tearing.
TEST(TraceTest, ConcurrentRecordingIsLossless) {
  TraceCollector collector(11);
  constexpr size_t kThreads = 8;
  constexpr size_t kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector]() {
      ScopedTraceContext scope(&collector, collector.root_span_id());
      for (size_t i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("worker");
        span.Annotate("i", i);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const size_t total = kThreads * kSpansPerThread;
  const std::vector<Span> spans = collector.Spans();
  EXPECT_EQ(spans.size() + collector.dropped(), total);
  EXPECT_EQ(spans.size(), std::min<size_t>(total, kMaxSpansPerTrace));
  // Span ids were claimed uniquely despite the races.
  std::set<uint64_t> ids;
  for (const Span& span : spans) ids.insert(span.span_id);
  EXPECT_EQ(ids.size(), spans.size());
}

// --- sink: ring, sampling, tail capture, rendering ------------------------

CapturedTrace MakeTrace(uint64_t id, uint64_t dur_us) {
  CapturedTrace trace;
  trace.trace_id = id;
  trace.root_dur_us = dur_us;
  Span root;
  root.name = "request";
  root.trace_id = id;
  root.span_id = 1;
  root.dur_us = dur_us;
  trace.spans.push_back(root);
  return trace;
}

TEST(TraceSinkTest, RingOverwritesOldestFirst) {
  TraceSinkOptions options;
  options.capacity = 4;
  options.sample_every = 1;
  options.slow_threshold_us = 0;
  TraceSink sink(options);
  for (uint64_t i = 0; i < 10; ++i) {
    sink.Offer(MakeTrace(/*id=*/100 + i, /*dur_us=*/i));
  }
  const std::vector<CapturedTrace> kept = sink.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  // Oldest-first, and exactly the last `capacity` offers survive.
  for (size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].trace_id, 100u + 6 + i);
    EXPECT_EQ(kept[i].seq, 6 + i);
    if (i > 0) {
      EXPECT_EQ(kept[i].seq, kept[i - 1].seq + 1);
    }
  }
  EXPECT_EQ(sink.captured(), 10u);  // all ten entered the ring
}

TEST(TraceSinkTest, FinishAppliesHeadSampling) {
  TraceSinkOptions options;
  options.sample_every = 2;
  options.slow_threshold_us = 0;  // no tail capture: sampling only
  TraceSink sink(options);
  TraceCollector even(4);
  TraceCollector odd(5);
  EXPECT_TRUE(sink.Finish(even, /*root_dur_us=*/10));
  EXPECT_FALSE(sink.Finish(odd, /*root_dur_us=*/10));
  EXPECT_EQ(sink.offered(), 2u);
  EXPECT_EQ(sink.captured(), 1u);
  ASSERT_EQ(sink.Snapshot().size(), 1u);
  EXPECT_EQ(sink.Snapshot()[0].trace_id, 4u);
}

TEST(TraceSinkTest, SlowTracesSurviveRegardlessOfSampling) {
  TraceSinkOptions options;
  options.sample_every = 0;  // head sampling off entirely
  options.slow_threshold_us = 1000;
  TraceSink sink(options);
  TraceCollector fast(21);
  TraceCollector slow(22);
  EXPECT_FALSE(sink.Finish(fast, /*root_dur_us=*/999));
  EXPECT_TRUE(sink.Finish(slow, /*root_dur_us=*/1000));
  EXPECT_EQ(sink.captured(), 1u);
  EXPECT_EQ(sink.captured_slow(), 1u);
  const std::vector<CapturedTrace> slow_traces = sink.SlowTraces();
  ASSERT_EQ(slow_traces.size(), 1u);
  EXPECT_EQ(slow_traces[0].trace_id, 22u);
  EXPECT_TRUE(slow_traces[0].slow);
}

TEST(TraceSinkTest, JsonSurfacesRenderCapturedSpans) {
  TraceSinkOptions options;
  options.slow_threshold_us = 1;  // everything qualifies as "slow"
  TraceSink sink(options);
  TraceCollector collector(0xabcdef12u);
  {
    ScopedTraceContext scope(&collector, collector.root_span_id());
    TraceSpan span("candidates");
    span.Annotate("candidates", 17);
  }
  ASSERT_TRUE(sink.Finish(collector, /*root_dur_us=*/5000));

  const std::string chrome = sink.ToChromeTraceJson();
  EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(chrome.find("candidates"), std::string::npos);
  EXPECT_NE(chrome.find("\"ph\":\"X\""), std::string::npos);

  const std::string tracez = sink.ToTracezJson();
  EXPECT_NE(tracez.find(net::TraceIdHex(0xabcdef12u)), std::string::npos);
  EXPECT_NE(tracez.find("candidates"), std::string::npos);

  const std::string slow = sink.ToSlowTracesJson();
  EXPECT_NE(slow.find(net::TraceIdHex(0xabcdef12u)), std::string::npos);
}

// --- end-to-end: serving tier ---------------------------------------------

CbvHbConfig BaseConfig(const Schema& schema) {
  CbvHbConfig config;
  config.schema = schema;
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                           Rule::Pred(2, 4), Rule::Pred(3, 4)});
  config.record_K = 30;
  config.record_theta = 4;
  config.expected_qgrams = {5.1, 5.0, 20.0, 7.2};
  config.seed = 5;
  return config;
}

std::vector<Record> GenerateRecords(const NcvrGenerator& gen, size_t n,
                                    uint64_t seed) {
  Rng rng(seed);
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(gen.Generate(i, rng));
  }
  return records;
}

/// One raw HTTP/1.1 exchange: connect, send `request` (which must carry
/// "Connection: close"), read until the server closes.
std::string HttpExchange(uint16_t port, const std::string& request) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo("127.0.0.1", std::to_string(port).c_str(), &hints, &res) !=
      0) {
    return "";
  }
  const int fd = ::socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    ::freeaddrinfo(res);
    return "";
  }
  timeval tv{};
  tv.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  const int rc = ::connect(fd, res->ai_addr, res->ai_addrlen);
  ::freeaddrinfo(res);
  if (rc != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent, request.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string HttpGet(uint16_t port, const std::string& target) {
  return HttpExchange(port, "GET " + target +
                                " HTTP/1.1\r\nHost: t\r\nConnection: close"
                                "\r\n\r\n");
}

/// A service pre-loaded with `n` generated records, a trace sink, and a
/// running server wired to it.
struct TracedFixture {
  std::unique_ptr<NcvrGenerator> gen;
  std::unique_ptr<LinkageService> service;
  std::unique_ptr<TraceSink> sink;
  std::unique_ptr<NetServer> server;
  std::vector<Record> records;

  static TracedFixture Start(size_t n) {
    TraceSinkOptions sink_options;
    sink_options.sample_every = 1;  // capture everything
    sink_options.slow_threshold_us = 0;
    return Start(n, sink_options);
  }

  static TracedFixture Start(size_t n, const TraceSinkOptions& sink_options) {
    TracedFixture f;
    Result<NcvrGenerator> gen = NcvrGenerator::Create();
    EXPECT_TRUE(gen.ok());
    f.gen = std::make_unique<NcvrGenerator>(std::move(gen.value()));
    Result<std::unique_ptr<LinkageService>> service =
        LinkageService::Create(BaseConfig(f.gen->schema()));
    EXPECT_TRUE(service.ok());
    f.service = std::move(service.value());
    f.records = GenerateRecords(*f.gen, n, 21);
    for (const Record& r : f.records) {
      EXPECT_TRUE(f.service->Insert(r).ok());
    }
    f.sink = std::make_unique<TraceSink>(sink_options);
    NetServerOptions options;
    options.trace_sink = f.sink.get();
    Result<std::unique_ptr<NetServer>> server =
        NetServer::Start(f.service.get(), options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    f.server = std::move(server.value());
    return f;
  }

  /// Polls the sink until a trace with `id` is captured (or times out);
  /// returns it (empty spans on timeout).  The sink capture runs on the
  /// worker thread after the response is queued, so the client can see
  /// the reply marginally before the trace lands.
  CapturedTrace WaitForTrace(uint64_t id, int timeout_ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      for (const CapturedTrace& trace : sink->Snapshot()) {
        if (trace.trace_id == id) return trace;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return CapturedTrace{};
  }
};

std::set<std::string> SpanNames(const CapturedTrace& trace) {
  std::set<std::string> names;
  for (const Span& span : trace.spans) names.emplace(span.name);
  return names;
}

TEST(TraceServingTest, BinaryTraceContextPropagatesThroughTheFunnel) {
  TracedFixture f = TracedFixture::Start(12);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  const uint64_t id = MixTraceId(2024);
  client.value()->set_trace(id);
  Record query = f.records[0];
  query.id = 5000;
  std::vector<IdPair> pairs;
  ASSERT_TRUE(client.value()->Match(query, &pairs).ok());

  // The reply carried the per-stage breakdown for OUR trace id.
  const std::vector<net::StageTiming>& stages =
      client.value()->last_server_timing();
  ASSERT_FALSE(stages.empty());
  EXPECT_EQ(client.value()->last_server_timing_trace_id(), id);
  bool saw_total = false;
  for (const net::StageTiming& timing : stages) {
    if (timing.stage == net::TimingStage::kTotal) saw_total = true;
  }
  EXPECT_TRUE(saw_total);

  // The server captured the span tree under the propagated id, with the
  // funnel stages present.
  const CapturedTrace trace = f.WaitForTrace(id);
  ASSERT_FALSE(trace.spans.empty()) << "trace never captured";
  const std::set<std::string> names = SpanNames(trace);
  for (const char* expected :
       {"request", "queue", "encode", "candidates", "compare"}) {
    EXPECT_TRUE(names.count(expected)) << "missing span " << expected;
  }
  // Non-root spans hang off the request root (directly or transitively):
  // every parent id refers to another captured span.
  std::set<uint64_t> span_ids;
  for (const Span& span : trace.spans) span_ids.insert(span.span_id);
  for (const Span& span : trace.spans) {
    if (span.parent_span_id != 0) {
      EXPECT_TRUE(span_ids.count(span.parent_span_id))
          << span.name << " has a dangling parent";
    }
  }
}

TEST(TraceServingTest, UntracedClientsGetNoTimingFrame) {
  TracedFixture f = TracedFixture::Start(6);
  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", f.server->port());
  ASSERT_TRUE(client.ok());
  Record query = f.records[0];
  query.id = 6000;
  std::vector<IdPair> pairs;
  ASSERT_TRUE(client.value()->Match(query, &pairs).ok());
  // Wire compatibility: a client that never sent kTraceContext must not
  // receive a kServerTiming frame (pre-tracing clients would reject it).
  EXPECT_TRUE(client.value()->last_server_timing().empty());
}

TEST(TraceServingTest, HttpTracePropagatesAndTracezServes) {
  TracedFixture f = TracedFixture::Start(8);
  const uint64_t id = MixTraceId(77);
  const std::string hex = net::TraceIdHex(id);

  // POST /match carrying an X-Trace-Id header.
  const Record& r0 = f.records[0];
  std::string body = R"({"id": 7000, "fields": [)";
  for (size_t i = 0; i < r0.fields.size(); ++i) {
    if (i > 0) body += ",";
    body += "\"" + r0.fields[i] + "\"";
  }
  body += "]}";
  const std::string response = HttpExchange(
      f.server->port(),
      "POST /match HTTP/1.1\r\nHost: t\r\nX-Trace-Id: " + hex +
          "\r\nConnection: close\r\nContent-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body);

  // The response surfaces the trace: Server-Timing stages and the id.
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("Server-Timing: "), std::string::npos) << response;
  EXPECT_NE(response.find("X-Trace-Id: " + hex), std::string::npos)
      << response;
  EXPECT_NE(response.find("total;dur="), std::string::npos) << response;

  // The sink captured the span tree under the header-propagated id.
  const CapturedTrace trace = f.WaitForTrace(id);
  ASSERT_FALSE(trace.spans.empty());
  const std::set<std::string> names = SpanNames(trace);
  EXPECT_TRUE(names.count("request"));
  EXPECT_TRUE(names.count("candidates"));

  // /tracez serves the captured set, including our trace.
  const std::string tracez = HttpGet(f.server->port(), "/tracez");
  EXPECT_NE(tracez.find("200 OK"), std::string::npos);
  EXPECT_NE(tracez.find(hex), std::string::npos) << tracez;
}

TEST(TraceServingTest, MalformedTraceHeaderDegradesToUntraced) {
  // net::ParseTraceIdHex returns 0 on garbage, so a bad header means
  // "untraced", never an error.
  EXPECT_EQ(net::ParseTraceIdHex("not-hex!"), 0u);
  EXPECT_EQ(net::ParseTraceIdHex(""), 0u);
  EXPECT_EQ(net::ParseTraceIdHex("12345678901234567"), 0u);  // > 16 chars
  EXPECT_EQ(net::ParseTraceIdHex(net::TraceIdHex(0xdeadbeefULL)),
            0xdeadbeefULL);

  // And the request itself still succeeds.
  TracedFixture f = TracedFixture::Start(4);
  const std::string response = HttpExchange(
      f.server->port(),
      "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Trace-Id: zz@@\r\n"
      "Connection: close\r\n\r\n");
  EXPECT_NE(response.find("200 OK"), std::string::npos) << response;
}

// Retries of one logical operation must share one trace id: the server's
// captured traces then tell "one call retried" apart from "many calls".
TEST(TraceServingTest, RetryingClientKeepsTraceIdAcrossReconnects) {
  TracedFixture f = TracedFixture::Start(10);
  Result<std::unique_ptr<net::FaultProxy>> proxy =
      net::FaultProxy::Start("127.0.0.1", f.server->port());
  ASSERT_TRUE(proxy.ok()) << proxy.status().ToString();
  // Reset each proxied connection after a small byte budget: some
  // attempts die mid-exchange and must be retried on fresh connections.
  proxy.value()->faults().reset_after_bytes.store(900);

  net::RetryPolicy policy;
  policy.max_attempts = 8;
  policy.per_attempt_timeout_ms = 5000;
  policy.backoff.base_ms = 1;
  policy.backoff.max_ms = 10;
  net::RetryingClient client("127.0.0.1", proxy.value()->port(), policy);

  std::set<uint64_t> our_ids;
  constexpr size_t kOps = 30;
  for (size_t i = 0; i < kOps; ++i) {
    const uint64_t id = MixTraceId(9000 + i);
    our_ids.insert(id);
    client.set_trace(id);
    Record query = f.records[i % f.records.size()];
    query.id = 8000 + i;
    std::vector<IdPair> pairs;
    ASSERT_TRUE(client.Match(query, &pairs).ok()) << "op " << i;
  }
  proxy.value()->faults().reset_after_bytes.store(0);
  // The faults actually fired (otherwise this test proves nothing)...
  EXPECT_GT(client.counters().reconnects, 0u);
  // ...yet every server-side trace carries one of OUR ids: retries
  // reused the operation's id instead of minting fresh ones.
  EXPECT_GT(f.sink->captured(), 0u);
  for (const CapturedTrace& trace : f.sink->Snapshot()) {
    EXPECT_TRUE(our_ids.count(trace.trace_id))
        << "unexpected trace id " << net::TraceIdHex(trace.trace_id);
  }
  proxy.value()->Shutdown();
}

TEST(TraceServingTest, NoSinkMeansNoTracingAndTracez404) {
  // A server without a sink: requests succeed, no timing frames, and
  // /tracez says tracing is off.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  std::unique_ptr<NcvrGenerator> generator =
      std::make_unique<NcvrGenerator>(std::move(gen.value()));
  Result<std::unique_ptr<LinkageService>> service =
      LinkageService::Create(BaseConfig(generator->schema()));
  ASSERT_TRUE(service.ok());
  const std::vector<Record> records = GenerateRecords(*generator, 4, 21);
  for (const Record& r : records) {
    ASSERT_TRUE(service.value()->Insert(r).ok());
  }
  Result<std::unique_ptr<NetServer>> server =
      NetServer::Start(service.value().get(), NetServerOptions{});
  ASSERT_TRUE(server.ok());

  Result<std::unique_ptr<NetClient>> client =
      NetClient::Connect("127.0.0.1", server.value()->port());
  ASSERT_TRUE(client.ok());
  client.value()->set_trace(MixTraceId(1));  // armed, but server ignores
  Record query = records[0];
  query.id = 9000;
  std::vector<IdPair> pairs;
  ASSERT_TRUE(client.value()->Match(query, &pairs).ok());
  EXPECT_TRUE(client.value()->last_server_timing().empty());

  const std::string tracez = HttpGet(server.value()->port(), "/tracez");
  EXPECT_NE(tracez.find("404"), std::string::npos) << tracez;
}

}  // namespace
}  // namespace telemetry
}  // namespace cbvlink
