// Model-based randomized tests: core containers are exercised against
// trivially correct reference implementations under long random
// operation sequences, and serialization layers are checked by
// write/read round-trip properties.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <vector>

#include "src/common/bitvector.h"
#include "src/common/random.h"
#include "src/eval/csv.h"
#include "src/io/csv_reader.h"
#include "src/lsh/blocking_table.h"

namespace cbvlink {
namespace {

TEST(BitVectorModelTest, RandomOpsAgreeWithVectorBool) {
  Rng rng(42);
  for (int round = 0; round < 20; ++round) {
    const size_t bits = 1 + rng.Below(300);
    BitVector bv(bits);
    std::vector<bool> model(bits, false);
    for (int op = 0; op < 500; ++op) {
      const size_t pos = rng.Below(bits);
      switch (rng.Below(3)) {
        case 0:
          bv.Set(pos);
          model[pos] = true;
          break;
        case 1:
          bv.Clear(pos);
          model[pos] = false;
          break;
        default: {
          const bool value = rng.NextBool(0.5);
          bv.Assign(pos, value);
          model[pos] = value;
          break;
        }
      }
    }
    size_t model_pop = 0;
    for (size_t i = 0; i < bits; ++i) {
      EXPECT_EQ(bv.Test(i), model[i]) << "bit " << i;
      if (model[i]) ++model_pop;
    }
    EXPECT_EQ(bv.PopCount(), model_pop);
  }
}

TEST(BitVectorModelTest, HammingAgreesWithNaiveCount) {
  Rng rng(43);
  for (int round = 0; round < 30; ++round) {
    const size_t bits = 1 + rng.Below(250);
    BitVector a(bits);
    BitVector b(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextBool(0.4)) a.Set(i);
      if (rng.NextBool(0.4)) b.Set(i);
    }
    size_t naive = 0;
    for (size_t i = 0; i < bits; ++i) {
      if (a.Test(i) != b.Test(i)) ++naive;
    }
    EXPECT_EQ(a.HammingDistance(b), naive);
    // Ranged distance over random sub-intervals.
    for (int probe = 0; probe < 10; ++probe) {
      const size_t offset = rng.Below(bits);
      const size_t length = rng.Below(bits - offset + 1);
      size_t naive_range = 0;
      for (size_t i = offset; i < offset + length; ++i) {
        if (a.Test(i) != b.Test(i)) ++naive_range;
      }
      EXPECT_EQ(a.HammingDistanceRange(b, offset, length), naive_range)
          << "offset=" << offset << " length=" << length;
    }
  }
}

TEST(BitVectorModelTest, AppendThenSliceIsIdentity) {
  Rng rng(44);
  for (int round = 0; round < 40; ++round) {
    const size_t bits_x = 1 + rng.Below(150);
    const size_t bits_y = 1 + rng.Below(150);
    BitVector x(bits_x);
    BitVector y(bits_y);
    for (size_t i = 0; i < bits_x; ++i) {
      if (rng.NextBool(0.5)) x.Set(i);
    }
    for (size_t i = 0; i < bits_y; ++i) {
      if (rng.NextBool(0.5)) y.Set(i);
    }
    BitVector joined = x;
    joined.Append(y);
    ASSERT_EQ(joined.size(), bits_x + bits_y);
    EXPECT_EQ(joined.Slice(0, bits_x), x);
    EXPECT_EQ(joined.Slice(bits_x, bits_y), y);
    EXPECT_EQ(joined.PopCount(), x.PopCount() + y.PopCount());
  }
}

TEST(BlockingTableModelTest, AgreesWithMultimap) {
  Rng rng(45);
  BlockingTable table;
  std::map<uint64_t, std::vector<RecordId>> model;
  for (int op = 0; op < 2000; ++op) {
    const uint64_t key = rng.Below(50);
    const RecordId id = rng.Below(200);
    if (rng.NextBool(0.85)) {
      table.Insert(key, id);
      model[key].push_back(id);
    } else {
      table.Erase(id);
      for (auto it = model.begin(); it != model.end();) {
        auto& bucket = it->second;
        bucket.erase(std::remove(bucket.begin(), bucket.end(), id),
                     bucket.end());
        it = bucket.empty() ? model.erase(it) : std::next(it);
      }
    }
  }
  EXPECT_EQ(table.NumBuckets(), model.size());
  size_t model_entries = 0;
  size_t model_max = 0;
  for (const auto& [key, bucket] : model) {
    model_entries += bucket.size();
    model_max = std::max(model_max, bucket.size());
    const auto actual = table.Get(key);
    ASSERT_EQ(actual.size(), bucket.size()) << "key " << key;
    for (size_t i = 0; i < bucket.size(); ++i) {
      EXPECT_EQ(actual[i], bucket[i]);
    }
  }
  EXPECT_EQ(table.NumEntries(), model_entries);
  EXPECT_EQ(table.MaxBucketSize(), model_max);
}

TEST(CsvRoundTripTest, WriterOutputParsesBack) {
  Rng rng(46);
  const std::string path = testing::TempDir() + "/roundtrip.csv";
  std::vector<std::vector<std::string>> rows;
  {
    Result<CsvWriter> writer = CsvWriter::Open(path, {"id", "a", "b"});
    ASSERT_TRUE(writer.ok());
    for (int r = 0; r < 100; ++r) {
      std::vector<std::string> row;
      row.push_back(std::to_string(r));
      for (int c = 0; c < 2; ++c) {
        std::string field;
        const size_t len = rng.Below(12);
        for (size_t i = 0; i < len; ++i) {
          // Include the troublesome characters: comma, quote, letters.
          const char* charset = "ABC,\"XYZ ";
          field.push_back(charset[rng.Below(9)]);
        }
        row.push_back(std::move(field));
      }
      writer.value().WriteRow(row);
      rows.push_back(std::move(row));
    }
  }
  CsvReadOptions options;  // id column present
  Result<CsvDataset> dataset = ReadCsvDataset(path, options);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  ASSERT_EQ(dataset.value().records.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(dataset.value().records[r].id, r);
    ASSERT_EQ(dataset.value().records[r].fields.size(), 2u);
    EXPECT_EQ(dataset.value().records[r].fields[0], rows[r][1]) << r;
    EXPECT_EQ(dataset.value().records[r].fields[1], rows[r][2]) << r;
  }
}

}  // namespace
}  // namespace cbvlink
