#include "src/lsh/params.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace cbvlink {
namespace {

TEST(HammingBaseProbabilityTest, Definition3Formula) {
  EXPECT_DOUBLE_EQ(HammingBaseProbability(4, 120).value(), 1.0 - 4.0 / 120.0);
  EXPECT_DOUBLE_EQ(HammingBaseProbability(0, 10).value(), 1.0);
  EXPECT_DOUBLE_EQ(HammingBaseProbability(10, 10).value(), 0.0);
}

TEST(HammingBaseProbabilityTest, RejectsBadInputs) {
  EXPECT_FALSE(HammingBaseProbability(5, 0).ok());
  EXPECT_FALSE(HammingBaseProbability(11, 10).ok());
}

TEST(JaccardBaseProbabilityTest, ComplementOfThreshold) {
  EXPECT_DOUBLE_EQ(JaccardBaseProbability(0.35).value(), 0.65);
  EXPECT_DOUBLE_EQ(JaccardBaseProbability(0.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(JaccardBaseProbability(1.0).value(), 0.0);
  EXPECT_FALSE(JaccardBaseProbability(-0.1).ok());
  EXPECT_FALSE(JaccardBaseProbability(1.1).ok());
}

TEST(EuclideanBaseProbabilityTest, BoundaryBehaviour) {
  EXPECT_DOUBLE_EQ(EuclideanBaseProbability(0.0, 4.0).value(), 1.0);
  EXPECT_FALSE(EuclideanBaseProbability(1.0, 0.0).ok());
  EXPECT_FALSE(EuclideanBaseProbability(-1.0, 4.0).ok());
}

TEST(EuclideanBaseProbabilityTest, MonotoneDecreasingInDistance) {
  double prev = 1.0;
  for (double c = 0.5; c <= 20.0; c += 0.5) {
    const double p = EuclideanBaseProbability(c, 4.0).value();
    EXPECT_LE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(EuclideanBaseProbabilityTest, KnownDatarValueAtCEqualsW) {
  // At c = w the Datar et al. formula gives
  // p = 1 - 2*Phi(-1) - sqrt(2/pi)*(1 - e^{-1/2}) ~ 0.36875, for any w
  // (the formula depends only on w/c).
  EXPECT_NEAR(EuclideanBaseProbability(4.0, 4.0).value(), 0.36875, 0.0005);
  EXPECT_NEAR(EuclideanBaseProbability(1.0, 1.0).value(), 0.36875, 0.0005);
}

TEST(OptimalGroupsTest, PaperPLConfiguration) {
  // Section 6.2: K = 30, delta = 0.1, theta = 4, m-bar = 120 -> L = 6 for
  // NCVR; m-bar = 267 -> L = 3 for DBLP.
  const double p_ncvr = HammingBaseProbability(4, 120).value();
  EXPECT_EQ(OptimalGroups(p_ncvr, 30, 0.1).value(), 6u);
  const double p_dblp = HammingBaseProbability(4, 267).value();
  EXPECT_EQ(OptimalGroups(p_dblp, 30, 0.1).value(), 3u);
}

TEST(OptimalGroupsTest, BfhPLConfiguration) {
  // Section 6.1 (BfH): theta = 45 over 2000 Bloom bits, K = 30 -> L = 4.
  const double p = HammingBaseProbability(45, 2000).value();
  EXPECT_EQ(OptimalGroups(p, 30, 0.1).value(), 4u);
}

TEST(OptimalGroupsTest, CertainCollisionNeedsOneGroup) {
  EXPECT_EQ(OptimalGroupsFromComposite(1.0, 0.1).value(), 1u);
}

TEST(OptimalGroupsTest, SmallerDeltaNeedsMoreGroups) {
  const double p = 0.3;
  const size_t l10 = OptimalGroupsFromComposite(p, 0.10).value();
  const size_t l01 = OptimalGroupsFromComposite(p, 0.01).value();
  EXPECT_GT(l01, l10);
}

TEST(OptimalGroupsTest, RejectsInvalidInputs) {
  EXPECT_FALSE(OptimalGroupsFromComposite(0.0, 0.1).ok());
  EXPECT_FALSE(OptimalGroupsFromComposite(-0.5, 0.1).ok());
  EXPECT_FALSE(OptimalGroupsFromComposite(1.5, 0.1).ok());
  EXPECT_FALSE(OptimalGroupsFromComposite(0.5, 0.0).ok());
  EXPECT_FALSE(OptimalGroupsFromComposite(0.5, 1.0).ok());
  EXPECT_FALSE(OptimalGroups(1.5, 3, 0.1).ok());
}

TEST(OptimalGroupsTest, InfeasibleConfigurationsAreRejectedNotTruncated) {
  // A vanishing composite probability would need astronomically many
  // groups; the calculator must fail loudly.
  EXPECT_FALSE(OptimalGroupsFromComposite(1e-9, 0.1, 100000).ok());
}

TEST(OptimalGroupsTest, GuaranteeHolds) {
  // For any (p, K, delta), the returned L achieves miss probability
  // (1 - p^K)^L <= delta — the Equation 2 guarantee.
  for (const auto& [p, K, delta] :
       {std::make_tuple(0.9, size_t{10}, 0.1),
        std::make_tuple(0.7, size_t{5}, 0.05),
        std::make_tuple(0.9667, size_t{30}, 0.1),
        std::make_tuple(0.99, size_t{40}, 0.01)}) {
    const size_t L = OptimalGroups(p, K, delta).value();
    const double composite = std::pow(p, static_cast<double>(K));
    EXPECT_LE(MissProbability(composite, L), delta + 1e-12)
        << "p=" << p << " K=" << K;
    // And L is minimal: one fewer group would break the guarantee.
    if (L > 1) {
      EXPECT_GT(MissProbability(composite, L - 1), delta - 1e-12);
    }
  }
}

TEST(MissProbabilityTest, Basics) {
  EXPECT_DOUBLE_EQ(MissProbability(1.0, 5), 0.0);
  EXPECT_DOUBLE_EQ(MissProbability(0.0, 5), 1.0);
  EXPECT_NEAR(MissProbability(0.5, 2), 0.25, 1e-12);
}

}  // namespace
}  // namespace cbvlink
