#include "src/embedding/bloom_filter.h"

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/datagen/perturbator.h"

namespace cbvlink {
namespace {

QGramExtractor MakeExtractor() {
  Result<QGramExtractor> extractor =
      QGramExtractor::Create(Alphabet::Uppercase(), {.q = 2, .pad = false});
  EXPECT_TRUE(extractor.ok());
  return std::move(extractor).value();
}

BloomFilterEncoder MakeEncoder(BloomFilterOptions options = {}) {
  Result<BloomFilterEncoder> encoder =
      BloomFilterEncoder::Create(MakeExtractor(), options);
  EXPECT_TRUE(encoder.ok());
  return std::move(encoder).value();
}

TEST(BloomFilterEncoderTest, DefaultsMatchPaper) {
  const BloomFilterEncoder encoder = MakeEncoder();
  EXPECT_EQ(encoder.vector_size(), 500u);
  EXPECT_EQ(encoder.num_hashes(), 15u);
}

TEST(BloomFilterEncoderTest, RejectsZeroParameters) {
  EXPECT_FALSE(
      BloomFilterEncoder::Create(MakeExtractor(), {.num_bits = 0}).ok());
  EXPECT_FALSE(
      BloomFilterEncoder::Create(MakeExtractor(), {.num_hashes = 0}).ok());
}

TEST(BloomFilterEncoderTest, EmptyStringIsZeroFilter) {
  EXPECT_EQ(MakeEncoder().Encode("").PopCount(), 0u);
}

TEST(BloomFilterEncoderTest, Deterministic) {
  const BloomFilterEncoder encoder = MakeEncoder();
  EXPECT_EQ(encoder.Encode("JONES"), encoder.Encode("JONES"));
}

TEST(BloomFilterEncoderTest, PopCountBounds) {
  const BloomFilterEncoder encoder = MakeEncoder();
  // 'JONES' has 4 bigrams, so at most 60 and at least 15 set bits (all
  // hashes of one gram could collide only within the gram).
  const size_t pop = encoder.Encode("JONES").PopCount();
  EXPECT_LE(pop, 4u * 15u);
  EXPECT_GE(pop, 15u);
}

TEST(BloomFilterEncoderTest, IdenticalGramsShareBits) {
  const BloomFilterEncoder encoder = MakeEncoder();
  // 'AAAA' has one distinct bigram -> at most 15 bits.
  EXPECT_LE(encoder.Encode("AAAA").PopCount(), 15u);
}

TEST(BloomFilterEncoderTest, DistanceDependsOnStringLength) {
  // Section 6.1's observation: one substitution produces a much larger
  // Hamming distance on short strings than on long ones, because each
  // changed bigram toggles up to 15 bits while long strings overlap more.
  const BloomFilterEncoder encoder = MakeEncoder();
  const size_t d_short =
      encoder.Encode("JOHN").HammingDistance(encoder.Encode("JAHN"));
  const size_t d_long = encoder.Encode("SCALABILITY")
                            .HammingDistance(encoder.Encode("SCELABILITY"));
  // Exact values depend on the hash family; the paper reports 54 vs 37.
  // The robust property is a materially larger distance for the short
  // pair despite the identical edit distance.
  EXPECT_GT(d_short, d_long);
  EXPECT_GT(d_short, 30u);
  EXPECT_LT(d_long, d_short);
}

TEST(BloomFilterEncoderTest, SingleSubstitutionStaysUnderThreshold45) {
  // The paper's PL matching threshold for Bloom filters is 45 per field;
  // a single substitution should usually stay below it.
  const BloomFilterEncoder encoder = MakeEncoder();
  Rng rng(17);
  int under = 0;
  constexpr int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) {
    const std::string base = "JOHNSON";
    const std::string perturbed =
        Perturbator::ApplyOp(base, PerturbationType::kSubstitute, rng);
    if (encoder.Encode(base).HammingDistance(encoder.Encode(perturbed)) <= 60) {
      ++under;
    }
  }
  EXPECT_GT(under, 90);
}

TEST(BloomFilterEncoderTest, CustomSizes) {
  const BloomFilterEncoder encoder =
      MakeEncoder({.num_bits = 128, .num_hashes = 4});
  EXPECT_EQ(encoder.vector_size(), 128u);
  EXPECT_EQ(encoder.Encode("JONES").size(), 128u);
  EXPECT_LE(encoder.Encode("JONES").PopCount(), 16u);
}

TEST(BloomFilterEncoderTest, SharedSeedMakesEncodersAgree) {
  // Two encoders with the same options behave like the same family of
  // "cryptographic" hash functions — a requirement for linking across
  // independently encoded data sets.
  const BloomFilterEncoder e1 = MakeEncoder();
  const BloomFilterEncoder e2 = MakeEncoder();
  EXPECT_EQ(e1.Encode("SMITH"), e2.Encode("SMITH"));
}

}  // namespace
}  // namespace cbvlink
