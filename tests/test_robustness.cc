// Robustness and property tests: degenerate inputs pushed through the
// whole pipeline, randomized round-trips, and parameterized guarantee
// sweeps that tie the LSH layer to Definition 3 / Equation 2 across
// configurations.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "src/common/random.h"
#include "src/datagen/generators.h"
#include "src/eval/experiment.h"
#include "src/linkage/cbv_hb_linker.h"
#include "src/lsh/hamming_lsh.h"
#include "src/lsh/params.h"
#include "src/rules/rule_parser.h"

namespace cbvlink {
namespace {

// ---------------------------------------------------------------------------
// Degenerate-input injection through the full cBV-HB pipeline.

Schema SimpleSchema() {
  Schema schema;
  const QGramOptions unpadded{.q = 2, .pad = false};
  schema.attributes = {
      {"FirstName", &Alphabet::Uppercase(), unpadded},
      {"LastName", &Alphabet::Uppercase(), unpadded},
  };
  return schema;
}

CbvHbConfig SimpleConfig() {
  CbvHbConfig config;
  config.schema = SimpleSchema();
  config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4)});
  config.record_K = 10;
  config.record_theta = 4;
  config.expected_qgrams = {5.0, 5.0};
  config.seed = 1;
  return config;
}

TEST(RobustnessTest, EmptyFieldsLinkWithoutCrashing) {
  std::vector<Record> a = {{0, {"", "SMITH"}},
                           {1, {"JOHN", ""}},
                           {2, {"", ""}},
                           {3, {"MARY", "JONES"}}};
  std::vector<Record> b = {{10, {"", "SMITH"}},
                           {11, {"MARY", "JONES"}},
                           {12, {"", ""}}};
  Result<CbvHbLinker> linker = CbvHbLinker::Create(SimpleConfig());
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(a, b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Identical records (including the all-empty ones) must match.
  const auto found = [&](RecordId x, RecordId y) {
    return std::find(result.value().matches.begin(),
                     result.value().matches.end(),
                     IdPair{x, y}) != result.value().matches.end();
  };
  EXPECT_TRUE(found(0, 10));
  EXPECT_TRUE(found(3, 11));
  EXPECT_TRUE(found(2, 12));
}

TEST(RobustnessTest, GarbageCharactersAreNormalizedAway) {
  std::vector<Record> a = {{0, {"J@O#H$N!", "smith-jr."}}};
  std::vector<Record> b = {{10, {"John", "SMITHJR"}}};
  Result<CbvHbLinker> linker = CbvHbLinker::Create(SimpleConfig());
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(a, b);
  ASSERT_TRUE(result.ok());
  // After normalization both sides are JOHN / SMITHJR — a perfect match.
  ASSERT_EQ(result.value().matches.size(), 1u);
}

TEST(RobustnessTest, VeryLongStringsAreHandled) {
  std::string long_name(5000, 'A');
  long_name += "UNIQUESUFFIX";
  std::vector<Record> a = {{0, {long_name, "SMITH"}}};
  std::vector<Record> b = {{10, {long_name, "SMITH"}}};
  Result<CbvHbLinker> linker = CbvHbLinker::Create(SimpleConfig());
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(a, b);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().matches.size(), 1u);
}

TEST(RobustnessTest, EmptyDataSetsLinkToNothing) {
  Result<CbvHbLinker> linker = CbvHbLinker::Create(SimpleConfig());
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link({}, {});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().matches.empty());
  EXPECT_EQ(result.value().stats.comparisons, 0u);
}

TEST(RobustnessTest, MalformedRecordSurfacesStatusNotCrash) {
  std::vector<Record> a = {{0, {"ONLYONEFIELD"}}};
  std::vector<Record> b = {{10, {"JOHN", "SMITH"}}};
  Result<CbvHbLinker> linker = CbvHbLinker::Create(SimpleConfig());
  ASSERT_TRUE(linker.ok());
  Result<LinkageResult> result = linker.value().Link(a, b);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Randomized parser round-trip.

/// Builds a random rule tree of the given depth.
Rule RandomRule(Rng& rng, size_t depth) {
  if (depth == 0 || rng.Below(3) == 0) {
    return Rule::Pred(rng.Below(4), rng.Below(10));
  }
  switch (rng.Below(3)) {
    case 0: {
      std::vector<Rule> children;
      const size_t n = 2 + rng.Below(2);
      for (size_t i = 0; i < n; ++i) {
        children.push_back(RandomRule(rng, depth - 1));
      }
      return Rule::And(std::move(children));
    }
    case 1: {
      std::vector<Rule> children;
      const size_t n = 2 + rng.Below(2);
      for (size_t i = 0; i < n; ++i) {
        children.push_back(RandomRule(rng, depth - 1));
      }
      return Rule::Or(std::move(children));
    }
    default:
      return Rule::Not(RandomRule(rng, depth - 1));
  }
}

TEST(RuleRoundTripProperty, ParseOfToStringIsIdentity) {
  Rng rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const Rule rule = RandomRule(rng, 3);
    const std::string text = rule.ToString();
    Result<Rule> parsed = ParseRule(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().ToString(), text);
  }
}

TEST(RuleRoundTripProperty, ParsedRuleEvaluatesIdentically) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const Rule rule = RandomRule(rng, 3);
    Result<Rule> parsed = ParseRule(rule.ToString());
    ASSERT_TRUE(parsed.ok());
    for (int probe = 0; probe < 20; ++probe) {
      size_t distances[4];
      for (size_t& d : distances) d = rng.Below(12);
      const auto dist_fn = [&](size_t attr) { return distances[attr]; };
      EXPECT_EQ(rule.Evaluate(dist_fn), parsed.value().Evaluate(dist_fn));
    }
  }
}

// ---------------------------------------------------------------------------
// Parameterized Equation 2 guarantee sweep over (K, theta).

class Eq2GuaranteeSweep
    : public testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(Eq2GuaranteeSweep, PairsWithinThetaAreFound) {
  const auto [K, theta] = GetParam();
  constexpr size_t kBits = 120;
  constexpr double kDelta = 0.1;
  const double p = HammingBaseProbability(theta, kBits).value();
  Result<size_t> L = OptimalGroups(p, K, kDelta);
  ASSERT_TRUE(L.ok());

  Rng rng(K * 1000 + theta);
  size_t found = 0;
  constexpr size_t kRounds = 250;
  for (size_t round = 0; round < kRounds; ++round) {
    BitVector a(kBits);
    for (size_t i = 0; i < kBits; ++i) {
      if (rng.NextBool(0.3)) a.Set(i);
    }
    BitVector b = a;
    for (size_t flips = 0; flips < theta; ++flips) {
      const size_t pos = rng.Below(kBits);
      if (b.Test(pos)) {
        b.Clear(pos);
      } else {
        b.Set(pos);
      }
    }
    Result<HammingLshFamily> family =
        HammingLshFamily::CreateFull(K, L.value(), kBits, rng);
    ASSERT_TRUE(family.ok());
    bool hit = false;
    for (size_t l = 0; l < L.value() && !hit; ++l) {
      hit = family.value().Key(a, l) == family.value().Key(b, l);
    }
    if (hit) ++found;
  }
  // 1 - delta guarantee with sampling slack (3 sigma ~ 0.06 at n = 250).
  EXPECT_GE(static_cast<double>(found) / kRounds, 1.0 - kDelta - 0.06)
      << "K=" << K << " theta=" << theta << " L=" << L.value();
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, Eq2GuaranteeSweep,
    testing::Combine(testing::Values(size_t{10}, size_t{20}, size_t{30}),
                     testing::Values(size_t{2}, size_t{4}, size_t{8})));

// ---------------------------------------------------------------------------
// End-to-end determinism: same seeds, same results.

TEST(RobustnessTest, FullPipelineIsDeterministic) {
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  LinkagePairOptions options;
  options.num_records = 300;
  options.seed = 99;
  const auto run = [&]() {
    Result<LinkagePair> data =
        BuildLinkagePair(gen.value(), PerturbationScheme::Light(), options);
    EXPECT_TRUE(data.ok());
    CbvHbConfig config;
    config.schema = gen.value().schema();
    config.rule = Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4),
                             Rule::Pred(2, 4), Rule::Pred(3, 4)});
    config.seed = 5;
    Result<CbvHbLinker> linker = CbvHbLinker::Create(std::move(config));
    EXPECT_TRUE(linker.ok());
    Result<LinkageResult> result =
        linker.value().Link(data.value().a, data.value().b);
    EXPECT_TRUE(result.ok());
    std::vector<IdPair> matches = std::move(result).value().matches;
    std::sort(matches.begin(), matches.end());
    return matches;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace cbvlink
