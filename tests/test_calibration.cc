#include "src/eval/calibration.h"

#include <gtest/gtest.h>

#include "src/datagen/generators.h"
#include "src/datagen/perturbator.h"

namespace cbvlink {
namespace {

/// Sample matching pairs: NCVR records with one forced edit of `type` on
/// attribute 0.
std::vector<std::pair<Record, Record>> MakePairs(const NcvrGenerator& gen,
                                                 PerturbationType type,
                                                 size_t n) {
  Rng rng(7);
  std::vector<std::pair<Record, Record>> pairs;
  pairs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Record a = gen.Generate(i, rng);
    Record b = a;
    b.fields[0] = Perturbator::ApplyOp(b.fields[0], type, rng);
    pairs.emplace_back(std::move(a), std::move(b));
  }
  return pairs;
}

TEST(CalibrationTest, ValidatesInputs) {
  const auto distances =
      [](const Record&, const Record&) -> Result<std::vector<size_t>> {
    return std::vector<size_t>{0};
  };
  EXPECT_FALSE(CalibrateThresholds(1, distances, {}, {}).ok());
  Record r{0, {"X"}};
  std::vector<std::pair<Record, Record>> one{{r, r}};
  CalibrationOptions bad;
  bad.recall_target = 0.0;
  EXPECT_FALSE(CalibrateThresholds(1, distances, one, bad).ok());
  bad.recall_target = 1.5;
  EXPECT_FALSE(CalibrateThresholds(1, distances, one, bad).ok());
  EXPECT_FALSE(CalibrateThresholds(0, distances, one, {}).ok());
}

TEST(CalibrationTest, QuantileSelection) {
  // Distances 0..9 on one attribute; recall 0.95 -> ceil(9.5)-1 = index 9
  // -> 9; recall 0.5 -> index 4 -> 4.
  size_t next = 0;
  const auto distances =
      [&](const Record&, const Record&) -> Result<std::vector<size_t>> {
    return std::vector<size_t>{next++};
  };
  Record r{0, {"X"}};
  std::vector<std::pair<Record, Record>> pairs(10, {r, r});
  CalibrationOptions half;
  half.recall_target = 0.5;
  Result<CalibratedThresholds> c = CalibrateThresholds(1, distances, pairs, half);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().thetas[0], 4u);
  EXPECT_EQ(c.value().max_distances[0], 9u);

  next = 0;
  CalibrationOptions full;
  full.recall_target = 1.0;
  c = CalibrateThresholds(1, distances, pairs, full);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().thetas[0], 9u);
}

TEST(CalibrationTest, CVectorSubstitutionCalibratesNearPaperTheta) {
  // Calibrating on single-substitution pairs should land at or below the
  // Section 5.1 bound of 4 bits for the perturbed attribute and ~0 for
  // untouched attributes.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng enc_rng(1);
  Result<CVectorRecordEncoder> encoder = CVectorRecordEncoder::Create(
      gen.value().schema(), {5.1, 5.0, 20.0, 7.2}, enc_rng);
  ASSERT_TRUE(encoder.ok());

  Result<CalibratedThresholds> c = CalibrateThresholds(
      encoder.value(),
      MakePairs(gen.value(), PerturbationType::kSubstitute, 400), {});
  ASSERT_TRUE(c.ok());
  EXPECT_GE(c.value().thetas[0], 2u);
  EXPECT_LE(c.value().thetas[0], 4u);   // the alpha = 4 bound
  EXPECT_EQ(c.value().thetas[1], 0u);   // untouched attributes
  EXPECT_EQ(c.value().thetas[2], 0u);
  EXPECT_EQ(c.value().max_distances[0], 4u);
}

TEST(CalibrationTest, BloomCalibrationShowsLengthDependentScale) {
  // The Bloom space needs much larger thresholds for the same single
  // edit (the Section 6.1 discussion; the paper's own example is 54
  // bits for 'JOHN'/'JAHN').
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Result<BloomRecordEncoder> encoder =
      BloomRecordEncoder::Create(gen.value().schema());
  ASSERT_TRUE(encoder.ok());
  Result<CalibratedThresholds> c = CalibrateThresholds(
      encoder.value(),
      MakePairs(gen.value(), PerturbationType::kSubstitute, 400), {});
  ASSERT_TRUE(c.ok());
  EXPECT_GE(c.value().thetas[0], 30u);
  EXPECT_LE(c.value().thetas[0], 70u);
}

TEST(CalibrationTest, ToRuleBuildsConjunction) {
  CalibratedThresholds c;
  c.thetas = {4, 4, 8};
  EXPECT_EQ(c.ToRule().ToString(), "((f1 <= 4) AND (f2 <= 4) AND (f3 <= 8))");
  c.thetas = {3};
  EXPECT_EQ(c.ToRule().ToString(), "(f1 <= 3)");
}

TEST(CalibrationTest, DistanceErrorsPropagate) {
  const auto failing =
      [](const Record&, const Record&) -> Result<std::vector<size_t>> {
    return Status::Internal("no distance");
  };
  Record r{0, {"X"}};
  std::vector<std::pair<Record, Record>> pairs{{r, r}};
  EXPECT_FALSE(CalibrateThresholds(1, failing, pairs, {}).ok());
}

}  // namespace
}  // namespace cbvlink
