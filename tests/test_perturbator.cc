#include "src/datagen/perturbator.h"

#include <gtest/gtest.h>

#include <set>

#include "src/metrics/edit_distance.h"

namespace cbvlink {
namespace {

TEST(PerturbationTypeNameTest, AllNames) {
  EXPECT_STREQ(PerturbationTypeName(PerturbationType::kSubstitute),
               "substitute");
  EXPECT_STREQ(PerturbationTypeName(PerturbationType::kInsert), "insert");
  EXPECT_STREQ(PerturbationTypeName(PerturbationType::kDelete), "delete");
}

TEST(ApplyOpTest, SubstituteKeepsLengthChangesOneChar) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const std::string out =
        Perturbator::ApplyOp("JONES", PerturbationType::kSubstitute, rng);
    EXPECT_EQ(out.size(), 5u);
    EXPECT_EQ(EditDistance("JONES", out), 1u) << out;
  }
}

TEST(ApplyOpTest, InsertGrowsByOne) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const std::string out =
        Perturbator::ApplyOp("JONES", PerturbationType::kInsert, rng);
    EXPECT_EQ(out.size(), 6u);
    EXPECT_EQ(EditDistance("JONES", out), 1u) << out;
  }
}

TEST(ApplyOpTest, DeleteShrinksByOne) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::string out =
        Perturbator::ApplyOp("JONES", PerturbationType::kDelete, rng);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(EditDistance("JONES", out), 1u) << out;
  }
}

TEST(ApplyOpTest, EmptyStringDegradesToInsert) {
  Rng rng(4);
  EXPECT_EQ(
      Perturbator::ApplyOp("", PerturbationType::kSubstitute, rng).size(), 1u);
  EXPECT_EQ(Perturbator::ApplyOp("", PerturbationType::kDelete, rng).size(),
            1u);
  EXPECT_EQ(Perturbator::ApplyOp("", PerturbationType::kInsert, rng).size(),
            1u);
}

TEST(ApplyOpTest, SingleCharDelete) {
  Rng rng(5);
  EXPECT_TRUE(
      Perturbator::ApplyOp("A", PerturbationType::kDelete, rng).empty());
}

TEST(SchemeTest, LightPerturbsExactlyOneAttribute) {
  Rng rng(6);
  const Record base{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  const PerturbationScheme scheme = PerturbationScheme::Light();
  for (int i = 0; i < 50; ++i) {
    std::vector<AppliedPerturbation> ops;
    Result<Record> out = Perturbator::Apply(base, scheme, rng, &ops);
    ASSERT_TRUE(out.ok());
    ASSERT_EQ(ops.size(), 1u);
    size_t changed = 0;
    for (size_t attr = 0; attr < 4; ++attr) {
      if (out.value().fields[attr] != base.fields[attr]) ++changed;
    }
    EXPECT_EQ(changed, 1u);
    EXPECT_NE(out.value().fields[ops[0].attribute],
              base.fields[ops[0].attribute]);
  }
}

TEST(SchemeTest, LightCoversAllAttributesEventually) {
  Rng rng(7);
  const Record base{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  const PerturbationScheme scheme = PerturbationScheme::Light();
  std::set<size_t> touched;
  for (int i = 0; i < 200; ++i) {
    std::vector<AppliedPerturbation> ops;
    ASSERT_TRUE(Perturbator::Apply(base, scheme, rng, &ops).ok());
    touched.insert(ops[0].attribute);
  }
  EXPECT_EQ(touched.size(), 4u);
}

TEST(SchemeTest, HeavyAppliesOneOneTwo) {
  Rng rng(8);
  const Record base{0, {"JOHN", "SMITH", "12 OAK STREET", "CARY"}};
  const PerturbationScheme scheme = PerturbationScheme::Heavy(4);
  std::vector<AppliedPerturbation> ops;
  Result<Record> out = Perturbator::Apply(base, scheme, rng, &ops);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(ops.size(), 4u);
  EXPECT_EQ(ops[0].attribute, 0u);
  EXPECT_EQ(ops[1].attribute, 1u);
  EXPECT_EQ(ops[2].attribute, 2u);
  EXPECT_EQ(ops[3].attribute, 2u);
  // f4 untouched under PH.
  EXPECT_EQ(out.value().fields[3], base.fields[3]);
  // Perturbed attributes stay within the per-attribute edit budget.
  EXPECT_LE(EditDistance(base.fields[0], out.value().fields[0]), 1u);
  EXPECT_LE(EditDistance(base.fields[1], out.value().fields[1]), 1u);
  EXPECT_LE(EditDistance(base.fields[2], out.value().fields[2]), 2u);
}

TEST(SchemeTest, ForcedTypeIsRespected) {
  Rng rng(9);
  const Record base{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  PerturbationScheme scheme = PerturbationScheme::Heavy(4);
  scheme.forced_type = PerturbationType::kDelete;
  std::vector<AppliedPerturbation> ops;
  ASSERT_TRUE(Perturbator::Apply(base, scheme, rng, &ops).ok());
  for (const AppliedPerturbation& op : ops) {
    EXPECT_EQ(op.type, PerturbationType::kDelete);
  }
}

TEST(SchemeTest, HeavySmallSchemas) {
  const PerturbationScheme two = PerturbationScheme::Heavy(2);
  EXPECT_EQ(two.ops_per_attribute, (std::vector<size_t>{1, 1}));
  const PerturbationScheme zero = PerturbationScheme::Heavy(0);
  EXPECT_TRUE(zero.ops_per_attribute.empty());
}

TEST(SchemeTest, SchemeWiderThanRecordRejected) {
  Rng rng(10);
  const Record narrow{0, {"JOHN", "SMITH"}};
  const PerturbationScheme scheme = PerturbationScheme::Heavy(4);
  EXPECT_FALSE(Perturbator::Apply(narrow, scheme, rng, nullptr).ok());
}

TEST(SchemeTest, NullOpsPointerAccepted) {
  Rng rng(11);
  const Record base{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  EXPECT_TRUE(
      Perturbator::Apply(base, PerturbationScheme::Light(), rng, nullptr)
          .ok());
}

TEST(ApplyOpTest, ClearFieldEmptiesValue) {
  Rng rng(20);
  EXPECT_TRUE(
      Perturbator::ApplyOp("JONES", PerturbationType::kClearField, rng)
          .empty());
  EXPECT_TRUE(
      Perturbator::ApplyOp("", PerturbationType::kClearField, rng).empty());
}

TEST(SchemeTest, MissingValueProbabilityZeroNeverClears) {
  Rng rng(21);
  const Record base{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  const PerturbationScheme scheme = PerturbationScheme::Light();
  for (int i = 0; i < 100; ++i) {
    Result<Record> out = Perturbator::Apply(base, scheme, rng, nullptr);
    ASSERT_TRUE(out.ok());
    for (const std::string& f : out.value().fields) {
      EXPECT_FALSE(f.empty());
    }
  }
}

TEST(SchemeTest, MissingValueProbabilityOneAlwaysClearsOneField) {
  Rng rng(22);
  const Record base{0, {"JOHN", "SMITH", "12 OAK ST", "CARY"}};
  PerturbationScheme scheme = PerturbationScheme::Light();
  scheme.missing_value_probability = 1.0;
  for (int i = 0; i < 50; ++i) {
    std::vector<AppliedPerturbation> ops;
    Result<Record> out = Perturbator::Apply(base, scheme, rng, &ops);
    ASSERT_TRUE(out.ok());
    size_t empty_fields = 0;
    for (const std::string& f : out.value().fields) {
      if (f.empty()) ++empty_fields;
    }
    EXPECT_EQ(empty_fields, 1u);
    // The clear op is recorded after the edit op.
    ASSERT_EQ(ops.size(), 2u);
    EXPECT_EQ(ops[1].type, PerturbationType::kClearField);
  }
}

TEST(SchemeTest, MissingValueWorksWithHeavyScheme) {
  Rng rng(23);
  const Record base{0, {"JOHN", "SMITH", "12 OAK STREET", "CARY"}};
  PerturbationScheme scheme = PerturbationScheme::Heavy(4);
  scheme.missing_value_probability = 1.0;
  std::vector<AppliedPerturbation> ops;
  Result<Record> out = Perturbator::Apply(base, scheme, rng, &ops);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(ops.size(), 5u);  // 4 edits + 1 clear
  EXPECT_EQ(ops.back().type, PerturbationType::kClearField);
}

TEST(PerturbationTypeNameTest, ClearFieldName) {
  EXPECT_STREQ(PerturbationTypeName(PerturbationType::kClearField),
               "clear-field");
}

TEST(SchemeTest, LightOnFieldlessRecordRejected) {
  Rng rng(12);
  const Record empty{0, {}};
  EXPECT_FALSE(
      Perturbator::Apply(empty, PerturbationScheme::Light(), rng, nullptr)
          .ok());
}

}  // namespace
}  // namespace cbvlink
