#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace cbvlink {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](size_t, size_t begin, size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace cbvlink
