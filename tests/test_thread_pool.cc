#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <numeric>
#include <thread>
#include <tuple>
#include <vector>

namespace cbvlink {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // must not deadlock
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitMoreTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&] {
    counter.fetch_add(1);
    pool.Submit([&] { counter.fetch_add(10); });
  });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](size_t, size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(0, [&](size_t, size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForFewerItemsThanThreads) {
  ThreadPool pool(8);
  std::atomic<int> total{0};
  pool.ParallelFor(3, [&](size_t, size_t begin, size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPoolTest, ConcurrentParallelForCallsDoNotBlockEachOther) {
  // Regression: ParallelFor used to wait on the pool-wide in_flight_
  // counter, so one caller's completion was held hostage by another
  // caller's still-running tasks.  Here a background caller's chunks
  // block on a promise that is only released *after* the foreground
  // ParallelFor returns — with the old implementation this deadlocked.
  ThreadPool pool(4);
  std::promise<void> release;
  std::shared_future<void> gate(release.get_future());
  std::atomic<int> background_done{0};

  std::thread background([&] {
    pool.ParallelFor(2, [&](size_t, size_t, size_t) {
      gate.wait();
      background_done.fetch_add(1);
    });
  });

  // Give the background chunks time to occupy workers.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  std::atomic<int> foreground_done{0};
  pool.ParallelFor(8, [&](size_t, size_t begin, size_t end) {
    foreground_done.fetch_add(static_cast<int>(end - begin));
  });
  // Old behavior: the line above never returns while the background tasks
  // are parked on the gate.
  EXPECT_EQ(foreground_done.load(), 8);
  EXPECT_EQ(background_done.load(), 0);

  release.set_value();
  background.join();
  EXPECT_EQ(background_done.load(), 2);
}

TEST(ThreadPoolTest, ManyConcurrentParallelForCallers) {
  ThreadPool pool(4);
  constexpr int kCallers = 6;
  constexpr size_t kItems = 400;
  std::vector<std::atomic<size_t>> sums(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      pool.ParallelFor(kItems, [&sums, c](size_t, size_t begin, size_t end) {
        sums[c].fetch_add(end - begin);
      });
    });
  }
  for (std::thread& t : callers) t.join();
  for (const auto& sum : sums) EXPECT_EQ(sum.load(), kItems);
}

TEST(ThreadPoolTest, ParallelForChunkBoundariesAreDeterministic) {
  // The matcher's shard-order merge relies on chunk boundaries depending
  // only on (total, pool size).
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::tuple<size_t, size_t, size_t>> chunks(4);
    std::atomic<size_t> seen{0};
    pool.ParallelFor(10, [&](size_t chunk, size_t begin, size_t end) {
      chunks[chunk] = {chunk, begin, end};
      seen.fetch_add(1);
    });
    EXPECT_EQ(seen.load(), 4u);
    EXPECT_EQ(chunks[0], std::make_tuple(0u, 0u, 3u));
    EXPECT_EQ(chunks[1], std::make_tuple(1u, 3u, 6u));
    EXPECT_EQ(chunks[2], std::make_tuple(2u, 6u, 9u));
    EXPECT_EQ(chunks[3], std::make_tuple(3u, 9u, 10u));
  }
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 50);
}

}  // namespace
}  // namespace cbvlink
