// Cross-checks of the paper's reported parameter values, end to end:
// Table 3's m_opt column, the record-level L values of Section 6.2, and
// the attribute-level L values for scheme PH.  These tests tie the
// implementation to the published numbers rather than to itself.

#include <gtest/gtest.h>

#include "src/datagen/generators.h"
#include "src/embedding/record_encoder.h"
#include "src/lsh/params.h"
#include "src/rules/probability.h"

namespace cbvlink {
namespace {

TEST(PaperParametersTest, NcvrEncoderFromGeneratedDataNearTable3) {
  // Build the encoder the way Charlie would: estimate b from a sample of
  // generated records, then size with Theorem 1.  The resulting sizes
  // should reproduce Table 3 within +-1 bit per attribute.
  Result<NcvrGenerator> gen = NcvrGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(1);
  std::vector<Record> sample;
  for (size_t i = 0; i < 8000; ++i) {
    sample.push_back(gen.value().Generate(i, rng));
  }
  const std::vector<double> b =
      EstimateExpectedQGrams(gen.value().schema(), sample);
  Rng enc_rng(2);
  Result<CVectorRecordEncoder> encoder =
      CVectorRecordEncoder::Create(gen.value().schema(), b, enc_rng);
  ASSERT_TRUE(encoder.ok());
  const size_t expected[] = {15, 15, 68, 22};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(encoder.value().layout().segment(i).size),
                static_cast<double>(expected[i]), 1.0)
        << "attribute " << i;
  }
  EXPECT_NEAR(static_cast<double>(encoder.value().total_bits()), 120.0, 3.0);
}

TEST(PaperParametersTest, DblpEncoderFromGeneratedDataNearTable3) {
  Result<DblpGenerator> gen = DblpGenerator::Create();
  ASSERT_TRUE(gen.ok());
  Rng rng(3);
  std::vector<Record> sample;
  for (size_t i = 0; i < 8000; ++i) {
    sample.push_back(gen.value().Generate(i, rng));
  }
  const std::vector<double> b =
      EstimateExpectedQGrams(gen.value().schema(), sample);
  Rng enc_rng(4);
  Result<CVectorRecordEncoder> encoder =
      CVectorRecordEncoder::Create(gen.value().schema(), b, enc_rng);
  ASSERT_TRUE(encoder.ok());
  const size_t expected[] = {14, 19, 226, 8};
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>(encoder.value().layout().segment(i).size),
                static_cast<double>(expected[i]), i == 2 ? 4.0 : 1.0)
        << "attribute " << i;
  }
  EXPECT_NEAR(static_cast<double>(encoder.value().total_bits()), 267.0, 5.0);
}

TEST(PaperParametersTest, RecordLevelLValuesForPL) {
  // Section 6.2: K = 30, delta = 0.1, theta = 4 -> L = 6 (NCVR, 120 bits)
  // and L = 3 (DBLP, 267 bits).
  EXPECT_EQ(
      OptimalGroups(HammingBaseProbability(4, 120).value(), 30, 0.1).value(),
      6u);
  EXPECT_EQ(
      OptimalGroups(HammingBaseProbability(4, 267).value(), 30, 0.1).value(),
      3u);
}

TEST(PaperParametersTest, AttributeLevelLValuesForPH) {
  // Scheme PH with rule C1 and Table 3 parameters: L = 178 (NCVR) and
  // L = 62 (DBLP), modulo ceiling.
  const Rule c1 =
      Rule::And({Rule::Pred(0, 4), Rule::Pred(1, 4), Rule::Pred(2, 8)});
  const std::vector<AttributeLshParams> ncvr = {
      {15, 5}, {15, 5}, {68, 10}, {22, 5}};
  const std::vector<AttributeLshParams> dblp = {
      {14, 5}, {19, 5}, {226, 12}, {8, 5}};
  EXPECT_NEAR(
      static_cast<double>(RuleOptimalGroups(c1, ncvr, 0.1).value()), 178.0,
      1.0);
  EXPECT_NEAR(
      static_cast<double>(RuleOptimalGroups(c1, dblp, 0.1).value()), 62.0,
      1.0);
}

TEST(PaperParametersTest, BfHLValues) {
  // Section 6.1: 500-bit filters, 4 fields, K = 30.  PL: theta = 45 ->
  // L = 4.  PH: record threshold 45 + 45 + 90 = 180 -> L ~ 38-43.
  EXPECT_EQ(
      OptimalGroups(HammingBaseProbability(45, 2000).value(), 30, 0.1).value(),
      4u);
  const size_t l_ph =
      OptimalGroups(HammingBaseProbability(180, 2000).value(), 30, 0.1)
          .value();
  EXPECT_GE(l_ph, 35u);
  EXPECT_LE(l_ph, 45u);
}

TEST(PaperParametersTest, HigherKNeedsMoreGroups) {
  // Figure 8(a)'s mechanism: raising K increases selectivity, and Eq. 2
  // responds with more groups — the source of the U-shaped running time.
  const double p = HammingBaseProbability(4, 120).value();
  size_t prev = 0;
  for (size_t K = 20; K <= 40; K += 5) {
    const size_t L = OptimalGroups(p, K, 0.1).value();
    EXPECT_GT(L, prev);
    prev = L;
  }
}

}  // namespace
}  // namespace cbvlink
