#include "src/eval/measures.h"

#include <gtest/gtest.h>

namespace cbvlink {
namespace {

std::vector<GroundTruthEntry> MakeTruth(
    std::initializer_list<IdPair> pairs) {
  std::vector<GroundTruthEntry> truth;
  for (const IdPair& p : pairs) truth.push_back({p, {}});
  return truth;
}

TEST(TruthPairsTest, BuildsSet) {
  const PairSet set =
      TruthPairs(MakeTruth({{1, 10}, {2, 20}, {1, 10}}));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(IdPair{1, 10}));
  EXPECT_FALSE(set.contains(IdPair{10, 1}));
}

TEST(ComputeQualityTest, PerfectLinkage) {
  const PairSet truth = TruthPairs(MakeTruth({{1, 10}, {2, 20}}));
  const std::vector<IdPair> found{{1, 10}, {2, 20}};
  const QualityMeasures q = ComputeQuality(found, truth, 2, 100, 100);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 1.0);
  EXPECT_DOUBLE_EQ(q.pairs_quality, 1.0);
  EXPECT_DOUBLE_EQ(q.reduction_ratio, 1.0 - 2.0 / 10000.0);
  EXPECT_EQ(q.true_matches_found, 2u);
}

TEST(ComputeQualityTest, PartialRecall) {
  const PairSet truth = TruthPairs(MakeTruth({{1, 10}, {2, 20}, {3, 30}}));
  const std::vector<IdPair> found{{1, 10}};
  const QualityMeasures q = ComputeQuality(found, truth, 5, 10, 10);
  EXPECT_NEAR(q.pairs_completeness, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.pairs_quality, 1.0 / 5.0, 1e-12);
  EXPECT_NEAR(q.reduction_ratio, 1.0 - 5.0 / 100.0, 1e-12);
}

TEST(ComputeQualityTest, FalsePositivesDontCountAsHits) {
  const PairSet truth = TruthPairs(MakeTruth({{1, 10}}));
  const std::vector<IdPair> found{{1, 10}, {9, 99}};
  const QualityMeasures q = ComputeQuality(found, truth, 2, 10, 10);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 1.0);
  EXPECT_DOUBLE_EQ(q.pairs_quality, 0.5);
}

TEST(ComputeQualityTest, DuplicateFoundPairsCollapse) {
  const PairSet truth = TruthPairs(MakeTruth({{1, 10}}));
  const std::vector<IdPair> found{{1, 10}, {1, 10}, {1, 10}};
  const QualityMeasures q = ComputeQuality(found, truth, 3, 10, 10);
  EXPECT_EQ(q.true_matches_found, 1u);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 1.0);
}

TEST(ComputeQualityTest, EmptyTruthGivesCompletenessOne) {
  const PairSet truth;
  const QualityMeasures q = ComputeQuality({}, truth, 0, 10, 10);
  EXPECT_DOUBLE_EQ(q.pairs_completeness, 1.0);
  EXPECT_DOUBLE_EQ(q.pairs_quality, 0.0);
}

TEST(ComputeQualityTest, ZeroComparisonSpace) {
  const PairSet truth;
  const QualityMeasures q = ComputeQuality({}, truth, 0, 0, 0);
  EXPECT_DOUBLE_EQ(q.reduction_ratio, 0.0);
}

TEST(IdPairHashTest, DistinctPairsHashDifferently) {
  const IdPairHash hash;
  EXPECT_NE(hash(IdPair{1, 2}), hash(IdPair{2, 1}));
  EXPECT_EQ(hash(IdPair{1, 2}), hash(IdPair{1, 2}));
}

}  // namespace
}  // namespace cbvlink
