#include "src/embedding/optimal_size.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <utility>
#include <vector>

#include "src/common/hashing.h"
#include "src/common/random.h"

namespace cbvlink {
namespace {

TEST(ExpectedCollisionsTest, Lemma1ClosedForm) {
  // E[v] = m(1 - (1 - 1/m)^b), E[c] = b - E[v].
  const double ev = ExpectedOccupiedPositions(5.0, 15.0);
  EXPECT_NEAR(ev, 15.0 * (1.0 - std::pow(14.0 / 15.0, 5.0)), 1e-12);
  EXPECT_NEAR(ExpectedCollisions(5.0, 15.0), 5.0 - ev, 1e-12);
}

TEST(ExpectedCollisionsTest, ZeroGramsZeroCollisions) {
  EXPECT_DOUBLE_EQ(ExpectedCollisions(0.0, 10.0), 0.0);
}

TEST(ExpectedCollisionsTest, MonotoneDecreasingInM) {
  double prev = ExpectedCollisions(20.0, 20.0);
  for (double m = 30.0; m <= 200.0; m += 10.0) {
    const double curr = ExpectedCollisions(20.0, m);
    EXPECT_LT(curr, prev);
    prev = curr;
  }
}

/// Table 3 rows: (b, expected m_opt) with rho = 1, r = 1/3.
class Table3SizeTest
    : public testing::TestWithParam<std::tuple<double, size_t>> {};

TEST_P(Table3SizeTest, ReproducesPaperValues) {
  const auto [b, expected] = GetParam();
  Result<size_t> m = OptimalCVectorSize(b);
  ASSERT_TRUE(m.ok()) << m.status().ToString();
  EXPECT_EQ(m.value(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTable3, Table3SizeTest,
    testing::Values(std::make_tuple(5.1, 15),    // NCVR FirstName
                    std::make_tuple(5.0, 15),    // NCVR LastName
                    std::make_tuple(20.0, 68),   // NCVR Address
                    std::make_tuple(7.2, 22),    // NCVR Town
                    std::make_tuple(4.8, 14),    // DBLP FirstName
                    std::make_tuple(6.2, 19),    // DBLP LastName
                    std::make_tuple(64.8, 226),  // DBLP Title
                    std::make_tuple(3.0, 8)));   // DBLP Year

TEST(OptimalCVectorSizeTest, NcvrRecordTotals120Bits) {
  // The abstract's headline: four NCVR attributes in 120 bits.
  size_t total = 0;
  for (double b : {5.1, 5.0, 20.0, 7.2}) {
    total += OptimalCVectorSize(b).value();
  }
  EXPECT_EQ(total, 120u);
}

TEST(OptimalCVectorSizeTest, DblpRecordTotals267Bits) {
  size_t total = 0;
  for (double b : {4.8, 6.2, 64.8, 3.0}) {
    total += OptimalCVectorSize(b).value();
  }
  EXPECT_EQ(total, 267u);
}

TEST(OptimalCVectorSizeTest, SmallerRGivesLargerVectors) {
  OptimalSizeOptions opt;
  opt.confidence_ratio = 0.5;
  const size_t m_half = OptimalCVectorSize(20.0, opt).value();
  opt.confidence_ratio = 1.0 / 3.0;
  const size_t m_third = OptimalCVectorSize(20.0, opt).value();
  opt.confidence_ratio = 0.2;
  const size_t m_fifth = OptimalCVectorSize(20.0, opt).value();
  EXPECT_LT(m_half, m_third);
  EXPECT_LT(m_third, m_fifth);
}

TEST(OptimalCVectorSizeTest, LargerRhoGivesSmallerVectors) {
  OptimalSizeOptions strict;
  strict.max_collisions = 0.5;
  OptimalSizeOptions lax;
  lax.max_collisions = 2.0;
  EXPECT_GT(OptimalCVectorSize(20.0, strict).value(),
            OptimalCVectorSize(20.0, lax).value());
}

TEST(OptimalCVectorSizeTest, SizeControlsCollisionRate) {
  // Theorem 1's bound is taken at the margin (the derivation replaces
  // (1 - 1/m)^b by e^{-r} with r fixed at b/m's target), so for large b
  // the exact Lemma 1 expectation exceeds rho while the collision *rate*
  // E[c]/b stays bounded: at r = 1/3 the asymptotic rate is
  // 1 - (1 - e^{-x})/x at x = b/m ~ 1 - e^{-1/3}, about 0.15.
  for (double b : {3.0, 5.1, 7.2, 20.0, 64.8, 120.0}) {
    const size_t m = OptimalCVectorSize(b).value();
    const double collisions = ExpectedCollisions(b, static_cast<double>(m));
    EXPECT_LE(collisions, std::max(1.0, 0.15 * b) + 1e-9)
        << "b=" << b << " m=" << m;
  }
  // For the small attributes of Table 3, E[c] <= rho = 1 holds exactly.
  for (double b : {3.0, 5.1, 7.2}) {
    const size_t m = OptimalCVectorSize(b).value();
    EXPECT_LE(ExpectedCollisions(b, static_cast<double>(m)), 1.0 + 1e-9);
  }
}

TEST(Lemma1EmpiricalTest, ClosedFormIsATightConservativeBound) {
  // Validate Lemma 1's E[v] = m(1 - (1 - 1/m)^b) against the *actual*
  // pairwise-independent family, for the NCVR attribute shapes of
  // Table 3.  Measured behaviour: the linear family occupies ~3-4% MORE
  // positions (= fewer collisions) than the fully-independent model —
  // pairwise independence lacks the higher-order collision correlations
  // the closed form assumes — so Theorem 1's m_opt is mildly
  // conservative in practice.  Assert both the direction and the
  // tightness of the approximation.
  Rng rng(99);
  for (const auto& [b, m] : std::vector<std::pair<size_t, size_t>>{
           {5, 15}, {7, 22}, {20, 68}}) {
    constexpr int kTrials = 4000;
    double total_occupied = 0.0;
    for (int t = 0; t < kTrials; ++t) {
      const PairwiseHash g = PairwiseHash::Random(rng, m);
      std::vector<bool> slot(m, false);
      for (size_t x = 0; x < b; ++x) {
        // Distinct, spread-out inputs mimic distinct q-gram indexes.
        slot[g(x * 131 + t * 7919)] = true;
      }
      for (size_t j = 0; j < m; ++j) {
        if (slot[j]) total_occupied += 1.0;
      }
    }
    const double empirical = total_occupied / kTrials;
    const double expected = ExpectedOccupiedPositions(
        static_cast<double>(b), static_cast<double>(m));
    EXPECT_GE(empirical, expected * 0.99) << "b=" << b << " m=" << m;
    EXPECT_LE(empirical, expected * 1.07) << "b=" << b << " m=" << m;
  }
}

TEST(OptimalCVectorSizeTest, RejectsDegenerateInputs) {
  EXPECT_FALSE(OptimalCVectorSize(0.5).ok());  // b <= rho
  EXPECT_FALSE(OptimalCVectorSize(1.0).ok());  // b == rho
  OptimalSizeOptions bad;
  bad.confidence_ratio = 0.0;
  EXPECT_FALSE(OptimalCVectorSize(5.0, bad).ok());
  bad.confidence_ratio = 1.0;
  EXPECT_FALSE(OptimalCVectorSize(5.0, bad).ok());
  bad.confidence_ratio = 0.3;
  bad.max_collisions = -1.0;
  EXPECT_FALSE(OptimalCVectorSize(5.0, bad).ok());
}

}  // namespace
}  // namespace cbvlink
